//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim provides
//! exactly the subset of the `rand 0.8` API the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, the deterministic [`rngs::StdRng`], and
//! [`thread_rng`]. `StdRng` is a SplitMix64-seeded xoshiro256** generator — not
//! cryptographically secure, but statistically solid for tests and benchmarks.

#![forbid(unsafe_code)]

pub mod rngs;

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value in `[low, high)` (only `u64`/`usize` ranges are needed
    /// by this workspace; the implementation is unbiased via rejection sampling).
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from operating-system entropy (here: system time).
    fn from_entropy() -> Self {
        Self::seed_from_u64(rngs::entropy_seed())
    }
}

pub use rngs::ThreadRng;

/// Returns a lazily seeded non-deterministic generator (seeded from the system
/// clock; each call advances a process-wide counter so the streams differ).
pub fn thread_rng() -> ThreadRng {
    ThreadRng::new()
}
