//! Concrete generators: the deterministic [`StdRng`] and the clock-seeded
//! [`ThreadRng`].

use crate::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// xoshiro256** seeded through SplitMix64 — same construction the real `rand`
/// ecosystem uses for its small RNGs. Deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derives a fresh seed from the system clock and a process-wide counter.
pub(crate) fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    nanos ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
}

/// The generator returned by [`crate::thread_rng`].
#[derive(Clone, Debug)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        ThreadRng {
            inner: StdRng::seed_from_u64(entropy_seed()),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
