//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`, `any::<T>()`, integer-range strategies, `prop::collection::vec`,
//! tuples of strategies, [`Just`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is no input
//! shrinking. Failing cases report the drawn inputs via the standard assertion
//! message instead. Case generation is fully deterministic (seeded from the test
//! function's name), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace module matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Rejects the current test case (treated as skipped, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts a condition inside a property; panics (failing the test) if false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...) { body }`
/// becomes a normal `#[test]` that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config) $($rest)* }
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for_test(::core::stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $( let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    }
                }
                // Mirror real proptest's "too many global rejects" failure: a
                // property whose assumptions filter out (nearly) every generated
                // case must not silently count as passing.
                ::std::assert!(
                    accepted >= config.cases,
                    "prop_assume! rejected too many cases: only {accepted}/{} accepted \
                     after {attempts} attempts",
                    config.cases,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}
