//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u128>()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u128>() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
