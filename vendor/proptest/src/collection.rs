//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + (rng.gen::<u64>() as usize) % span;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length falls in
/// `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
