//! Test-runner plumbing: configuration, per-test deterministic RNG, and the
//! case-outcome type used by the `proptest!` macro expansion.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (skipped, not failed).
    Reject,
}

/// The RNG handed to strategies. Deterministic per test function.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Builds the deterministic RNG for the named test. `DefaultHasher` uses fixed
/// keys, so the seed — and therefore every generated case — is stable across runs
/// and machines.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    TestRng {
        inner: StdRng::seed_from_u64(hasher.finish()),
    }
}
