//! Strategies: composable generators of random test inputs.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy simply
/// draws a value from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the draw a bounded number
    /// of times (panics if the predicate is too restrictive).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1024 consecutive draws: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (draw_u128_below(rng, span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    // Full-domain u128 range: any draw is in range.
                    return rng.gen::<u64>() as $t;
                }
                lo + (draw_u128_below(rng, span) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX - lo) as u128 + 1;
                if span == 0 {
                    return rng.gen::<u64>() as $t;
                }
                lo + (draw_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

// u128 spans can overflow the helper's domain; handle it separately.
impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + draw_u128_below(rng, self.end - self.start)
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        if span == u128::MAX {
            return rng.gen::<u128>();
        }
        self.start + draw_u128_below(rng, span + 1)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == u128::MIN && hi == u128::MAX {
            return rng.gen::<u128>();
        }
        lo + draw_u128_below(rng, hi - lo + 1)
    }
}

/// Uniform draw in `[0, bound)`; `bound > 0`.
fn draw_u128_below(rng: &mut TestRng, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Rejection sampling keeps the distribution exactly uniform.
    let zone = u128::MAX - u128::MAX % bound;
    loop {
        let v = rng.gen::<u128>();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
