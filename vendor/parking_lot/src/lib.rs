//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API: `lock()`
//! returns the guard directly instead of a `Result`, recovering from poisoning by
//! taking the inner value (matching `parking_lot`'s semantics, where panicking while
//! holding a lock does not poison it).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}
