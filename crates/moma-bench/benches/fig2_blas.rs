//! Figure 2: BLAS operations (vector multiplication, addition, subtraction, axpy) at
//! 128/256/512/1024 bits — MoMA runtime kernels vs the GMP stand-in (`moma-bignum`)
//! vs the GRNS stand-in (`moma-rns`), reported as time per element.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use moma::bignum::BigUint;
use moma::blas::batch::{run_batch, Batch};
use moma::blas::BlasOp;
use moma::mp::{ModRing, MpUint};
use moma::ntt::params::paper_modulus;
use moma::rns::{vector as rns_vec, RnsContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ELEMENTS: usize = 1 << 12;

fn bench_width<const L: usize>(c: &mut Criterion, bits: u32) {
    let q_big = paper_modulus(bits);
    let q = MpUint::<L>::from_limbs_le(&q_big.to_limbs_le(L));
    let ring = ModRing::new(q);
    let mut rng = StdRng::seed_from_u64(bits as u64);
    let x = Batch::<L>::random(&ring, &mut rng, 1, ELEMENTS);
    let y = Batch::<L>::random(&ring, &mut rng, 1, ELEMENTS);
    let a = ring.random_element(&mut rng);

    let x_big: Vec<BigUint> = x
        .data
        .iter()
        .map(|v| BigUint::from_limbs_le(v.limbs().to_vec()))
        .collect();
    let y_big: Vec<BigUint> = y
        .data
        .iter()
        .map(|v| BigUint::from_limbs_le(v.limbs().to_vec()))
        .collect();

    let rns = RnsContext::with_capacity_bits(2 * bits + 8);
    let x_rns = rns_vec::RnsVector::from_biguints(&rns, &x_big);
    let y_rns = rns_vec::RnsVector::from_biguints(&rns, &y_big);

    let mut group = c.benchmark_group(format!("fig2/{bits}-bit"));
    group.throughput(Throughput::Elements(ELEMENTS as u64));
    group.sample_size(10);

    for op in BlasOp::all() {
        group.bench_function(BenchmarkId::new("moma", op.name()), |b| {
            b.iter(|| run_batch(&ring, op, a, &x, &y))
        });
    }
    // GMP stand-in: full-precision op followed by reduction, as an mpz user would write.
    group.bench_function(
        BenchmarkId::new("gmp-standin", "vector multiplication"),
        |b| {
            b.iter(|| {
                x_big
                    .iter()
                    .zip(&y_big)
                    .map(|(p, r)| p.mod_mul(r, &q_big))
                    .collect::<Vec<_>>()
            })
        },
    );
    group.bench_function(BenchmarkId::new("gmp-standin", "vector addition"), |b| {
        b.iter(|| {
            x_big
                .iter()
                .zip(&y_big)
                .map(|(p, r)| p.mod_add(r, &q_big))
                .collect::<Vec<_>>()
        })
    });
    // GRNS stand-in: residue-wise arithmetic (reduction modulo q excluded, as GRNS
    // reports ring arithmetic over its own base).
    group.bench_function(
        BenchmarkId::new("grns-standin", "vector multiplication"),
        |b| b.iter(|| rns_vec::vec_mul(&rns, &x_rns, &y_rns)),
    );
    group.bench_function(BenchmarkId::new("grns-standin", "vector addition"), |b| {
        b.iter(|| rns_vec::vec_add(&rns, &x_rns, &y_rns))
    });
    group.finish();
}

fn fig2(c: &mut Criterion) {
    bench_width::<2>(c, 128);
    bench_width::<4>(c, 256);
    bench_width::<8>(c, 512);
    bench_width::<16>(c, 1024);
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(300)); targets = fig2}
criterion_main!(benches);
