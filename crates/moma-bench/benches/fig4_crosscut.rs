//! Figure 4: one transform size (a cross-cut of Figure 3), every input bit-width from
//! 128 to 1,024 bits, MoMA runtime butterflies vs the GMP stand-in NTT (the same
//! transform implemented directly over `moma-bignum` values).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use moma::bignum::BigUint;
use moma::mp::MulAlgorithm;
use moma::ntt::params::{paper_modulus, NttParams};
use moma::ntt::transform::{butterfly_count, forward};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The cross-cut uses a reduced size so the bench suite stays fast; the `reproduce`
/// binary prints the full 2^16 cross-cut with the cost model.
const LOG_N: u32 = 10;

fn bignum_ntt(q: &BigUint, omega: &BigUint, data: &mut [BigUint]) {
    // Iterative Cooley–Tukey directly over BigUint, mirroring how a GMP user would
    // write the transform (mpz arithmetic + explicit mod).
    let n = data.len();
    // Bit reverse.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = ((i as u64).reverse_bits() >> (64 - bits)) as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let w_len = omega.mod_pow(&BigUint::from((n / len) as u64), q);
        let mut start = 0;
        while start < n {
            let mut w = BigUint::one();
            for j in 0..len / 2 {
                let x = data[start + j].clone();
                let wy = w.mod_mul(&data[start + j + len / 2], q);
                data[start + j] = x.mod_add(&wy, q);
                data[start + j + len / 2] = x.mod_sub(&wy, q);
                w = w.mod_mul(&w_len, q);
            }
            start += len;
        }
        len <<= 1;
    }
}

fn bench_width<const L: usize>(c: &mut Criterion, bits: u32) {
    let n = 1usize << LOG_N;
    let params = NttParams::<L>::for_paper_modulus(n, bits, MulAlgorithm::Schoolbook);
    let mut rng = StdRng::seed_from_u64(bits as u64);
    let data: Vec<_> = (0..n)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();

    let q_big = paper_modulus(bits);
    let omega_big = BigUint::from_limbs_le(params.omega.limbs().to_vec());
    let data_big: Vec<BigUint> = data
        .iter()
        .map(|x| BigUint::from_limbs_le(x.limbs().to_vec()))
        .collect();

    let mut group = c.benchmark_group("fig4/2^10-point");
    group.sample_size(10);
    group.throughput(Throughput::Elements(butterfly_count(n)));
    group.bench_function(BenchmarkId::new("moma", format!("{bits}-bit")), |b| {
        b.iter(|| {
            let mut work = data.clone();
            forward(&params, &mut work);
            work
        })
    });
    group.bench_function(
        BenchmarkId::new("gmp-standin", format!("{bits}-bit")),
        |b| {
            b.iter(|| {
                let mut work = data_big.clone();
                bignum_ntt(&q_big, &omega_big, &mut work);
                work
            })
        },
    );
    group.finish();
}

fn fig4(c: &mut Criterion) {
    bench_width::<2>(c, 128);
    bench_width::<4>(c, 256);
    bench_width::<6>(c, 384);
    bench_width::<8>(c, 512);
    bench_width::<12>(c, 768);
    bench_width::<16>(c, 1024);
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(300)); targets = fig4}
criterion_main!(benches);
