//! Figures 1 and 3: NTT runtime per butterfly at 128/256/384/768 bits across transform
//! sizes, using the MoMA runtime-library butterfly (what the generated code computes).
//! The per-device modelled numbers for the same configurations are produced by the
//! `reproduce` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use moma::mp::MulAlgorithm;
use moma::ntt::params::NttParams;
use moma::ntt::transform::{butterfly_count, forward};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ntt<const L: usize>(c: &mut Criterion, bits: u32, log_sizes: &[u32]) {
    let mut group = c.benchmark_group(format!("fig3/{bits}-bit"));
    group.sample_size(10);
    for &log_n in log_sizes {
        let n = 1usize << log_n;
        let params = NttParams::<L>::for_paper_modulus(n, bits, MulAlgorithm::Schoolbook);
        let mut rng = StdRng::seed_from_u64(log_n as u64);
        let data: Vec<_> = (0..n)
            .map(|_| params.ring.random_element(&mut rng))
            .collect();
        group.throughput(Throughput::Elements(butterfly_count(n)));
        group.bench_function(
            BenchmarkId::new("moma-forward", format!("2^{log_n}")),
            |b| {
                b.iter(|| {
                    let mut work = data.clone();
                    forward(&params, &mut work);
                    work
                })
            },
        );
    }
    group.finish();
}

fn fig3(c: &mut Criterion) {
    bench_ntt::<2>(c, 128, &[8, 10, 12]);
    bench_ntt::<4>(c, 256, &[8, 10, 12]);
    bench_ntt::<6>(c, 384, &[8, 10]);
    bench_ntt::<12>(c, 768, &[8, 10]);
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(300)); targets = fig3}
criterion_main!(benches);
