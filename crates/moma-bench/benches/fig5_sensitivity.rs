//! Figure 5: sensitivity analyses at a fixed 4,096-point NTT.
//!
//! * Figure 5a — runtime vs input bit-width (64 … 1,024 bits);
//! * Figure 5b — Karatsuba vs schoolbook multiplication at 128 … 768 bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moma::mp::MulAlgorithm;
use moma::ntt::params::NttParams;
use moma::ntt::transform::{forward, Ntt64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 4096;

fn bench_one<const L: usize>(c: &mut Criterion, group_name: &str, bits: u32, alg: MulAlgorithm) {
    let params = NttParams::<L>::for_paper_modulus(N, bits, alg);
    let mut rng = StdRng::seed_from_u64(bits as u64 + alg as u64);
    let data: Vec<_> = (0..N)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();
    let label = match alg {
        MulAlgorithm::Schoolbook => "schoolbook",
        MulAlgorithm::Karatsuba => "karatsuba",
    };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(label, format!("{bits}-bit")), |b| {
        b.iter(|| {
            let mut work = data.clone();
            forward(&params, &mut work);
            work
        })
    });
    group.finish();
}

fn fig5a(c: &mut Criterion) {
    // 64-bit leftmost point: the single-word NTT.
    let ntt = Ntt64::new(N);
    let mut rng = StdRng::seed_from_u64(64);
    let data: Vec<u64> = (0..N).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
    let mut group = c.benchmark_group("fig5a/bit-width");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("schoolbook", "64-bit"), |b| {
        b.iter(|| {
            let mut work = data.clone();
            ntt.forward(&mut work);
            work
        })
    });
    group.finish();

    bench_one::<2>(c, "fig5a/bit-width", 128, MulAlgorithm::Schoolbook);
    bench_one::<4>(c, "fig5a/bit-width", 256, MulAlgorithm::Schoolbook);
    bench_one::<6>(c, "fig5a/bit-width", 384, MulAlgorithm::Schoolbook);
    bench_one::<8>(c, "fig5a/bit-width", 512, MulAlgorithm::Schoolbook);
    bench_one::<12>(c, "fig5a/bit-width", 768, MulAlgorithm::Schoolbook);
    bench_one::<16>(c, "fig5a/bit-width", 1024, MulAlgorithm::Schoolbook);
}

fn fig5b(c: &mut Criterion) {
    for alg in [MulAlgorithm::Schoolbook, MulAlgorithm::Karatsuba] {
        bench_one::<2>(c, "fig5b/mul-algorithm", 128, alg);
        bench_one::<4>(c, "fig5b/mul-algorithm", 256, alg);
        bench_one::<6>(c, "fig5b/mul-algorithm", 384, alg);
        bench_one::<12>(c, "fig5b/mul-algorithm", 768, alg);
    }
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(300)); targets = fig5a, fig5b}
criterion_main!(benches);
