//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * zero pruning on vs off for non-power-of-two widths (381-bit ModMul codegen and the
//!   resulting interpreted execution);
//! * Barrett vs Montgomery reduction in the runtime library;
//! * code-generation (lowering) time as the input bit-width grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moma::mp::{BarrettContext, ModRing, MontgomeryContext, U256};
use moma::{Compiler, KernelOp, KernelSpec, LoweringConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablation_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/zero-pruning");
    group.sample_size(10);
    for (label, prune) in [("pruned", true), ("zero-padded", false)] {
        let compiler = Compiler::new(LoweringConfig {
            prune_zeros: prune,
            simplify: prune,
            ..LoweringConfig::default()
        });
        let generated = compiler.compile(&KernelSpec::new(KernelOp::ModMul, 381));
        // Benchmark interpreting the generated kernel: fewer surviving word operations
        // translate directly into less work per element.
        let inputs: Vec<u64> = (0..generated.kernel.params.len() as u64)
            .map(|i| if i % 8 < 6 { 0x1234_5678 ^ i } else { 0 })
            .collect();
        group.bench_function(BenchmarkId::new(label, "381-bit modmul"), |b| {
            b.iter(|| generated.run(&inputs).unwrap())
        });
    }
    group.finish();
}

fn ablation_reduction(c: &mut Criterion) {
    // Barrett (paper default, k-4-bit modulus) vs Montgomery (full-width modulus).
    let q = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffe200000001");
    let barrett = BarrettContext::new(q);
    let montgomery = MontgomeryContext::new(q);
    let ring = ModRing::new(q);
    let mut rng = StdRng::seed_from_u64(1);
    let a = ring.random_element(&mut rng);
    let b = ring.random_element(&mut rng);
    let am = montgomery.to_mont(a);
    let bm = montgomery.to_mont(b);

    let mut group = c.benchmark_group("ablation/reduction");
    group.bench_function("barrett-252-bit", |bch| bch.iter(|| barrett.mul_mod(a, b)));
    group.bench_function("montgomery-252-bit", |bch| {
        bch.iter(|| montgomery.mul_mont(am, bm))
    });
    group.finish();
}

fn ablation_codegen_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/codegen-time");
    group.sample_size(10);
    for bits in [128u32, 256, 512, 1024] {
        group.bench_function(
            BenchmarkId::new("lower-modmul", format!("{bits}-bit")),
            |b| {
                let compiler = Compiler::default();
                b.iter(|| compiler.compile(&KernelSpec::new(KernelOp::ModMul, bits)))
            },
        );
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(300)); targets = ablation_pruning, ablation_reduction, ablation_codegen_time}
criterion_main!(benches);
