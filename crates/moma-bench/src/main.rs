//! `reproduce` — prints every table and figure of the paper's evaluation from this
//! reproduction: measured host numbers for the runtime-library kernels, modelled
//! per-device numbers from the analytical cost model fed with the generated kernels'
//! operation counts, and the published baseline values for comparison.
//!
//! Usage:
//!   cargo run -p moma-bench --bin reproduce --release            # everything
//!   cargo run -p moma-bench --bin reproduce --release -- fig3    # one item
//!   cargo run -p moma-bench --bin reproduce --release -- bench   # hot-path bench,
//!                                                                # writes BENCH_ntt_blas.json
//!   cargo run -p moma-bench --bin reproduce --release -- --quick # bench only, fast
//!
//! Items: table1, table2, codegen, fig1, fig2, fig3, fig4, fig5a, fig5b, claims, serve,
//! bench. `--quick` reduces the bench iteration counts (CI smoke mode); on its own it
//! implies the `serve` and `bench` items only.
//!
//! `serve` runs the closed-loop batching-service bench: N simulated clients in a
//! closed loop against a `moma-serve` server over one shared session, batched
//! coalescing vs the one-request-at-a-time baseline (throughput, p50/p99 latency,
//! launches per op, cache hit rate). It also runs the open-loop overload bench:
//! arrival-rate-driven load at ≈2x measured capacity against a bounded-queue
//! server, recording goodput, shed rate, and the latency of *accepted* requests
//! — the robustness claim is that p99 stays bounded because excess load is shed
//! at admission instead of queueing. The numbers land in `BENCH_ntt_blas.json`
//! under `serve_closed_loop` and `serve_overload` when the `bench` item also runs.

use moma::bignum::BigUint;
use moma::blas::batch::{run_batch, Batch};
use moma::blas::gpu::run_batch_parallel;
use moma::blas::BlasOp;
use moma::gpu::cost::{calibrate, CalibrationSample, OpWeights};
use moma::gpu::DeviceSpec;
use moma::ir::compiled::CompiledKernel;
use moma::ir::cost::OpCounts;
use moma::ir::interp;
use moma::mp::{ModRing, MpUint, MulAlgorithm as RtMulAlgorithm};
use moma::ntt::params::{paper_modulus, NttParams};
use moma::ntt::plan::NttPlan;
use moma::ntt::transform::{butterfly_count, forward, Ntt64};
use moma::paper_data;
use moma::rewrite::rules::CORE_RULES;
use moma::rewrite::{builders, lower};
use moma::rns::{vector as rns_vec, BaseConvPlan, RnsContext, RnsMatrix, RnsPlan};
use moma::MulAlgorithm;
use moma::{Compiler, KernelOp, KernelSpec, LoweringConfig, RnsSpace, Session};
use moma_serve::{ServeConfig, ServeError, Server, Ticket, WorkItem};
use rand::{Rng, SeedableRng};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let all_args: Vec<String> = std::env::args().skip(1).collect();
    let quick = all_args.iter().any(|a| a == "--quick");
    let args: Vec<String> = all_args.into_iter().filter(|a| a != "--quick").collect();
    // `--quick` with no explicit items means "bench smoke only"; otherwise the
    // item list (or its absence = everything) decides as before.
    let bench_only = quick && args.is_empty();
    let want = |name: &str| {
        if bench_only {
            name == "bench" || name == "serve"
        } else {
            args.is_empty() || args.iter().any(|a| a == name || a == "all")
        }
    };

    // One session serves every figure and bench: generated kernels, NTT plans,
    // and RNS plans are built once and shared across items.
    let session = Session::default();

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("codegen") {
        codegen_stats();
    }
    if want("fig2") {
        fig2(&session);
    }
    if want("fig1") || want("fig3") {
        fig3(&session);
    }
    if want("fig4") {
        fig4(&session);
    }
    if want("fig5a") {
        fig5a(&session);
    }
    if want("fig5b") {
        fig5b();
    }
    if want("claims") {
        claims(&session);
    }
    // The serve benches run once and feed both the printed sections and the
    // `serve_closed_loop` / `serve_overload` entries the `bench` item writes
    // to the JSON file.
    if want("serve") || want("bench") {
        let serve = bench_serve(quick);
        let overload = bench_serve_overload(quick);
        if want("bench") {
            bench(&session, quick, &serve, &overload);
        }
    }
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    heading("Table 1: MoMA core rewrite rules");
    for rule in CORE_RULES {
        println!("({:>2})  {:<55} ->  {}", rule.number, rule.lhs, rule.rhs);
    }
}

fn table2() {
    heading("Table 2: GPUs used for benchmarking (simulated devices)");
    println!(
        "{:<10} {:>8} {:>12} {:>9} {:>9} {:>9}",
        "Model", "#Cores", "Max Freq.", "RAM", "Bus", "Toolkit"
    );
    for d in DeviceSpec::all() {
        println!(
            "{:<10} {:>8} {:>9} MHz {:>6} GB {:>9} {:>9}",
            d.name, d.cores, d.max_freq_mhz, d.ram_gb, d.bus, d.toolkit
        );
    }
}

fn codegen_stats() {
    heading("Code generation summary (word-level operations per generated kernel)");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "bits", "word muls", "add/sub", "logic", "total"
    );
    let compiler = Compiler::default();
    for op in [KernelOp::ModMul, KernelOp::Butterfly] {
        for bits in [128u32, 256, 381, 384, 512, 768, 1024] {
            let k = compiler.compile(&KernelSpec::new(op, bits));
            let c = &k.op_counts;
            println!(
                "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
                op.name(),
                bits,
                c.multiplications(),
                c.add_sub(),
                c.logic(),
                c.total()
            );
        }
    }
}

/// Measures one BLAS operation in ns/element over the runtime library.
fn measure_blas<const L: usize>(bits: u32, op: BlasOp, elements: usize) -> f64 {
    let q = MpUint::<L>::from_limbs_le(&paper_modulus(bits).to_limbs_le(L));
    let ring = ModRing::new(q);
    let mut rng = rand::thread_rng();
    let x = Batch::<L>::random(&ring, &mut rng, 1, elements);
    let y = Batch::<L>::random(&ring, &mut rng, 1, elements);
    let a = ring.random_element(&mut rng);
    let start = Instant::now();
    let iters = 4;
    for _ in 0..iters {
        std::hint::black_box(run_batch(&ring, op, a, &x, &y));
    }
    start.elapsed().as_secs_f64() * 1e9 / (iters * elements) as f64
}

fn fig2(session: &Session) {
    heading("Figure 2: BLAS operations, ns per element (2^14 elements, host CPU)");
    let elements = 1 << 14;
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "system / operation", "128-bit", "256-bit", "512-bit", "1024-bit"
    );
    for op in BlasOp::all() {
        let moma: Vec<f64> = vec![
            measure_blas::<2>(128, op, elements),
            measure_blas::<4>(256, op, elements),
            measure_blas::<8>(512, op, elements),
            measure_blas::<16>(1024, op, elements),
        ];
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            format!("MoMA rt / {}", op.name()),
            moma[0],
            moma[1],
            moma[2],
            moma[3]
        );
    }
    // GMP stand-in and GRNS stand-in, multiplication and addition only (the paper's
    // qualitative comparison), at a reduced element count to keep this quick.
    let elements = 1 << 12;
    type BaselineRow<'a> = (&'a str, Box<dyn Fn(u32) -> f64>);
    let baseline_rows: Vec<BaselineRow> = vec![
        (
            "GMP stand-in / vec mul",
            Box::new(move |bits| measure_bignum_blas(bits, true, elements)),
        ),
        (
            "GMP stand-in / vec add",
            Box::new(move |bits| measure_bignum_blas(bits, false, elements)),
        ),
        (
            "GRNS stand-in / vec mul",
            Box::new(move |bits| measure_rns_blas(bits, true, elements)),
        ),
        (
            "GRNS stand-in / vec add",
            Box::new(move |bits| measure_rns_blas(bits, false, elements)),
        ),
        (
            "GRNS planned / vec mul",
            Box::new(move |bits| measure_rns_planned_blas(bits, true, elements)),
        ),
        (
            "GRNS planned / vec add",
            Box::new(move |bits| measure_rns_planned_blas(bits, false, elements)),
        ),
        (
            "GRNS planned / base conv",
            Box::new(move |bits| measure_rns_baseconv(bits, false, elements)),
        ),
        (
            "GRNS planned / rescale",
            Box::new(move |bits| measure_rns_baseconv(bits, true, elements)),
        ),
    ];
    for (label, f) in &baseline_rows {
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            label,
            f(128),
            f(256),
            f(512),
            f(1024)
        );
    }
    println!("\nPublished baselines (paper, approximate):");
    for r in paper_data::BLAS_GMP
        .iter()
        .take(2)
        .chain(paper_data::BLAS_GRNS.iter().take(2))
    {
        let p: Vec<String> = r
            .points
            .iter()
            .map(|(b, ns)| format!("{b}: {ns} ns"))
            .collect();
        println!("  {:<6} {:<22} {}", r.system, r.op, p.join(", "));
    }
    println!("\nModelled MoMA-on-GPU vector multiplication, ns per element (2^20 elements):");
    for d in DeviceSpec::all() {
        print!("  {:<10}", d.name);
        for bits in [128u32, 256, 512, 1024] {
            print!(
                " {:>8.3}",
                session.modelled_blas_ns_per_element(d, KernelOp::ModMul, bits, 1 << 20)
            );
        }
        println!();
    }
}

fn measure_bignum_blas(bits: u32, mul: bool, elements: usize) -> f64 {
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let b: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let start = Instant::now();
    let out: Vec<BigUint> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| {
            if mul {
                x.mod_mul(y, &q)
            } else {
                x.mod_add(y, &q)
            }
        })
        .collect();
    std::hint::black_box(out);
    start.elapsed().as_secs_f64() * 1e9 / elements as f64
}

fn measure_rns_blas(bits: u32, mul: bool, elements: usize) -> f64 {
    let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let b: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let ra = rns_vec::RnsVector::from_biguints(&ctx, &a);
    let rb = rns_vec::RnsVector::from_biguints(&ctx, &b);
    let start = Instant::now();
    let out = if mul {
        rns_vec::vec_mul(&ctx, &ra, &rb)
    } else {
        rns_vec::vec_add(&ctx, &ra, &rb)
    };
    std::hint::black_box(out);
    start.elapsed().as_secs_f64() * 1e9 / elements as f64
}

/// The planned (SoA, launcher-routed) counterpart of [`measure_rns_blas`].
fn measure_rns_planned_blas(bits: u32, mul: bool, elements: usize) -> f64 {
    let plan = RnsPlan::with_capacity_bits(2 * bits + 8);
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let b: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let ma = RnsMatrix::from_biguints(&plan, &a);
    let mb = RnsMatrix::from_biguints(&plan, &b);
    let start = Instant::now();
    let out = if mul {
        plan.mul(&ma, &mb)
    } else {
        plan.add(&ma, &mb)
    };
    std::hint::black_box(out);
    start.elapsed().as_secs_f64() * 1e9 / elements as f64
}

/// A deterministic base-extension target: `count` distinct 31-bit primes drawn
/// from a seed distinct from the default basis generator's (a shared modulus
/// between the two bases would be harmless, but a fresh basis is the workload
/// Figure 2's pipelines chain).
fn baseconv_target_plan(count: usize, seed: u64) -> RnsPlan {
    RnsPlan::new(&RnsContext::with_random_primes(count, 31, seed))
}

/// [`baseconv_target_plan`] through the session's basis-keyed plan cache.
fn baseconv_target_space(session: &Session, count: usize, seed: u64) -> RnsSpace {
    let moduli = RnsContext::with_random_primes(count, 31, seed)
        .moduli()
        .to_vec();
    session.rns(&moduli)
}

/// Measures the planned RNS chain operations — fast base extension
/// (`rescale = false`) or approximate scaled rounding (`rescale = true`) —
/// returning ns per element.
fn measure_rns_baseconv(bits: u32, rescale: bool, elements: usize) -> f64 {
    let plan = RnsPlan::with_capacity_bits(2 * bits + 8);
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let ma = RnsMatrix::from_biguints(&plan, &a);
    if rescale {
        let rp = plan.rescale_plan();
        let start = Instant::now();
        std::hint::black_box(plan.scale_and_round(&rp, &ma));
        start.elapsed().as_secs_f64() * 1e9 / elements as f64
    } else {
        let dst = baseconv_target_plan(plan.moduli_count(), 0xba5e_c0de);
        let bc = BaseConvPlan::new(&plan, &dst);
        let start = Instant::now();
        std::hint::black_box(plan.base_convert(&bc, &ma));
        start.elapsed().as_secs_f64() * 1e9 / elements as f64
    }
}

/// Measures the host runtime-library NTT, returning ns per butterfly.
fn measure_ntt<const L: usize>(bits: u32, log_n: u32) -> f64 {
    let n = 1usize << log_n;
    let params = NttParams::<L>::for_paper_modulus(n, bits, RtMulAlgorithm::Schoolbook);
    let mut rng = rand::thread_rng();
    let data: Vec<_> = (0..n)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();
    let start = Instant::now();
    let mut work = data;
    forward(&params, &mut work);
    std::hint::black_box(&work);
    start.elapsed().as_secs_f64() * 1e9 / butterfly_count(n) as f64
}

fn fig3(session: &Session) {
    heading("Figures 1 & 3: NTT runtime per butterfly (ns)");
    let log_sizes = [8u32, 10, 12, 14, 16, 18, 20, 22];
    for (bits, baselines) in [
        (128u32, &paper_data::NTT_128_BASELINES[..]),
        (256, &paper_data::NTT_256_BASELINES[..]),
        (384, &paper_data::NTT_384_BASELINES[..]),
        (768, &paper_data::NTT_768_BASELINES[..]),
    ] {
        println!("\n--- {bits}-bit inputs ---");
        print!("{:<28}", "log2(size)");
        for l in log_sizes {
            print!(" {l:>8}");
        }
        println!();
        // Modelled MoMA on each device.
        for series in session.ntt_series(bits, &log_sizes, MulAlgorithm::Schoolbook) {
            print!("{:<28}", format!("{} [{}]", series.system, series.platform));
            for (_, ns) in &series.points {
                print!(" {ns:>8.2}");
            }
            println!();
        }
        // Measured host butterflies at the small sizes (wall clock, this machine).
        let measured: Vec<(u32, f64)> = log_sizes
            .iter()
            .filter(|&&l| l <= 12)
            .map(|&l| {
                let ns = match bits {
                    128 => measure_ntt::<2>(bits, l),
                    256 => measure_ntt::<4>(bits, l),
                    384 => measure_ntt::<6>(bits, l),
                    _ => measure_ntt::<12>(bits, l),
                };
                (l, ns)
            })
            .collect();
        print!("{:<28}", "MoMA rt [host CPU, measured]");
        for l in log_sizes {
            match measured.iter().find(|(ml, _)| *ml == l) {
                Some((_, ns)) => print!(" {ns:>8.1}"),
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
        // Published baselines.
        for r in baselines {
            print!("{:<28}", format!("{} [{}] (paper)", r.system, r.platform));
            for l in log_sizes {
                match r.points.iter().find(|(pl, _)| *pl == l) {
                    Some((_, ns)) => print!(" {ns:>8.1}"),
                    None => print!(" {:>8}", "-"),
                }
            }
            println!();
        }
    }
}

fn fig4(session: &Session) {
    heading("Figure 4: 2^16-point NTT across input bit-widths (modelled, ns per butterfly)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "device", "128", "256", "384", "512", "640", "768", "1024"
    );
    for d in DeviceSpec::all() {
        print!("{:<12}", d.name);
        for bits in [128u32, 256, 384, 512, 640, 768, 1024] {
            print!(
                " {:>10.2}",
                session.modelled_ntt_ns_per_butterfly(d, bits, 16, MulAlgorithm::Schoolbook)
            );
        }
        println!();
    }
    println!("\nMeasured host cross-cut at 2^10 points (ns per butterfly):");
    print!("{:<12}", "host CPU");
    for (bits, ns) in [
        (128, measure_ntt::<2>(128, 10)),
        (256, measure_ntt::<4>(256, 10)),
        (384, measure_ntt::<6>(384, 10)),
        (512, measure_ntt::<8>(512, 10)),
        (768, measure_ntt::<12>(768, 10)),
        (1024, measure_ntt::<16>(1024, 10)),
    ] {
        print!(" {bits}:{ns:.0}ns");
    }
    println!();
}

fn fig5a(session: &Session) {
    heading("Figure 5a: 4096-point NTT runtime vs input bit-width (modelled per device, µs)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "device", "64", "128", "256", "512", "768", "1024"
    );
    for d in [DeviceSpec::H100, DeviceSpec::RTX4090] {
        print!("{:<12}", d.name);
        for bits in [64u32, 128, 256, 512, 768, 1024] {
            let ns = session.modelled_ntt_ns_per_butterfly(d, bits, 12, MulAlgorithm::Schoolbook);
            let total_us = ns * butterfly_count(4096) as f64 / 1e3;
            print!(" {total_us:>10.2}");
        }
        println!();
    }
}

fn fig5b() {
    heading("Figure 5b: Karatsuba vs schoolbook, 4096-point NTT (measured host, ms)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "bit-width", "schoolbook", "karatsuba", "ratio"
    );
    for bits in [128u32, 256, 384, 768] {
        let measure = |alg: RtMulAlgorithm| -> f64 {
            match bits {
                128 => measure_ntt_alg::<2>(bits, alg),
                256 => measure_ntt_alg::<4>(bits, alg),
                384 => measure_ntt_alg::<6>(bits, alg),
                _ => measure_ntt_alg::<12>(bits, alg),
            }
        };
        let sb = measure(RtMulAlgorithm::Schoolbook);
        let ka = measure(RtMulAlgorithm::Karatsuba);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            format!("{bits}-bit"),
            sb,
            ka,
            sb / ka
        );
    }
    println!("(ratio > 1 means Karatsuba is faster; the paper reports 2.1x at 128 bits");
    println!(" falling below 1 by 768 bits on the RTX 4090)");
}

fn measure_ntt_alg<const L: usize>(bits: u32, alg: RtMulAlgorithm) -> f64 {
    let n = 4096;
    let params = NttParams::<L>::for_paper_modulus(n, bits, alg);
    let mut rng = rand::thread_rng();
    let mut data: Vec<_> = (0..n)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();
    let start = Instant::now();
    forward(&params, &mut data);
    std::hint::black_box(&data);
    start.elapsed().as_secs_f64() * 1e3
}

fn claims(session: &Session) {
    heading("Headline claims: paper vs this reproduction");
    // Claim: BLAS speedups over GMP/GRNS.
    let elements = 1 << 12;
    let moma_mul = measure_blas::<4>(256, BlasOp::VecMul, elements);
    let gmp_mul = measure_bignum_blas(256, true, elements);
    let rns_mul = measure_rns_blas(256, true, elements);
    let moma_add = measure_blas::<4>(256, BlasOp::VecAdd, elements);
    let gmp_add = measure_bignum_blas(256, false, elements);
    println!("256-bit vector multiplication: MoMA rt {moma_mul:.1} ns/elt, GMP stand-in {gmp_mul:.1} ns/elt ({:.1}x), GRNS stand-in {rns_mul:.1} ns/elt ({:.1}x)",
        gmp_mul / moma_mul, rns_mul / moma_mul);
    println!("256-bit vector addition:       MoMA rt {moma_add:.1} ns/elt, GMP stand-in {gmp_add:.1} ns/elt ({:.1}x)",
        gmp_add / moma_add);
    println!(
        "(paper: >= {}x over both baselines for every BLAS op; >= {}x over GMP for add/sub)",
        paper_data::claims::BLAS_MIN_SPEEDUP,
        paper_data::claims::BLAS_ADDSUB_VS_GMP
    );

    // Claim: 256-bit NTT vs ICICLE (modelled device vs published baseline).
    let moma_h100: f64 = [12u32, 14, 16, 18, 20, 22]
        .iter()
        .map(|&l| {
            session.modelled_ntt_ns_per_butterfly(
                DeviceSpec::H100,
                256,
                l,
                MulAlgorithm::Schoolbook,
            )
        })
        .sum::<f64>()
        / 6.0;
    let icicle: f64 = paper_data::NTT_256_BASELINES[0]
        .points
        .iter()
        .map(|(_, ns)| ns)
        .sum::<f64>()
        / paper_data::NTT_256_BASELINES[0].points.len() as f64;
    println!("\n256-bit NTT per butterfly: MoMA modelled H100 {moma_h100:.2} ns vs ICICLE (paper) {icicle:.1} ns -> {:.1}x (paper claims {}x)",
        icicle / moma_h100, paper_data::claims::NTT_256_VS_ICICLE);

    // Claim: Karatsuba vs schoolbook crossover.
    let counts_sb = session.butterfly_op_counts(128, MulAlgorithm::Schoolbook);
    let counts_ka = session.butterfly_op_counts(128, MulAlgorithm::Karatsuba);
    println!("\n128-bit butterfly multiplications: schoolbook {} vs Karatsuba {} (paper 5.4: 4 vs 3 per double word)",
        counts_sb.multiplications(), counts_ka.multiplications());
}

// ---------------------------------------------------------------------------
// Hot-path benchmark: naive vs planned NTT, interpreted vs compiled kernels.
// Emits BENCH_ntt_blas.json so later PRs have a perf trajectory to beat.
// ---------------------------------------------------------------------------

/// Runs `f` `iters` times on a fresh clone of `data` and returns the best
/// wall-clock seconds of one run (setup excluded from the timed region).
fn best_run<T: Clone>(iters: u32, data: &T, mut f: impl FnMut(&mut T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let mut work = data.clone();
        let start = Instant::now();
        f(&mut work);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(&work);
        best = best.min(elapsed);
    }
    best
}

struct NttBenchRow {
    path: &'static str,
    ns_per_butterfly: f64,
}

/// Benchmarks the 64-bit NTT: naive Barrett loop vs the session-cached
/// Shoup/lazy-reduction plan.
fn bench_ntt_u64(session: &Session, n: usize, iters: u32) -> (f64, Vec<NttBenchRow>) {
    let ntt = Ntt64::new(n);
    let space = session.ntt_default(n);
    let mut rng = rand::thread_rng();
    let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % ntt.ctx.q).collect();
    let butterflies = butterfly_count(n) as f64;
    let naive = best_run(iters, &data, |w| ntt.forward(w)) * 1e9 / butterflies;
    let planned = best_run(iters, &data, |w| space.forward(w)) * 1e9 / butterflies;
    (
        naive / planned,
        vec![
            NttBenchRow {
                path: "naive_u64",
                ns_per_butterfly: naive,
            },
            NttBenchRow {
                path: "planned_u64",
                ns_per_butterfly: planned,
            },
        ],
    )
}

/// Benchmarks the 128-bit (2-limb) NTT: naive loop vs the session-cached
/// precomputed-table plan.
fn bench_ntt_u128(session: &Session, n: usize, iters: u32) -> (f64, Vec<NttBenchRow>) {
    let params = NttParams::<2>::for_paper_modulus(n, 128, RtMulAlgorithm::Schoolbook);
    let plan: std::sync::Arc<NttPlan<2>> = session.ntt_multiword::<2>(128, n);
    let mut rng = rand::thread_rng();
    let data: Vec<_> = (0..n)
        .map(|_| params.ring.random_element(&mut rng))
        .collect();
    let butterflies = butterfly_count(n) as f64;
    let naive = best_run(iters, &data, |w| forward(&params, w)) * 1e9 / butterflies;
    let planned = best_run(iters, &data, |w| plan.forward(w)) * 1e9 / butterflies;
    (
        naive / planned,
        vec![
            NttBenchRow {
                path: "naive_u128",
                ns_per_butterfly: naive,
            },
            NttBenchRow {
                path: "planned_u128",
                ns_per_butterfly: planned,
            },
        ],
    )
}

/// Result of one interpreted-vs-compiled kernel batch measurement.
struct KernelBatchBench {
    name: String,
    counts: OpCounts,
    interp_ns: f64,
    compiled_ns: f64,
    speedup: f64,
}

/// Benchmarks batch execution of a generated machine-level kernel: per-element
/// tree interpretation vs the compiled bytecode executor.
fn bench_kernel_batch(op: KernelOp, bits: u32, elements: usize, iters: u32) -> KernelBatchBench {
    let hl = builders::build(&KernelSpec::new(op, bits));
    let lowered = lower(&hl, &LoweringConfig::default());
    let kernel = &lowered.kernel;
    let compiled = CompiledKernel::compile(kernel).expect("lowered kernels compile");

    // Random inputs masked to each parameter's width; the two executors compute
    // the same function on any input, so correctness of the values is irrelevant
    // here (the cross-check tests cover it).
    let mut rng = rand::thread_rng();
    let widths: Vec<u32> = kernel.params.iter().map(|p| kernel.ty(*p).bits()).collect();
    let rows: Vec<u64> = (0..elements)
        .flat_map(|_| {
            widths
                .iter()
                .map(|&b| {
                    let v: u64 = rng.gen();
                    if b >= 64 {
                        v
                    } else {
                        v & ((1u64 << b) - 1)
                    }
                })
                .collect::<Vec<u64>>()
        })
        .collect();
    let p = widths.len();

    let interpreted = best_run(iters, &(), |_| {
        for row in 0..elements {
            let run = interp::run(kernel, &rows[row * p..(row + 1) * p])
                .expect("interpreter accepts generated kernels");
            std::hint::black_box(&run.outputs);
        }
    }) * 1e9
        / elements as f64;
    let compiled_ns = best_run(iters, &(), |_| {
        let batch = compiled.run_batch(&rows).expect("compiled batch runs");
        std::hint::black_box(&batch.outputs);
    }) * 1e9
        / elements as f64;
    KernelBatchBench {
        name: kernel.name.clone(),
        counts: compiled.counts_per_element().clone(),
        interp_ns: interpreted,
        compiled_ns,
        speedup: interpreted / compiled_ns,
    }
}

/// Benchmarks RNS vector multiplication: the `BigUint`-backed `RnsContext` path
/// (per-element residue `Vec`s, `u128 %` reduction) vs the planned SoA engine
/// (`RnsPlan`/`RnsMatrix`, per-residue-row Barrett kernels on the launcher).
/// Returns `(path, ns_per_element)` rows plus the vec_mul speedup.
fn bench_rns_blas(
    session: &Session,
    bits: u32,
    elements: usize,
    iters: u32,
) -> (Vec<(String, f64)>, f64) {
    let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
    let space = session.rns_with_capacity(2 * bits + 8);
    let plan = space.plan();
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let b: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let va = rns_vec::RnsVector::from_biguints(&ctx, &a);
    let vb = rns_vec::RnsVector::from_biguints(&ctx, &b);
    let ma = RnsMatrix::from_biguints(plan, &a);
    let mb = RnsMatrix::from_biguints(plan, &b);
    let per_elt = 1e9 / elements as f64;
    let ctx_mul = best_run(iters, &(), |_| {
        std::hint::black_box(rns_vec::vec_mul(&ctx, &va, &vb));
    }) * per_elt;
    let planned_mul = best_run(iters, &(), |_| {
        std::hint::black_box(plan.mul(&ma, &mb));
    }) * per_elt;
    let ctx_add = best_run(iters, &(), |_| {
        std::hint::black_box(rns_vec::vec_add(&ctx, &va, &vb));
    }) * per_elt;
    let planned_add = best_run(iters, &(), |_| {
        std::hint::black_box(plan.add(&ma, &mb));
    }) * per_elt;
    let rows = vec![
        (format!("rns_ctx_{}", BlasOp::VecMul.key()), ctx_mul),
        (format!("rns_planned_{}", BlasOp::VecMul.key()), planned_mul),
        (format!("rns_ctx_{}", BlasOp::VecAdd.key()), ctx_add),
        (format!("rns_planned_{}", BlasOp::VecAdd.key()), planned_add),
    ];
    (rows, ctx_mul / planned_mul)
}

/// Benchmarks the RNS operations FHE pipelines chain between element-wise
/// stages, all on the planned engine: fast base extension (the direct row-wise
/// sum-of-products and the fused all-rows generated-kernel path the compiled
/// executor now runs) and approximate scaled rounding. Returns
/// `(path, ns_per_element, launches_per_op)` rows.
fn bench_rns_baseconv(
    session: &Session,
    bits: u32,
    elements: usize,
    iters: u32,
) -> Vec<(String, f64, usize, usize)> {
    let src = session.rns_with_capacity(2 * bits + 8);
    let dst = baseconv_target_space(session, src.plan().moduli_count(), 0xba5e_c0de);
    let bc = src.conversion_to(&dst);
    let rp = src.rescale_plan();
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let ma = RnsMatrix::from_biguints(src.plan(), &a);
    // Probe runs record launches and plane allocations per op and warm the
    // fused-kernel compile so the timed runs below measure steady state.
    let convert_stats = src.plan().base_convert(&bc, &ma).1;
    let compiled_stats = src.plan().base_convert_fused(&bc, &ma).1;
    let rescale_stats = src.plan().scale_and_round(&rp, &ma).1;
    // The pooled path over a warm pool: same arithmetic, zero heap planes.
    let pool = session.pool();
    pool.recycle(
        src.plan()
            .base_convert_pooled(&bc, &ma, pool)
            .0
            .take_storage(),
    );
    let (mut pooled_out, pooled_stats) = src.plan().base_convert_pooled(&bc, &ma, pool);
    pool.recycle(pooled_out.take_storage());
    let per_elt = 1e9 / elements as f64;
    let convert = best_run(iters, &(), |_| {
        std::hint::black_box(src.plan().base_convert(&bc, &ma));
    }) * per_elt;
    let compiled = best_run(iters, &(), |_| {
        std::hint::black_box(src.plan().base_convert_fused(&bc, &ma));
    }) * per_elt;
    let pooled = best_run(iters, &(), |_| {
        let (out, _) = src.plan().base_convert_pooled(&bc, &ma, pool);
        pool.recycle(std::hint::black_box(out).take_storage());
    }) * per_elt;
    let rescale = best_run(iters, &(), |_| {
        std::hint::black_box(src.plan().scale_and_round(&rp, &ma));
    }) * per_elt;
    vec![
        (
            "rns_base_convert".to_string(),
            convert,
            convert_stats.launches,
            convert_stats.allocs,
        ),
        (
            "rns_base_convert_compiled".to_string(),
            compiled,
            compiled_stats.launches,
            compiled_stats.allocs,
        ),
        (
            "rns_base_convert_pooled".to_string(),
            pooled,
            pooled_stats.launches,
            pooled_stats.allocs,
        ),
        (
            "rns_rescale".to_string(),
            rescale,
            rescale_stats.launches,
            rescale_stats.allocs,
        ),
    ]
}

/// Result of the fused-vs-two-pass rescale-and-extend measurement.
struct FusedChainBench {
    fused_ns: f64,
    two_pass_ns: f64,
    speedup: f64,
    fused_selected: bool,
}

/// Benchmarks the session's fused rescale-and-extend chain against the two-pass
/// rescale -> extend reference over the same session-cached plan, and records
/// which path the session cost model would select.
fn bench_session_fused(
    session: &Session,
    bits: u32,
    elements: usize,
    iters: u32,
) -> FusedChainBench {
    let src = session.rns_with_capacity(2 * bits + 8);
    let dst = baseconv_target_space(session, src.plan().moduli_count() - 1, 0xf00d_cafe);
    let p = src.rescale_extend_to(&dst);
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let a: Vec<BigUint> = (0..elements)
        .map(|_| moma::bignum::random::random_below(&mut rng, &q))
        .collect();
    let ma = RnsMatrix::from_biguints(src.plan(), &a);
    let per_elt = 1e9 / elements as f64;
    let fused_ns = best_run(iters, &(), |_| {
        std::hint::black_box(src.plan().rescale_then_extend(&p, &ma));
    }) * per_elt;
    let two_pass_ns = best_run(iters, &(), |_| {
        std::hint::black_box(src.plan().rescale_then_extend_two_pass(&p, &ma));
    }) * per_elt;
    FusedChainBench {
        fused_ns,
        two_pass_ns,
        speedup: two_pass_ns / fused_ns,
        fused_selected: p.fused_is_faster(session.cost_model(), elements),
    }
}

/// Result of the fused-vs-unfused `mul→axpy` chain measurement.
struct MulChainBench {
    fused_ns: f64,
    unfused_ns: f64,
    speedup: f64,
    fused_selected: bool,
    fused_launches: usize,
    unfused_launches: usize,
    /// Plane allocations of the session-level (pooled) chain on a warm pool.
    session_allocs: usize,
}

/// Benchmarks the generated all-rows `s·(a∘b) + z` chain kernel (one launch,
/// intermediates in registers) against the unfused `mul` followed by `axpy`
/// sequence (two launches, one full intermediate matrix), and records which
/// path the session cost model routes `RnsVec::mul_axpy` through.
fn bench_fused_mul_chain(
    session: &Session,
    bits: u32,
    elements: usize,
    iters: u32,
) -> MulChainBench {
    let src = session.rns_with_capacity(2 * bits + 8);
    let plan = src.plan();
    let q = paper_modulus(bits);
    let mut rng = rand::thread_rng();
    let sample = |rng: &mut rand::rngs::ThreadRng| -> Vec<BigUint> {
        (0..elements)
            .map(|_| moma::bignum::random::random_below(rng, &q))
            .collect()
    };
    let a = sample(&mut rng);
    let b = sample(&mut rng);
    let z = sample(&mut rng);
    let s = moma::bignum::random::random_below(&mut rng, &q);
    let ma = RnsMatrix::from_biguints(plan, &a);
    let mb = RnsMatrix::from_biguints(plan, &b);
    let mz = RnsMatrix::from_biguints(plan, &z);
    let sres = plan.to_residues(&s);
    // Probe runs record launches per op and warm the fused-kernel compile.
    let fused_launches = plan.mul_axpy_fused(&ma, &mb, &sres, &mz).1.launches;
    let unfused_launches = {
        let (prod, mut stats) = plan.apply(BlasOp::VecMul, None, &ma, &mb);
        stats.accumulate(plan.apply(BlasOp::Axpy, Some(&sres), &prod, &mz).1);
        stats.launches
    };
    let per_elt = 1e9 / elements as f64;
    let fused_ns = best_run(iters, &(), |_| {
        std::hint::black_box(plan.mul_axpy_fused(&ma, &mb, &sres, &mz));
    }) * per_elt;
    let unfused_ns = best_run(iters, &(), |_| {
        let (prod, _) = plan.apply(BlasOp::VecMul, None, &ma, &mb);
        std::hint::black_box(plan.apply(BlasOp::Axpy, Some(&sres), &prod, &mz));
    }) * per_elt;
    // The session-level probe: one launch means the cost model routed the
    // typed `RnsVec::mul_axpy` chain through the fused kernel. The first call
    // warms the session pool; the second measures the steady state — every
    // plane reused, zero heap allocations.
    let va = src.encode(&a);
    let vb = src.encode(&b);
    let vz = src.encode(&z);
    let fused_selected = va.mul_axpy_with_stats(&vb, &s, &vz).1.launches == 1;
    let session_allocs = va.mul_axpy_with_stats(&vb, &s, &vz).1.allocs;
    MulChainBench {
        fused_ns,
        unfused_ns,
        speedup: unfused_ns / fused_ns,
        fused_selected,
        fused_launches,
        unfused_launches,
        session_allocs,
    }
}

/// Benchmarks the 64-bit planned NTT executed inline vs stage-by-stage on the
/// virtual-GPU launcher (one thread per butterfly, a launch barrier per stage).
/// Returns `(inline_ns_per_butterfly, launcher_ns_per_butterfly)`.
fn bench_ntt_launcher(session: &Session, n: usize, iters: u32) -> (f64, f64) {
    let space = session.ntt_default(n);
    let mut rng = rand::thread_rng();
    let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % space.modulus()).collect();
    let butterflies = butterfly_count(n) as f64;
    let inline = best_run(iters, &data, |w| space.forward(w)) * 1e9 / butterflies;
    let launched = best_run(iters, &data, |w| {
        space.plan().forward_on_launcher(w);
    }) * 1e9
        / butterflies;
    (inline, launched)
}

/// Result of the batched-vs-single launcher NTT measurement: the ROADMAP
/// "batched transforms" item. The launch counts are the point: batching keeps
/// the per-stage launch count at `log2 n + 1` however many transforms ride
/// along, where one-by-one execution pays that per transform.
struct BatchedNttBench {
    batched_ns_per_butterfly: f64,
    single_ns_per_butterfly: f64,
    batched_launches: usize,
    single_launches: usize,
}

/// Benchmarks `batch` transforms of size `n` run through one stage-batched
/// launch sequence ([`moma::NttSpace::forward_batch`], grid = batch × n/2 per
/// stage) vs the same transforms launched one by one.
fn bench_ntt_batched(session: &Session, n: usize, batch: usize, iters: u32) -> BatchedNttBench {
    let space = session.ntt_default(n);
    let mut rng = rand::thread_rng();
    let data: Vec<u64> = (0..batch * n)
        .map(|_| rng.gen::<u64>() % space.modulus())
        .collect();
    let butterflies = (batch as u64 * butterfly_count(n)) as f64;
    let batched = best_run(iters, &data, |w| {
        space.forward_batch(w);
    }) * 1e9
        / butterflies;
    let single = best_run(iters, &data, |w| {
        for transform in w.chunks_exact_mut(n) {
            space.plan().forward_on_launcher(transform);
        }
    }) * 1e9
        / butterflies;
    // Launch counts are deterministic; read them off one run of each shape.
    let mut probe = data.clone();
    let batched_launches = space.forward_batch(&mut probe).launches;
    let mut single_launches = 0;
    for transform in probe.chunks_exact_mut(n) {
        single_launches += space.plan().forward_on_launcher(transform).launches;
    }
    BatchedNttBench {
        batched_ns_per_butterfly: batched,
        single_ns_per_butterfly: single,
        batched_launches,
        single_launches,
    }
}

/// Benchmarks the BLAS batch path: sequential loop vs scoped-thread parallel launch.
fn bench_blas_batch(batch_size: usize, vector_len: usize, iters: u32) -> (f64, f64, f64) {
    let q = MpUint::<4>::from_limbs_le(&paper_modulus(256).to_limbs_le(4));
    let ring = ModRing::new(q);
    let mut rng = rand::thread_rng();
    let x = Batch::<4>::random(&ring, &mut rng, batch_size, vector_len);
    let y = Batch::<4>::random(&ring, &mut rng, batch_size, vector_len);
    let a = ring.random_element(&mut rng);
    let elements = (batch_size * vector_len) as f64;
    let sequential = best_run(iters, &(), |_| {
        std::hint::black_box(run_batch(&ring, BlasOp::VecMul, a, &x, &y));
    }) * 1e9
        / elements;
    let parallel = best_run(iters, &(), |_| {
        let (out, _) = run_batch_parallel(&ring, BlasOp::VecMul, a, &x, &y);
        std::hint::black_box(out);
    }) * 1e9
        / elements;
    (sequential, parallel, sequential / parallel)
}

/// Aggregates of one closed-loop serve run plus its baseline comparison.
struct ServeBench {
    clients: usize,
    requests: usize,
    n: usize,
    throughput_ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    launches_per_op: f64,
    baseline_launches_per_op: f64,
    avg_batch: f64,
    ntt_cache_hit_rate: f64,
    allocations_per_op: f64,
    baseline_allocations_per_op: f64,
    /// Allocations per op of the deterministic steady-state run: one client,
    /// one worker, no coalescing — after warm-up every plane comes from the
    /// pool, so this is exactly zero on a correct build.
    steady_state_allocations_per_op: f64,
}

/// One closed-loop run: `clients` threads each keep exactly one request in
/// flight against a fresh server/session pair; per-request latency and the
/// fair launch share (`batch_launches / batch_size`) are recorded at the
/// client.
struct ServeRun {
    elapsed_s: f64,
    latencies_us: Vec<f64>,
    launch_share_sum: f64,
    batch_sum: u64,
    ops: usize,
    ntt_cache_hit_rate: f64,
    /// Plane-sized heap allocations per measured request, after a per-shape
    /// warm-up stocked the plan caches and the buffer pool.
    allocations_per_op: f64,
}

fn serve_closed_loop_run(
    config: ServeConfig,
    clients: usize,
    per_client: usize,
    n: usize,
) -> ServeRun {
    // A fresh session per run keeps the cache-hit-rate measurement honest: the
    // first request of each kind builds, everything after must hit.
    let session = Session::default();
    let server = Server::new(session.clone(), config);
    let src_moduli = session.rns_with_capacity(128).moduli();
    let tenant = server.register_tenant(&src_moduli, &src_moduli[..4]);
    let product = session.rns(&src_moduli).product().clone();
    let q = session.ntt_default(n).modulus();

    // Warm-up, outside the measurement: one request of each shape builds the
    // plans and stocks the buffer pool, so `allocations_per_op` measures the
    // steady state (residual misses under concurrency, not cold start).
    {
        let client = server.client();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3a3a);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        client
            .call(WorkItem::NttForward { q, n, data })
            .expect("serve bench warm-up");
        let operand: Vec<BigUint> = (0..4)
            .map(|_| moma::bignum::random::random_below(&mut rng, &product))
            .collect();
        client
            .call(WorkItem::RnsMulRescaleExtend {
                tenant,
                a: operand.clone(),
                b: operand,
            })
            .expect("serve bench warm-up");
    }
    let warm_allocs = server.stats().plane_allocs;

    let start = Instant::now();
    let per_thread: Vec<(Vec<f64>, f64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                let product = &product;
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE + c as u64);
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut share = 0.0f64;
                    let mut batch_sum = 0u64;
                    for i in 0..per_client {
                        // Mixed workload: mostly NTT transforms, every eighth
                        // request the tenant's fused RNS chain.
                        let item = if i % 8 == 7 {
                            let mut operand = |seed_len: usize| -> Vec<BigUint> {
                                (0..seed_len)
                                    .map(|_| moma::bignum::random::random_below(&mut rng, product))
                                    .collect()
                            };
                            WorkItem::RnsMulRescaleExtend {
                                tenant,
                                a: operand(4),
                                b: operand(4),
                            }
                        } else {
                            WorkItem::NttForward {
                                q,
                                n,
                                data: (0..n).map(|_| rng.gen_range(0..q)).collect(),
                            }
                        };
                        let t0 = Instant::now();
                        let done = client.call(item).expect("serve bench request");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        share += done.batch_launches as f64 / done.batch_size as f64;
                        batch_sum += done.batch_size as u64;
                    }
                    (latencies, share, batch_sum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve bench client"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let ntt = session.stats().ntt;
    let mut run = ServeRun {
        elapsed_s,
        latencies_us: Vec::new(),
        launch_share_sum: 0.0,
        batch_sum: 0,
        ops: clients * per_client,
        ntt_cache_hit_rate: ntt.hits as f64 / (ntt.hits + ntt.misses).max(1) as f64,
        allocations_per_op: (server.stats().plane_allocs - warm_allocs) as f64
            / (clients * per_client) as f64,
    };
    for (latencies, share, batch_sum) in per_thread {
        run.latencies_us.extend(latencies);
        run.launch_share_sum += share;
        run.batch_sum += batch_sum;
    }
    run.latencies_us
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    run
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// The closed-loop batching-service bench: 8 simulated clients over one shared
/// session, coalescing batcher vs the one-request-at-a-time baseline.
fn bench_serve(quick: bool) -> ServeBench {
    heading("Closed-loop serve bench (moma-serve batching front-end)");
    let clients = 8;
    let per_client = if quick { 24 } else { 96 };
    let n = 1024;
    let batched = serve_closed_loop_run(
        ServeConfig {
            workers: 2,
            max_batch: 64,
            min_batch: 4,
            batch_window: Duration::from_millis(5),
            ..ServeConfig::default()
        },
        clients,
        per_client,
        n,
    );
    // max_batch = 1 disables coalescing: every request is its own batch and
    // pays the full per-op launch count.
    let baseline = serve_closed_loop_run(
        ServeConfig {
            workers: 2,
            max_batch: 1,
            min_batch: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
        clients,
        per_client,
        n,
    );
    // The steady-state probe: serial traffic into a single worker with
    // coalescing off. After the per-shape warm-up nothing in the request path
    // allocates — this run's allocations_per_op must be exactly zero.
    let steady = serve_closed_loop_run(
        ServeConfig {
            workers: 1,
            max_batch: 1,
            min_batch: 1,
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        },
        1,
        if quick { 32 } else { 128 },
        n,
    );

    let result = ServeBench {
        clients,
        requests: batched.ops,
        n,
        throughput_ops_per_sec: batched.ops as f64 / batched.elapsed_s,
        p50_us: percentile(&batched.latencies_us, 0.50),
        p99_us: percentile(&batched.latencies_us, 0.99),
        launches_per_op: batched.launch_share_sum / batched.ops as f64,
        baseline_launches_per_op: baseline.launch_share_sum / baseline.ops as f64,
        avg_batch: batched.batch_sum as f64 / batched.ops as f64,
        ntt_cache_hit_rate: batched.ntt_cache_hit_rate,
        allocations_per_op: batched.allocations_per_op,
        baseline_allocations_per_op: baseline.allocations_per_op,
        steady_state_allocations_per_op: steady.allocations_per_op,
    };
    println!(
        "{clients} closed-loop clients x {per_client} requests (n = {n} NTT + fused RNS chains):"
    );
    println!(
        "  batched    {:>10.0} ops/s   p50 {:>8.1} us   p99 {:>8.1} us   {:.2} launches/op   avg batch {:.2}",
        result.throughput_ops_per_sec,
        result.p50_us,
        result.p99_us,
        result.launches_per_op,
        result.avg_batch
    );
    println!(
        "  baseline   {:>10.0} ops/s   p50 {:>8.1} us   p99 {:>8.1} us   {:.2} launches/op   (max_batch = 1)",
        baseline.ops as f64 / baseline.elapsed_s,
        percentile(&baseline.latencies_us, 0.50),
        percentile(&baseline.latencies_us, 0.99),
        result.baseline_launches_per_op
    );
    println!(
        "  coalescing cuts launches/op by {:.2}x; NTT plan cache hit rate {:.4}",
        result.baseline_launches_per_op / result.launches_per_op,
        result.ntt_cache_hit_rate
    );
    println!(
        "  heap plane allocations/op: batched {:.4}, baseline {:.4}, steady state {:.4}",
        result.allocations_per_op,
        result.baseline_allocations_per_op,
        result.steady_state_allocations_per_op
    );
    result
}

/// Result of the warm-start measurement: building a session's plan caches
/// from scratch vs restoring them from a snapshot.
struct WarmStartBench {
    cold_build_ms: f64,
    restore_ms: f64,
    speedup: f64,
    snapshot_bytes: usize,
    plans_restored: usize,
}

/// Populates every plan family the warm-start bench measures: a 64-bit NTT
/// plan and an RNS basis with its conversion, rescale, and fused-chain plans.
fn warm_start_workload(session: &Session) {
    let _ = session.ntt_default(1024);
    let src = session.rns_with_capacity(256);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let _ = src.conversion_to(&dst);
    let _ = src.rescale_plan();
    let _ = src.rescale_extend_to(&dst);
}

/// Measures precompute-once warm start: the time to build the plan caches
/// cold vs the time to [`Session::restore`] them from a snapshot. Restore
/// validates every table arithmetically but skips the expensive builds
/// (prime search, twiddle generation, CRT inverses), so it must win.
fn bench_session_warm_start(iters: u32) -> WarmStartBench {
    heading("Session warm start (snapshot/restore vs cold plan build)");
    let warm = Session::default();
    warm_start_workload(&warm);
    let bytes = warm.snapshot();
    let report = Session::default()
        .restore(&bytes)
        .expect("bench snapshot restores");
    let plans_restored = report.ntt_plans
        + report.multiword_plans
        + report.rns_plans
        + report.baseconv_plans
        + report.rescale_plans
        + report.rescale_extend_plans;

    let cold_build_ms = best_run(iters, &(), |_| {
        let session = Session::default();
        warm_start_workload(&session);
        std::hint::black_box(session);
    }) * 1e3;
    let restore_ms = best_run(iters, &(), |_| {
        let session = Session::default();
        session.restore(&bytes).expect("bench snapshot restores");
        std::hint::black_box(session);
    }) * 1e3;

    let result = WarmStartBench {
        cold_build_ms,
        restore_ms,
        speedup: cold_build_ms / restore_ms,
        snapshot_bytes: bytes.len(),
        plans_restored,
    };
    println!(
        "  cold build   {:>10.3} ms   ({} plans)",
        result.cold_build_ms, plans_restored
    );
    println!(
        "  restore      {:>10.3} ms   ({} snapshot bytes)",
        result.restore_ms, result.snapshot_bytes
    );
    println!("  warm-start speedup: {:.2}x", result.speedup);
    result
}

/// One point of the open-loop overload sweep: a fixed arrival schedule at
/// `load_factor` times the measured closed-loop capacity against a
/// bounded-queue server.
struct OverloadPoint {
    load_factor: f64,
    offered_qps: f64,
    attempts: u64,
    accepted: u64,
    shed: u64,
    expired: u64,
    shed_rate: f64,
    goodput_ops_per_sec: f64,
    p50_accepted_us: f64,
    p99_accepted_us: f64,
}

/// The open-loop overload sweep: the same server configuration driven at
/// ≈0.5x / 1x / 2x of measured capacity. Under capacity nothing should shed;
/// past capacity the bounded queue sheds the excess at admission and the
/// accepted-request latency stays bounded.
struct OverloadBench {
    n: usize,
    capacity_ops_per_sec: f64,
    sweep: Vec<OverloadPoint>,
}

impl OverloadBench {
    /// The saturated (2x) point — the headline row the CI invariants assert
    /// on, kept as the flat `serve_overload` fields in the JSON.
    fn headline(&self) -> &OverloadPoint {
        self.sweep
            .last()
            .expect("the sweep measured at least one rate")
    }
}

/// The overload server: deliberately capacity-capped (one worker, modest
/// batching) with a shallow bounded queue, so saturation — and the shedding
/// that keeps accepted-request latency flat — is reachable quickly.
fn overload_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_batch: 8,
        min_batch: 1,
        batch_window: Duration::from_millis(1),
        queue_depth: 64,
        ..ServeConfig::default()
    }
}

/// Saturating closed loop (pure NTT): enough clients to keep the worker busy;
/// their combined throughput is the capacity the open loop doubles.
fn overload_capacity_probe(clients: usize, per_client: usize, n: usize) -> f64 {
    let session = Session::default();
    let server = Server::new(session.clone(), overload_config());
    let q = session.ntt_default(n).modulus();
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = server.client();
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED + c as u64);
                for _ in 0..per_client {
                    let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
                    client
                        .call(WorkItem::NttForward { q, n, data })
                        .expect("capacity probe request");
                }
            });
        }
    });
    (clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

/// The open-loop overload bench: requests arrive on a fixed schedule at a
/// sweep of rates around the measured capacity (≈0.5x, 1x, 2x), regardless of
/// completions. Past capacity, the bounded submission queue sheds the excess
/// at admission ([`ServeError::Overloaded`]), so the latency of *accepted*
/// requests stays bounded instead of collapsing into an ever-growing queue.
fn bench_serve_overload(quick: bool) -> OverloadBench {
    heading("Open-loop overload sweep (admission control + load shedding)");
    let n = 1024;
    let capacity = overload_capacity_probe(16, if quick { 16 } else { 48 }, n);
    let duration_s = if quick { 0.6 } else { 1.25 };
    let sweep = [0.5, 1.0, 2.0]
        .into_iter()
        .map(|factor| overload_point(n, capacity, factor, duration_s))
        .collect();
    OverloadBench {
        n,
        capacity_ops_per_sec: capacity,
        sweep,
    }
}

/// Runs one fixed-rate open-loop point of the overload sweep against a fresh
/// capacity-capped server.
fn overload_point(n: usize, capacity: f64, load_factor: f64, duration_s: f64) -> OverloadPoint {
    let offered = load_factor * capacity;
    let total = (offered * duration_s).max(32.0) as u64;

    let session = Session::default();
    let server = Server::new(session.clone(), overload_config());
    let client = server.client();
    let q = session.ntt_default(n).modulus();
    // Warm the plan caches so the measured run starts from service steady
    // state, and pre-generate payloads so the generator thread stays cheap.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x10AD);
    let warm: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
    client
        .call(WorkItem::NttForward { q, n, data: warm })
        .expect("warmup request");
    let pool: Vec<Vec<u64>> = (0..32)
        .map(|_| (0..n).map(|_| rng.gen_range(0..q)).collect())
        .collect();

    let (done_tx, done_rx) = mpsc::channel::<(Ticket, Instant)>();
    let done_rx = Arc::new(Mutex::new(done_rx));
    let start = Instant::now();
    let (attempts, accepted, mut latencies_us) = std::thread::scope(|s| {
        // Waiter pool: resolves accepted tickets as they complete so the
        // generator never blocks on results (open loop, not closed loop).
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let done_rx = Arc::clone(&done_rx);
                s.spawn(move || {
                    let mut latencies = Vec::new();
                    loop {
                        let next = {
                            let rx = done_rx.lock().expect("waiter queue lock");
                            rx.recv()
                        };
                        let Ok((ticket, t0)) = next else { break };
                        if ticket.wait().is_ok() {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    latencies
                })
            })
            .collect();
        // Generator: fixed arrival schedule at the offered rate. A full queue
        // sheds instantly, which is exactly the behavior under test.
        let interval = Duration::from_secs_f64(1.0 / offered);
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        for i in 0..total {
            let target = start + interval.mul_f64(i as f64);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            attempts += 1;
            let item = WorkItem::NttForward {
                q,
                n,
                data: pool[i as usize % pool.len()].clone(),
            };
            let t0 = Instant::now();
            match client.submit(item) {
                Ok(ticket) => {
                    accepted += 1;
                    done_tx.send((ticket, t0)).expect("waiter pool alive");
                }
                Err(ServeError::Overloaded) => {}
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        drop(done_tx);
        let latencies: Vec<f64> = waiters
            .into_iter()
            .flat_map(|h| h.join().expect("overload waiter"))
            .collect();
        (attempts, accepted, latencies)
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let stats = server.stats();
    let result = OverloadPoint {
        load_factor,
        offered_qps: offered,
        attempts,
        accepted,
        shed: stats.shed,
        expired: stats.expired,
        shed_rate: stats.shed as f64 / attempts.max(1) as f64,
        goodput_ops_per_sec: latencies_us.len() as f64 / elapsed_s,
        p50_accepted_us: if latencies_us.is_empty() {
            0.0
        } else {
            percentile(&latencies_us, 0.50)
        },
        p99_accepted_us: if latencies_us.is_empty() {
            0.0
        } else {
            percentile(&latencies_us, 0.99)
        },
    };
    println!(
        "offered {:.0} req/s ({load_factor}x measured capacity {capacity:.0} ops/s) \
         for {duration_s:.2} s, n = {n}:",
        result.offered_qps
    );
    println!(
        "  attempted {} -> accepted {} / shed {} ({:.1}% shed rate), expired {}",
        result.attempts,
        result.accepted,
        result.shed,
        100.0 * result.shed_rate,
        result.expired,
    );
    println!(
        "  goodput {:>8.0} ops/s   accepted p50 {:>8.1} us   p99 {:>8.1} us \
         (bounded: excess load is shed at admission, not queued)",
        result.goodput_ops_per_sec, result.p50_accepted_us, result.p99_accepted_us
    );
    result
}

/// One measured FHE-style level ladder over the negacyclic ring layer:
/// ns/level, launches/level, warm allocations/level (must be zero), and a
/// bit-for-bit crosscheck against the `BigUint` schoolbook oracle.
struct LadderBench {
    n: usize,
    levels: usize,
    ns_per_level: f64,
    launches_per_level: f64,
    allocations_per_level: f64,
    crosscheck_n: usize,
    crosscheck_levels: usize,
    crosscheck_ok: bool,
}

/// Runs the full ladder — first step `a · b`, every later step squares the
/// running value (the shape [`moma::ring::oracle::ladder_replay`] mirrors) —
/// returning the floor-level result plus total launches and pool misses.
fn run_ladder(
    space: &moma::RingSpace,
    a: &moma::RingVec,
    b: &moma::RingVec,
) -> (moma::RingVec, u64, u64) {
    let (mut cur, first) = space.ladder_step(a, b);
    let mut launches = first.launches as u64;
    let mut allocs = first.allocs as u64;
    for _ in 1..space.steps() {
        let (next, stats) = space.ladder_step(&cur, &cur);
        launches += stats.launches as u64;
        allocs += stats.allocs as u64;
        cur = next;
    }
    (cur, launches, allocs)
}

fn ladder_operands(
    rng: &mut rand::rngs::StdRng,
    space: &moma::RingSpace,
) -> (Vec<BigUint>, Vec<BigUint>) {
    let coeffs = |rng: &mut rand::rngs::StdRng| -> Vec<BigUint> {
        (0..space.n())
            .map(|_| moma::bignum::random::random_below(rng, space.product(0)))
            .collect()
    };
    (coeffs(rng), coeffs(rng))
}

fn bench_fhe_ladder(session: &Session, quick: bool) -> LadderBench {
    heading("FHE level ladder (negacyclic ring over an RNS ladder)");
    let n = 4096;
    let levels = 8;
    let moduli = moma::ring::default_ladder(n, levels);
    let space = session.ring(n, &moduli);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1adde7);
    let (a_coeffs, b_coeffs) = ladder_operands(&mut rng, &space);
    let a = space.encode(0, &a_coeffs);
    let b = space.encode(0, &b_coeffs);

    // Warm-up: one full ladder builds every negacyclic plan, level basis, and
    // fused rescale chain, and stocks the pool with every plane the steady
    // state cycles through.
    let _ = run_ladder(&space, &a, &b);
    // Warm counters: launches are deterministic; allocations must be zero —
    // the whole ladder runs out of the session pool.
    let (_, launches, allocs) = run_ladder(&space, &a, &b);
    let iters = if quick { 2 } else { 5 };
    let mut best_ns = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let (out, _, _) = run_ladder(&space, &a, &b);
        best_ns = best_ns.min(t0.elapsed().as_secs_f64() * 1e9);
        drop(out);
    }

    // Crosscheck against the schoolbook `X^n + 1` oracle. The full bench
    // replays the ladder at the bench size (slow but run once per emission);
    // quick mode crosschecks a small ladder so CI smoke stays fast.
    let crosscheck_n = if quick { 256 } else { n };
    let crosscheck_ok = if crosscheck_n == n {
        let (out, _, _) = run_ladder(&space, &a, &b);
        let expect = moma::ring::oracle::ladder_replay(&moduli, &a_coeffs, &b_coeffs, levels);
        space.decode(&out) == expect
    } else {
        let small_moduli = moma::ring::default_ladder(crosscheck_n, levels);
        let small = session.ring(crosscheck_n, &small_moduli);
        let (sa, sb) = ladder_operands(&mut rng, &small);
        let (out, _, _) = run_ladder(&small, &small.encode(0, &sa), &small.encode(0, &sb));
        let expect = moma::ring::oracle::ladder_replay(&small_moduli, &sa, &sb, levels);
        small.decode(&out) == expect
    };
    assert!(
        crosscheck_ok,
        "ladder result diverged from the BigUint oracle"
    );

    let result = LadderBench {
        n,
        levels,
        ns_per_level: best_ns / levels as f64,
        launches_per_level: launches as f64 / levels as f64,
        allocations_per_level: allocs as f64 / levels as f64,
        crosscheck_n,
        crosscheck_levels: levels,
        crosscheck_ok,
    };
    println!(
        "n = {n}, L = {levels} ({} moduli, {}..{} bits):",
        moduli.len(),
        64 - moduli.iter().map(|m| m.leading_zeros()).max().unwrap_or(0),
        64 - moduli.iter().map(|m| m.leading_zeros()).min().unwrap_or(0)
    );
    println!("  ns/level           {:>12.1}", result.ns_per_level);
    println!("  launches/level     {:>12.2}", result.launches_per_level);
    println!(
        "  allocations/level  {:>12.2}   (warm pool: every plane recycled)",
        result.allocations_per_level
    );
    println!(
        "  oracle crosscheck  bit-for-bit at n = {crosscheck_n}, L = {levels}: {}",
        if result.crosscheck_ok { "ok" } else { "FAILED" }
    );
    result
}

fn bench(session: &Session, quick: bool, serve: &ServeBench, overload: &OverloadBench) {
    heading(if quick {
        "Hot-path bench (quick mode) -> BENCH_ntt_blas.json"
    } else {
        "Hot-path bench -> BENCH_ntt_blas.json"
    });
    let iters = if quick { 3 } else { 10 };
    let n = 1024;
    let batch_size = 64;

    let (speedup_u64, rows_u64) = bench_ntt_u64(session, n, iters);
    let (speedup_u128, rows_u128) = bench_ntt_u128(session, n, iters);
    println!("NTT, n = {n} (ns per butterfly):");
    for r in rows_u64.iter().chain(&rows_u128) {
        println!("  {:<14} {:>10.2}", r.path, r.ns_per_butterfly);
    }
    println!("  planned-vs-naive speedup: u64 {speedup_u64:.2}x, u128 {speedup_u128:.2}x");

    let (ntt_inline, ntt_launched) = bench_ntt_launcher(session, n, iters);
    println!("\nLauncher-routed u64 NTT, n = {n} (ns per butterfly):");
    println!("  inline plan    {ntt_inline:>10.2}");
    println!("  launcher       {ntt_launched:>10.2}");
    println!(
        "  launcher-vs-inline ratio: {:.2}x (stage launches pay a barrier per stage; \
         > 1 means overhead on this host)",
        ntt_launched / ntt_inline
    );

    let ntt_batch = if quick { 8 } else { 16 };
    let batched = bench_ntt_batched(session, n, ntt_batch, iters);
    println!(
        "\nStage-batched u64 NTT on the launcher, batch {ntt_batch} x {n} (ns per butterfly):"
    );
    println!(
        "  one-by-one     {:>10.2}   ({} launches)",
        batched.single_ns_per_butterfly, batched.single_launches
    );
    println!(
        "  batched        {:>10.2}   ({} launches, independent of batch size)",
        batched.batched_ns_per_butterfly, batched.batched_launches
    );

    // The RNS sections keep the full element count even in quick mode: at
    // 2^10 elements the direct path's launch overhead and the fused path's
    // VM dispatch cost land within noise of each other, which would make the
    // quick-mode rows too unstable for the CI ordering assertions. These
    // sections cost microseconds per run, so the larger count is free.
    let rns_elements = 1 << 12;
    let (rns_rows, rns_speedup) = bench_rns_blas(session, 256, rns_elements, iters);
    println!("\n256-bit RNS vector ops over {rns_elements} elements (ns per element):");
    for (path, ns) in &rns_rows {
        println!("  {path:<22} {ns:>10.2}");
    }
    println!("  planned-vs-context speedup on vec_mul: {rns_speedup:.2}x");

    let baseconv_rows = bench_rns_baseconv(session, 256, rns_elements, iters);
    println!(
        "\n256-bit RNS base extension / rescale over {rns_elements} elements (ns per element):"
    );
    for (path, ns, launches, allocs) in &baseconv_rows {
        println!("  {path:<26} {ns:>10.2}   ({launches} launches/op, {allocs} allocs/op)");
    }

    let chain = bench_fused_mul_chain(session, 256, rns_elements, iters);
    println!("\n256-bit fused mul->axpy chain over {rns_elements} elements (ns per element):");
    println!(
        "  unfused        {:>10.2}   ({} launches/op)",
        chain.unfused_ns, chain.unfused_launches
    );
    println!(
        "  fused          {:>10.2}   ({} launches/op)",
        chain.fused_ns, chain.fused_launches
    );
    println!(
        "  fused-vs-unfused speedup: {:.2}x (cost model selects {}); \
         session path {} allocs/op on a warm pool",
        chain.speedup,
        if chain.fused_selected {
            "fused"
        } else {
            "unfused"
        },
        chain.session_allocs
    );

    let warm_start = bench_session_warm_start(iters);

    let fused = bench_session_fused(session, 256, rns_elements, iters);
    println!("\n256-bit fused rescale-and-extend over {rns_elements} elements (ns per element):");
    println!("  two-pass       {:>10.2}", fused.two_pass_ns);
    println!("  fused          {:>10.2}", fused.fused_ns);
    println!(
        "  fused-vs-two-pass speedup: {:.2}x (cost model selects {})",
        fused.speedup,
        if fused.fused_selected {
            "fused"
        } else {
            "two-pass"
        }
    );

    let kernel_elements = batch_size * n;
    let kernel_iters = if quick { 2 } else { 5 };
    let modmul = bench_kernel_batch(KernelOp::ModMul, 128, kernel_elements, kernel_iters);
    let butterfly = bench_kernel_batch(KernelOp::Butterfly, 128, kernel_elements, kernel_iters);
    for k in [&modmul, &butterfly] {
        println!(
            "\nGenerated kernel '{}' over {kernel_elements} elements (batch {batch_size} x {n}):",
            k.name
        );
        println!("  interpreted    {:>10.2} ns/element", k.interp_ns);
        println!("  compiled       {:>10.2} ns/element", k.compiled_ns);
        println!("  compiled-vs-interpreted speedup: {:.2}x", k.speedup);
    }

    // Feed the measured compiled-executor numbers back into the analytical cost
    // model: fit the per-op weight scale so `weights.weigh(counts)` predicts
    // ns/element on this host (ROADMAP "GPU cost-model calibration").
    let samples: Vec<CalibrationSample> = [&modmul, &butterfly]
        .into_iter()
        .map(|k| CalibrationSample {
            counts: k.counts.clone(),
            measured_ns: k.compiled_ns,
        })
        .collect();
    let base = OpWeights::default();
    // The fit now names its failure mode; a skipped calibration is *reported*
    // (console + JSON) instead of the entry silently vanishing from the file.
    let cost_calibration = match calibrate(&base, &samples) {
        Ok(calibrated) => {
            let cal_scale = calibrated.mul / base.mul;
            println!("\nCost-model calibration from the two compiled-kernel samples:");
            println!("  fitted scale   {cal_scale:>10.4} ns per default-weight cycle");
            println!(
                "  weights (ns/op)  mul {:.2}  mul_low {:.2}  add/sub {:.2}  logic {:.2}  shift {:.2}  copy {:.2}",
                calibrated.mul,
                calibrated.mul_low,
                calibrated.add_sub,
                calibrated.logic,
                calibrated.shift,
                calibrated.copy
            );
            format!(
                "{{\n    \"samples\": {},\n    \"scale_ns_per_cycle\": {cal_scale:.4},\n    \
                 \"weights_ns\": {{\"mul\": {:.3}, \"mul_low\": {:.3}, \
                 \"add_sub\": {:.3}, \"logic\": {:.3}, \
                 \"shift\": {:.3}, \"copy\": {:.3}}}\n  }}",
                samples.len(),
                calibrated.mul,
                calibrated.mul_low,
                calibrated.add_sub,
                calibrated.logic,
                calibrated.shift,
                calibrated.copy
            )
        }
        Err(why) => {
            println!("\nCost-model calibration skipped: {why}");
            format!(
                "{{\n    \"samples\": {},\n    \"skipped\": \"{why}\"\n  }}",
                samples.len()
            )
        }
    };

    let (blas_seq, blas_par, blas_speedup) = bench_blas_batch(batch_size, n, iters);
    println!("\n256-bit BLAS vector multiplication, batch {batch_size} x {n} (ns per element):");
    println!("  sequential     {blas_seq:>10.2}");
    println!("  parallel       {blas_par:>10.2}");
    println!("  parallel-vs-sequential speedup: {blas_speedup:.2}x");

    let ladder = bench_fhe_ladder(session, quick);

    let ov = overload.headline();
    let json = format!(
        "{{\n  \"generated_by\": \"reproduce bench\",\n  \"quick\": {quick},\n  \"ntt\": {{\n    \
         \"n\": {n},\n    \"rows\": [\n{ntt_rows}\n    ],\n    \
         \"planned_vs_naive_speedup_u64\": {speedup_u64:.3},\n    \
         \"planned_vs_naive_speedup_u128\": {speedup_u128:.3}\n  }},\n  \
         \"ntt_launcher\": {{\n    \"n\": {n},\n    \
         \"inline_ns_per_butterfly\": {ntt_inline:.2},\n    \
         \"launcher_ns_per_butterfly\": {ntt_launched:.2},\n    \
         \"launcher_vs_inline_ratio\": {launcher_ratio:.3}\n  }},\n  \
         \"ntt_launcher_batched\": {{\n    \"n\": {n},\n    \
         \"batch\": {ntt_batch},\n    \
         \"batched_ns_per_butterfly\": {batched_ns:.2},\n    \
         \"single_ns_per_butterfly\": {batched_single_ns:.2},\n    \
         \"batched_stage_launches\": {batched_launches},\n    \
         \"per_transform_stage_launches\": {single_launches}\n  }},\n  \
         \"rns_blas\": {{\n    \"bits\": 256,\n    \"elements\": {rns_elements},\n    \
         \"rows\": [\n{rns_rows_json}\n    ],\n    \
         \"planned_vs_ctx_speedup_{mul_key}\": {rns_speedup:.3}\n  }},\n  \
         \"rns_baseconv\": {{\n    \"bits\": 256,\n    \"elements\": {rns_elements},\n    \
         \"rows\": [\n{baseconv_rows_json}\n    ]\n  }},\n  \
         \"rns_fused_chain\": {{\n    \"bits\": 256,\n    \
         \"elements\": {rns_elements},\n    \"chain\": \"mul_axpy\",\n    \
         \"fused_ns_per_element\": {chain_fused_ns:.2},\n    \
         \"unfused_ns_per_element\": {chain_unfused_ns:.2},\n    \
         \"fused_vs_unfused_speedup\": {chain_speedup:.3},\n    \
         \"fused_launches_per_op\": {chain_fused_launches},\n    \
         \"unfused_launches_per_op\": {chain_unfused_launches},\n    \
         \"session_allocations_per_op\": {chain_session_allocs},\n    \
         \"cost_model_selects_fused\": {chain_fused_selected}\n  }},\n  \
         \"session_warm_start\": {{\n    \
         \"cold_build_ms\": {ws_cold:.3},\n    \
         \"restore_ms\": {ws_restore:.3},\n    \
         \"warm_start_speedup\": {ws_speedup:.3},\n    \
         \"snapshot_bytes\": {ws_bytes},\n    \
         \"plans_restored\": {ws_plans}\n  }},\n  \
         \"session_fused_rescale_extend\": {{\n    \"bits\": 256,\n    \
         \"elements\": {rns_elements},\n    \
         \"fused_ns_per_element\": {fused_ns:.2},\n    \
         \"two_pass_ns_per_element\": {fused_two_pass_ns:.2},\n    \
         \"fused_vs_two_pass_speedup\": {fused_speedup:.3},\n    \
         \"cost_model_selects_fused\": {fused_selected}\n  }},\n  \
         \"kernel_batch\": {{\n    \"kernel\": \"{kernel_name}\",\n    \
         \"elements\": {kernel_elements},\n    \
         \"interpreted_ns_per_element\": {interp_ns:.2},\n    \
         \"compiled_ns_per_element\": {compiled_ns:.2},\n    \
         \"compiled_vs_interpreted_speedup\": {kernel_speedup:.3}\n  }},\n  \
         \"cost_calibration\": {cost_calibration},\n  \
         \"blas_batch\": {{\n    \"bits\": 256,\n    \"op\": \"{mul_key}\",\n    \
         \"batch\": {batch_size},\n    \"vector_len\": {n},\n    \
         \"sequential_ns_per_element\": {blas_seq:.2},\n    \
         \"parallel_ns_per_element\": {blas_par:.2},\n    \
         \"parallel_vs_sequential_speedup\": {blas_speedup:.3}\n  }},\n  \
         \"serve_closed_loop\": {{\n    \"clients\": {serve_clients},\n    \
         \"requests\": {serve_requests},\n    \"n\": {serve_n},\n    \
         \"throughput_ops_per_sec\": {serve_throughput:.1},\n    \
         \"p50_us\": {serve_p50:.1},\n    \"p99_us\": {serve_p99:.1},\n    \
         \"launches_per_op\": {serve_lpo:.3},\n    \
         \"baseline_launches_per_op\": {serve_baseline_lpo:.3},\n    \
         \"avg_batch\": {serve_avg_batch:.3},\n    \
         \"ntt_cache_hit_rate\": {serve_hit_rate:.4},\n    \
         \"allocations_per_op\": {serve_apo:.4},\n    \
         \"baseline_allocations_per_op\": {serve_baseline_apo:.4},\n    \
         \"steady_state_allocations_per_op\": {serve_steady_apo:.4}\n  }},\n  \
         \"serve_overload\": {{\n    \"n\": {ov_n},\n    \
         \"capacity_ops_per_sec\": {ov_capacity:.1},\n    \
         \"offered_qps\": {ov_offered:.1},\n    \
         \"attempts\": {ov_attempts},\n    \"accepted\": {ov_accepted},\n    \
         \"shed\": {ov_shed},\n    \"expired\": {ov_expired},\n    \
         \"shed_rate\": {ov_shed_rate:.4},\n    \
         \"goodput_ops_per_sec\": {ov_goodput:.1},\n    \
         \"p50_accepted_us\": {ov_p50:.1},\n    \
         \"p99_accepted_us\": {ov_p99:.1},\n    \
         \"sweep\": [\n{ov_sweep}\n    ]\n  }},\n  \
         \"fhe_ladder\": {{\n    \"n\": {fl_n},\n    \"levels\": {fl_levels},\n    \
         \"ns_per_level\": {fl_ns:.1},\n    \
         \"launches_per_level\": {fl_launches:.2},\n    \
         \"allocations_per_level\": {fl_allocs:.2},\n    \
         \"crosscheck_n\": {fl_cn},\n    \
         \"crosscheck_levels\": {fl_clevels},\n    \
         \"crosscheck_ok\": {fl_ok}\n  }}\n}}\n",
        ntt_rows = rows_u64
            .iter()
            .chain(&rows_u128)
            .map(|r| format!(
                "      {{\"path\": \"{}\", \"ns_per_butterfly\": {:.2}}}",
                r.path, r.ns_per_butterfly
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        launcher_ratio = ntt_launched / ntt_inline,
        batched_ns = batched.batched_ns_per_butterfly,
        batched_single_ns = batched.single_ns_per_butterfly,
        batched_launches = batched.batched_launches,
        single_launches = batched.single_launches,
        fused_ns = fused.fused_ns,
        fused_two_pass_ns = fused.two_pass_ns,
        fused_speedup = fused.speedup,
        fused_selected = fused.fused_selected,
        rns_rows_json = rns_rows
            .iter()
            .map(|(path, ns)| format!(
                "      {{\"path\": \"{path}\", \"ns_per_element\": {ns:.2}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        baseconv_rows_json = baseconv_rows
            .iter()
            .map(|(path, ns, launches, allocs)| format!(
                "      {{\"path\": \"{path}\", \"ns_per_element\": {ns:.2}, \
                 \"launches_per_op\": {launches}, \"allocations_per_op\": {allocs}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        chain_fused_ns = chain.fused_ns,
        chain_unfused_ns = chain.unfused_ns,
        chain_speedup = chain.speedup,
        chain_fused_launches = chain.fused_launches,
        chain_unfused_launches = chain.unfused_launches,
        chain_session_allocs = chain.session_allocs,
        chain_fused_selected = chain.fused_selected,
        ws_cold = warm_start.cold_build_ms,
        ws_restore = warm_start.restore_ms,
        ws_speedup = warm_start.speedup,
        ws_bytes = warm_start.snapshot_bytes,
        ws_plans = warm_start.plans_restored,
        mul_key = BlasOp::VecMul.key(),
        kernel_name = modmul.name,
        interp_ns = modmul.interp_ns,
        compiled_ns = modmul.compiled_ns,
        kernel_speedup = modmul.speedup,
        serve_clients = serve.clients,
        serve_requests = serve.requests,
        serve_n = serve.n,
        serve_throughput = serve.throughput_ops_per_sec,
        serve_p50 = serve.p50_us,
        serve_p99 = serve.p99_us,
        serve_lpo = serve.launches_per_op,
        serve_baseline_lpo = serve.baseline_launches_per_op,
        serve_avg_batch = serve.avg_batch,
        serve_hit_rate = serve.ntt_cache_hit_rate,
        serve_apo = serve.allocations_per_op,
        serve_baseline_apo = serve.baseline_allocations_per_op,
        serve_steady_apo = serve.steady_state_allocations_per_op,
        ov_n = overload.n,
        ov_capacity = overload.capacity_ops_per_sec,
        ov_offered = ov.offered_qps,
        ov_attempts = ov.attempts,
        ov_accepted = ov.accepted,
        ov_shed = ov.shed,
        ov_expired = ov.expired,
        ov_shed_rate = ov.shed_rate,
        ov_goodput = ov.goodput_ops_per_sec,
        ov_p50 = ov.p50_accepted_us,
        ov_p99 = ov.p99_accepted_us,
        ov_sweep = overload
            .sweep
            .iter()
            .map(|p| format!(
                "      {{\"load_factor\": {:.2}, \"offered_qps\": {:.1}, \
                 \"attempts\": {}, \"accepted\": {}, \"shed\": {}, \
                 \"shed_rate\": {:.4}, \"goodput_ops_per_sec\": {:.1}, \
                 \"p50_accepted_us\": {:.1}, \"p99_accepted_us\": {:.1}}}",
                p.load_factor,
                p.offered_qps,
                p.attempts,
                p.accepted,
                p.shed,
                p.shed_rate,
                p.goodput_ops_per_sec,
                p.p50_accepted_us,
                p.p99_accepted_us
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        fl_n = ladder.n,
        fl_levels = ladder.levels,
        fl_ns = ladder.ns_per_level,
        fl_launches = ladder.launches_per_level,
        fl_allocs = ladder.allocations_per_level,
        fl_cn = ladder.crosscheck_n,
        fl_clevels = ladder.crosscheck_levels,
        fl_ok = ladder.crosscheck_ok,
    );
    std::fs::write("BENCH_ntt_blas.json", &json).expect("write BENCH_ntt_blas.json");
    println!("\nwrote BENCH_ntt_blas.json");
}
