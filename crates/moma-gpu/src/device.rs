//! GPU device models (paper Table 2 plus public architectural parameters).

use std::fmt;

/// Specification of one GPU model.
///
/// The first five fields are exactly the paper's Table 2; the remaining fields are the
/// public architectural figures the analytical cost model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of CUDA cores (Table 2 "#Cores").
    pub cores: u32,
    /// Maximum clock frequency in MHz (Table 2 "Max Freq.").
    pub max_freq_mhz: u32,
    /// Device memory size in GB (Table 2 "RAM Size").
    pub ram_gb: u32,
    /// Memory bus type (Table 2 "Bus Type").
    pub bus: &'static str,
    /// CUDA toolkit version used in the paper (Table 2 "Toolkit").
    pub toolkit: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Shared memory per SM in KiB.
    pub shared_mem_kb: u32,
    /// Peak memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: u32,
    /// Integer-pipeline issue efficiency relative to the H100 generation (captures the
    /// lower per-clock integer throughput of older architectures).
    pub int_ipc_scale: f64,
}

impl DeviceSpec {
    /// NVIDIA H100 Tensor Core (server class, 2023).
    pub const H100: DeviceSpec = DeviceSpec {
        name: "H100",
        cores: 16896,
        max_freq_mhz: 1980,
        ram_gb: 80,
        bus: "HBM3",
        toolkit: "12.2",
        sms: 132,
        shared_mem_kb: 228,
        mem_bandwidth_gbs: 3350,
        int_ipc_scale: 1.0,
    };

    /// NVIDIA GeForce RTX 4090 (consumer class, 2022).
    pub const RTX4090: DeviceSpec = DeviceSpec {
        name: "RTX 4090",
        cores: 16384,
        max_freq_mhz: 2595,
        ram_gb: 24,
        bus: "GDDR6X",
        toolkit: "12.0",
        sms: 128,
        shared_mem_kb: 100,
        mem_bandwidth_gbs: 1008,
        int_ipc_scale: 0.95,
    };

    /// NVIDIA Tesla V100 Tensor Core (server class, 2017).
    pub const V100: DeviceSpec = DeviceSpec {
        name: "V100",
        cores: 5120,
        max_freq_mhz: 1530,
        ram_gb: 32,
        bus: "HBM2",
        toolkit: "11.7",
        sms: 80,
        shared_mem_kb: 96,
        mem_bandwidth_gbs: 900,
        int_ipc_scale: 0.75,
    };

    /// All benchmarked devices, in the paper's Table 2 order.
    pub fn all() -> [DeviceSpec; 3] {
        [Self::H100, Self::RTX4090, Self::V100]
    }

    /// Peak integer operation throughput in word operations per second.
    ///
    /// One CUDA core retires roughly one 32-bit integer operation per clock; a 64-bit
    /// word operation (the machine word of the generated kernels) costs about two of
    /// those, which is folded into the cost model's per-operation weights instead.
    pub fn peak_ops_per_second(&self) -> f64 {
        self.cores as f64 * self.max_freq_mhz as f64 * 1e6 * self.int_ipc_scale
    }

    /// Total shared memory in bytes per SM.
    pub fn shared_mem_bytes(&self) -> u64 {
        self.shared_mem_kb as u64 * 1024
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores @ {} MHz, {} GB {}, CUDA {})",
            self.name, self.cores, self.max_freq_mhz, self.ram_gb, self.bus, self.toolkit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_values() {
        let h100 = DeviceSpec::H100;
        assert_eq!(
            (h100.cores, h100.max_freq_mhz, h100.ram_gb),
            (16896, 1980, 80)
        );
        let rtx = DeviceSpec::RTX4090;
        assert_eq!((rtx.cores, rtx.max_freq_mhz, rtx.ram_gb), (16384, 2595, 24));
        let v100 = DeviceSpec::V100;
        assert_eq!(
            (v100.cores, v100.max_freq_mhz, v100.ram_gb),
            (5120, 1530, 32)
        );
        assert_eq!(DeviceSpec::all().len(), 3);
    }

    #[test]
    fn device_ordering_by_throughput() {
        // H100 and RTX 4090 are within the same ballpark; V100 is far behind.
        let h = DeviceSpec::H100.peak_ops_per_second();
        let r = DeviceSpec::RTX4090.peak_ops_per_second();
        let v = DeviceSpec::V100.peak_ops_per_second();
        assert!(h > v * 3.0);
        assert!(r > v * 3.0);
        assert!((h / r - 1.0).abs() < 0.5);
    }

    #[test]
    fn display_contains_name_and_bus() {
        let text = DeviceSpec::V100.to_string();
        assert!(text.contains("V100"));
        assert!(text.contains("HBM2"));
    }
}
