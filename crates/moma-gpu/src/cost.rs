//! Analytical cost model: word-operation counts → estimated kernel time on a device.
//!
//! The model is deliberately simple and transparent:
//!
//! * each word-level operation class has a fixed cycle weight (multiplications are the
//!   dominant cost, as in the paper's §5.4 discussion);
//! * the per-thread cycle count is multiplied by the number of virtual threads and
//!   divided by the device's aggregate issue rate;
//! * a memory term models the data movement of the working set at the device's peak
//!   bandwidth;
//! * for NTT-style kernels, a penalty multiplies the compute term once the per-block
//!   working set exceeds the device's shared memory (the paper observes a 1.5× slowdown
//!   for H100/RTX 4090 and a much larger one for V100 at sizes above 2^10).

use crate::device::DeviceSpec;
use moma_ir::cost::OpCounts;
use std::time::Duration;

/// Cycle weights for one word-level operation, in units of a single-cycle 64-bit ALU
/// operation on the modelled device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWeights {
    /// Widening word multiplication.
    pub mul: f64,
    /// Low-half word multiplication.
    pub mul_low: f64,
    /// Addition / subtraction (including carry handling).
    pub add_sub: f64,
    /// Comparison, boolean logic, select.
    pub logic: f64,
    /// Multi-word constant shift (per statement).
    pub shift: f64,
    /// Register move.
    pub copy: f64,
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights {
            mul: 4.0,
            mul_low: 3.0,
            add_sub: 1.0,
            logic: 1.0,
            shift: 2.0,
            copy: 0.5,
        }
    }
}

impl OpWeights {
    /// Weighted cost of one kernel execution with the given operation counts, in
    /// whatever unit the weights are expressed in (device cycles for the default
    /// weights, measured nanoseconds for [`calibrate`]d weights).
    ///
    /// High-level modular statements (`mulmod`, `addmod`, `submod`, and the
    /// fused `macmod`) are weighed by the operation mix of their single-word
    /// expansion — kernels that execute them *fused* (the interpreter, the
    /// compiled executor's generated RNS kernels) would otherwise weigh zero and
    /// silently estimate as free.
    pub fn weigh(&self, counts: &OpCounts) -> f64 {
        // Word-op mixes of the moma-rewrite expansions: a Barrett mulmod lowers
        // to 2 widening muls, 1 low mul, 2 shifts, 2 sub, 2 logic; an addmod to
        // 2 add/sub and 5 logic; a submod to 2 add/sub and 2 logic.
        let mulmod = 2.0 * self.mul
            + self.mul_low
            + 2.0 * self.shift
            + 2.0 * self.add_sub
            + 2.0 * self.logic;
        let addmod = 2.0 * self.add_sub + 5.0 * self.logic;
        let submod = 2.0 * self.add_sub + 2.0 * self.logic;
        // One accumulation-loop term (`macreduce`) is a widening multiply folded
        // into a 128-bit accumulator: 1 mul + 2 add/sub. The single deferred
        // reduction (`reducewide`) is two division-free word reductions (each
        // 1 mul + 1 low mul + 2 add/sub + 2 logic), one Barrett fold of the
        // high word, and the final conditional add — the
        // `SingleBarrett::reduce_wide` sequence the compiled executor runs.
        let macreduce = self.mul + 2.0 * self.add_sub;
        let reduce_word = self.mul + self.mul_low + 2.0 * self.add_sub + 2.0 * self.logic;
        let reducewide = 2.0 * reduce_word + mulmod + addmod;
        counts.get("mulwide") as f64 * self.mul
            + counts.get("mullow") as f64 * self.mul_low
            + counts.add_sub() as f64 * self.add_sub
            + counts.logic() as f64 * self.logic
            + counts.shifts() as f64 * self.shift
            + counts.get("copy") as f64 * self.copy
            + counts.get("mulmod") as f64 * mulmod
            + counts.get("addmod") as f64 * addmod
            + counts.get("submod") as f64 * submod
            + counts.get("macmod") as f64 * (mulmod + addmod)
            + counts.get("macreduce") as f64 * macreduce
            + counts.get("reducewide") as f64 * reducewide
    }

    /// Returns the weights uniformly scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> OpWeights {
        OpWeights {
            mul: self.mul * factor,
            mul_low: self.mul_low * factor,
            add_sub: self.add_sub * factor,
            logic: self.logic * factor,
            shift: self.shift * factor,
            copy: self.copy * factor,
        }
    }
}

/// One measured observation for weight calibration: a kernel's per-element word
/// operation counts paired with its measured per-element runtime.
#[derive(Debug, Clone)]
pub struct CalibrationSample {
    /// Word-operation counts of one kernel execution (e.g.
    /// `moma_ir::compiled::CompiledKernel::counts_per_element`).
    pub counts: OpCounts,
    /// Measured wall-clock nanoseconds per element.
    pub measured_ns: f64,
}

/// Why a calibration fit could not produce usable weights.
///
/// The variants separate "the caller fed the fit garbage" (no samples, an
/// unusable measurement, counts with no weighted work) from "the data itself
/// rejected the model" (a non-positive or non-finite fitted scale), so callers
/// like `moma-bench` can *report* why calibration was skipped instead of
/// silently omitting the result.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The sample set was empty — nothing to fit.
    NoSamples,
    /// A sample carried a zero, negative, or non-finite measured runtime; such a
    /// measurement can never be explained by non-negative op weights, so the fit
    /// refuses it instead of letting it silently drag the scale to zero.
    InvalidMeasurement {
        /// Index of the offending sample.
        index: usize,
        /// Its measured per-element nanoseconds.
        measured_ns: f64,
    },
    /// No sample contained any weighted work (all op counts weighed zero), so
    /// the least-squares denominator vanished.
    NoWeightedWork,
    /// The fit completed but produced a scale that cannot be applied (zero,
    /// negative, or non-finite).
    DegenerateFit {
        /// The rejected scale.
        scale: f64,
    },
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::NoSamples => write!(f, "no calibration samples"),
            CalibrateError::InvalidMeasurement { index, measured_ns } => write!(
                f,
                "sample {index} has an unusable measurement ({measured_ns} ns/element)"
            ),
            CalibrateError::NoWeightedWork => {
                write!(
                    f,
                    "no sample contains weighted work (all op counts weigh 0)"
                )
            }
            CalibrateError::DegenerateFit { scale } => {
                write!(f, "fit produced an unusable scale ({scale})")
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

/// Fits the per-op weights to measured data, replacing the hand-set defaults.
///
/// The model stays linear in the operation counts, so fitting the relative
/// weights jointly from a handful of benchmark rows is under-determined; instead
/// this keeps the *ratios* of `base` and fits the single scale `s` minimizing the
/// least-squares error `Σ (s·w(cᵢ) − tᵢ)²` over the samples — the closed form
/// `s = Σ w(cᵢ)·tᵢ / Σ w(cᵢ)²`. The returned weights are therefore in *measured
/// nanoseconds per op*: `weights.weigh(counts)` predicts the per-element runtime
/// of a kernel on the measured platform. `reproduce bench` feeds the rows of
/// `BENCH_ntt_blas.json` through this to keep the cost model anchored to real
/// numbers.
///
/// # Errors
///
/// Returns a [`CalibrateError`] naming the first problem found: an empty sample
/// set, an unusable measurement, counts with no weighted work, or a degenerate
/// fitted scale.
pub fn calibrate(
    base: &OpWeights,
    samples: &[CalibrationSample],
) -> Result<OpWeights, CalibrateError> {
    if samples.is_empty() {
        return Err(CalibrateError::NoSamples);
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (index, s) in samples.iter().enumerate() {
        if !s.measured_ns.is_finite() || s.measured_ns <= 0.0 {
            return Err(CalibrateError::InvalidMeasurement {
                index,
                measured_ns: s.measured_ns,
            });
        }
        let predicted = base.weigh(&s.counts);
        num += predicted * s.measured_ns;
        den += predicted * predicted;
    }
    if den == 0.0 {
        return Err(CalibrateError::NoWeightedWork);
    }
    let scale = num / den;
    if scale.is_finite() && scale > 0.0 {
        Ok(base.scaled(scale))
    } else {
        Err(CalibrateError::DegenerateFit { scale })
    }
}

/// Result of a cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostEstimate {
    /// Estimated execution time of the whole launch.
    pub total: Duration,
    /// Compute component.
    pub compute: Duration,
    /// Memory-traffic component.
    pub memory: Duration,
    /// Cycles per virtual thread.
    pub cycles_per_thread: f64,
    /// Whether the shared-memory capacity was exceeded.
    pub spills_shared_memory: bool,
}

impl KernelCostEstimate {
    /// Total time in nanoseconds.
    pub fn nanos(&self) -> f64 {
        self.total.as_secs_f64() * 1e9
    }
}

/// Analytical cost model for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// The device being modelled.
    pub device: DeviceSpec,
    /// Operation weights.
    pub weights: OpWeights,
    /// Sustained fraction of peak integer throughput that word-serial cryptographic
    /// kernels achieve (occupancy, memory stalls, synchronization). Calibrated so the
    /// per-butterfly times land in the same decade as the paper's measurements.
    pub utilization: f64,
}

impl CostModel {
    /// Creates a model with default weights.
    pub fn new(device: DeviceSpec) -> Self {
        CostModel {
            device,
            weights: OpWeights::default(),
            utilization: 0.01,
        }
    }

    /// Sustained word-operation throughput in ops/second.
    fn effective_ops_per_second(&self) -> f64 {
        // A 64-bit word operation retires at roughly half the 32-bit integer rate.
        self.device.peak_ops_per_second() / 2.0 * self.utilization
    }

    /// Cycles consumed by one execution of a kernel with the given operation counts.
    pub fn cycles_per_thread(&self, counts: &OpCounts) -> f64 {
        self.weights.weigh(counts)
    }

    /// Estimates a data-parallel launch of `threads` virtual threads, each executing a
    /// kernel with `counts_per_thread` word operations and touching
    /// `bytes_per_thread` bytes of global memory.
    pub fn estimate_launch(
        &self,
        counts_per_thread: &OpCounts,
        threads: u64,
        bytes_per_thread: u64,
    ) -> KernelCostEstimate {
        let cycles = self.cycles_per_thread(counts_per_thread);
        let effective_ops_per_second = self.effective_ops_per_second();
        let compute_s = cycles * threads as f64 / effective_ops_per_second;
        let memory_s = (bytes_per_thread as f64 * threads as f64)
            / (self.device.mem_bandwidth_gbs as f64 * 1e9);
        let total_s = compute_s.max(memory_s) + 2.0e-6; // fixed launch overhead
        KernelCostEstimate {
            total: Duration::from_secs_f64(total_s),
            compute: Duration::from_secs_f64(compute_s),
            memory: Duration::from_secs_f64(memory_s),
            cycles_per_thread: cycles,
            spills_shared_memory: false,
        }
    }

    /// Estimates a full `n`-point NTT at the given element width.
    ///
    /// `counts_per_butterfly` is the word-operation count of one generated butterfly
    /// kernel. The transform runs `log2(n)` stages of `n/2` butterflies; stages are
    /// serialized (grid synchronization between stages), and the whole stage-parallel
    /// workload is spread over the device. When the working set of one transform
    /// exceeds the per-SM shared memory, the compute term is multiplied by a
    /// generation-dependent spill penalty (the behaviour Figure 3a shows at 2^11).
    pub fn estimate_ntt(
        &self,
        counts_per_butterfly: &OpCounts,
        n: u64,
        element_bits: u32,
    ) -> KernelCostEstimate {
        assert!(
            n.is_power_of_two() && n >= 2,
            "NTT size must be a power of two"
        );
        let log_n = n.trailing_zeros() as u64;
        let butterflies = n / 2 * log_n;
        let cycles_bf = self.cycles_per_thread(counts_per_butterfly);

        // Steady-state (batched) throughput: the device retires butterflies at its
        // sustained word-operation rate (§5.1: one thread per butterfly, batches keep
        // every SM busy).
        let compute_per_bf = cycles_bf / self.effective_ops_per_second();

        // Working set of one transform: n elements of element_bits plus twiddles.
        let bytes = n * (element_bits as u64 / 8) * 2;
        let spills = bytes > self.device.shared_mem_bytes();
        // Once the transform no longer fits in shared memory each butterfly goes through
        // global memory (two loads, two stores, one twiddle) and the whole kernel slows
        // down by a generation-dependent factor (Figure 3a: ~1.5x on H100/RTX 4090, much
        // more on the V100).
        let spill_penalty = if spills {
            match self.device.name {
                "V100" => 4.0,
                _ => 1.5,
            }
        } else {
            1.0
        };
        let memory_per_bf = if spills {
            5.0 * (element_bits as f64 / 8.0) / (self.device.mem_bandwidth_gbs as f64 * 1e9)
        } else {
            0.0
        };
        let compute_s = compute_per_bf * spill_penalty * butterflies as f64;
        let memory_s = memory_per_bf * butterflies as f64;
        // One (batch-amortized) launch overhead; visible only at small transform sizes,
        // which is why the left edge of the Figure 3 curves sits higher.
        let total_s = compute_s + memory_s + 2.0e-6;
        KernelCostEstimate {
            total: Duration::from_secs_f64(total_s),
            compute: Duration::from_secs_f64(compute_s),
            memory: Duration::from_secs_f64(memory_s),
            cycles_per_thread: cycles_bf,
            spills_shared_memory: spills,
        }
    }

    /// Runtime per butterfly in nanoseconds for an `n`-point NTT (the y-axis of the
    /// paper's Figures 1 and 3: `2·t_single / (n·log2 n)`).
    pub fn ntt_time_per_butterfly_ns(
        &self,
        counts_per_butterfly: &OpCounts,
        n: u64,
        element_bits: u32,
    ) -> f64 {
        let est = self.estimate_ntt(counts_per_butterfly, n, element_bits);
        let butterflies = (n / 2) as f64 * (n.trailing_zeros() as f64);
        est.nanos() / butterflies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::{Op, Operand};

    fn counts(muls: u64, adds: u64) -> OpCounts {
        let mut c = OpCounts::new();
        for _ in 0..muls {
            c.record(&Op::MulWide {
                a: Operand::Const(1),
                b: Operand::Const(1),
            });
        }
        for _ in 0..adds {
            c.record(&Op::AddWide {
                a: Operand::Const(1),
                b: Operand::Const(1),
                carry_in: None,
            });
        }
        c
    }

    #[test]
    fn cycle_weights_add_up() {
        let model = CostModel::new(DeviceSpec::H100);
        assert_eq!(model.cycles_per_thread(&counts(2, 3)), 2.0 * 4.0 + 3.0);
    }

    #[test]
    fn more_work_costs_more() {
        let model = CostModel::new(DeviceSpec::H100);
        let small = model.estimate_launch(&counts(4, 8), 1 << 20, 64);
        let big = model.estimate_launch(&counts(16, 32), 1 << 20, 256);
        assert!(big.total > small.total);
        assert!(big.cycles_per_thread > small.cycles_per_thread);
    }

    #[test]
    fn v100_is_slower_than_h100() {
        let c = counts(30, 60);
        let h = CostModel::new(DeviceSpec::H100).estimate_ntt(&c, 1 << 16, 256);
        let v = CostModel::new(DeviceSpec::V100).estimate_ntt(&c, 1 << 16, 256);
        assert!(v.total > h.total);
    }

    #[test]
    fn shared_memory_cliff_appears_above_capacity() {
        let c = counts(10, 20);
        let model = CostModel::new(DeviceSpec::V100);
        // 96 KiB of shared memory: 2^11 elements of 256 bits (2*64 KiB with twiddles)
        // spill, 2^10 do not.
        let small = model.estimate_ntt(&c, 1 << 10, 256);
        let large = model.estimate_ntt(&c, 1 << 11, 256);
        assert!(!small.spills_shared_memory);
        assert!(large.spills_shared_memory);
        let per_bf_small = model.ntt_time_per_butterfly_ns(&c, 1 << 10, 256);
        let per_bf_large = model.ntt_time_per_butterfly_ns(&c, 1 << 11, 256);
        assert!(per_bf_large > per_bf_small);
    }

    #[test]
    fn per_butterfly_time_grows_with_bit_width_ops() {
        // More word ops per butterfly (wider inputs) must increase time per butterfly.
        let model = CostModel::new(DeviceSpec::RTX4090);
        let narrow = model.ntt_time_per_butterfly_ns(&counts(9, 20), 4096, 128);
        let wide = model.ntt_time_per_butterfly_ns(&counts(36, 80), 4096, 256);
        assert!(wide > narrow);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn ntt_size_must_be_power_of_two() {
        CostModel::new(DeviceSpec::H100).estimate_ntt(&counts(1, 1), 1000, 128);
    }

    #[test]
    fn calibrate_recovers_a_known_scale() {
        let base = OpWeights::default();
        // Synthesize measurements from the base weights scaled by a known factor;
        // the least-squares fit must recover it exactly (up to float error).
        let truth = 7.25;
        let samples: Vec<CalibrationSample> = [counts(4, 8), counts(30, 60), counts(1, 0)]
            .into_iter()
            .map(|c| CalibrationSample {
                measured_ns: base.weigh(&c) * truth,
                counts: c,
            })
            .collect();
        let fitted = calibrate(&base, &samples).expect("fit succeeds");
        assert!((fitted.mul - base.mul * truth).abs() < 1e-9);
        assert!((fitted.add_sub - base.add_sub * truth).abs() < 1e-9);
        for s in &samples {
            assert!((fitted.weigh(&s.counts) - s.measured_ns).abs() < 1e-6);
        }
    }

    #[test]
    fn calibrate_balances_noisy_samples() {
        let base = OpWeights::default();
        // Two samples pulling in different directions: the fit lands between the
        // per-sample scales, weighted toward the heavier kernel.
        let heavy = counts(30, 60);
        let light = counts(2, 4);
        let samples = [
            CalibrationSample {
                measured_ns: base.weigh(&heavy) * 3.0,
                counts: heavy,
            },
            CalibrationSample {
                measured_ns: base.weigh(&light) * 5.0,
                counts: light,
            },
        ];
        let fitted = calibrate(&base, &samples).expect("fit succeeds");
        let scale = fitted.mul / base.mul;
        assert!(scale > 3.0 && scale < 5.0, "scale {scale}");
        assert!(
            (scale - 3.0).abs() < (scale - 5.0).abs(),
            "heavier sample dominates the fit (scale {scale})"
        );
    }

    #[test]
    fn high_level_modular_ops_weigh_their_expansion_mix() {
        let w = OpWeights::default();
        let mut fused = OpCounts::new();
        fused.record(&Op::MulModBarrett {
            a: Operand::Const(1),
            b: Operand::Const(1),
            q: Operand::Const(3),
            mu: Operand::Const(0),
            mbits: 2,
        });
        fused.record(&Op::MulAddMod {
            a: Operand::Const(1),
            b: Operand::Const(1),
            c: Operand::Const(0),
            q: Operand::Const(3),
            mu: Operand::Const(0),
            mbits: 2,
        });
        let weighed = w.weigh(&fused);
        assert!(weighed > 0.0, "fused modular ops must not weigh zero");
        // macmod = mulmod + addmod, so the pair weighs two mulmods plus one
        // addmod's worth of word ops.
        let mulmod = 2.0 * w.mul + w.mul_low + 2.0 * w.shift + 2.0 * w.add_sub + 2.0 * w.logic;
        let addmod = 2.0 * w.add_sub + 5.0 * w.logic;
        assert!((weighed - (2.0 * mulmod + addmod)).abs() < 1e-9);
        // A calibration sample made of fused ops now carries weighted work.
        let fit = calibrate(
            &w,
            &[CalibrationSample {
                counts: fused,
                measured_ns: 100.0,
            }],
        );
        assert!(fit.is_ok(), "fused-op sample must be fittable: {fit:?}");
    }

    #[test]
    fn accumulation_loops_weigh_less_than_the_macmod_chain_they_replace() {
        let w = OpWeights::default();
        let k = 4;
        let mut chain = OpCounts::new();
        for _ in 0..k {
            chain.record(&Op::MulAddMod {
                a: Operand::Const(1),
                b: Operand::Const(1),
                c: Operand::Const(0),
                q: Operand::Const(97),
                mu: Operand::Const(0),
                mbits: 7,
            });
        }
        let mut fused = OpCounts::new();
        fused.record(&Op::MacReduceMod {
            pairs: vec![(Operand::Const(1), Operand::Const(1)); k],
            q: 97,
            mu: 0,
            mbits: 7,
            radix: 0,
            recip: 0,
        });
        let chain_cost = w.weigh(&chain);
        let fused_cost = w.weigh(&fused);
        assert!(fused_cost > 0.0, "accumulation loops must not weigh zero");
        assert!(
            fused_cost < chain_cost,
            "a {k}-term accumulation loop ({fused_cost}) must undercut the \
             macmod chain it replaces ({chain_cost}): one deferred reduction \
             instead of {k} full Barrett reductions"
        );
        // The exact mix: k widening MACs plus one deferred wide reduction.
        let mulmod = 2.0 * w.mul + w.mul_low + 2.0 * w.shift + 2.0 * w.add_sub + 2.0 * w.logic;
        let addmod = 2.0 * w.add_sub + 5.0 * w.logic;
        let macreduce = w.mul + 2.0 * w.add_sub;
        let reduce_word = w.mul + w.mul_low + 2.0 * w.add_sub + 2.0 * w.logic;
        let reducewide = 2.0 * reduce_word + mulmod + addmod;
        assert!((fused_cost - (k as f64 * macreduce + reducewide)).abs() < 1e-9);
    }

    #[test]
    fn calibrate_names_each_failure_mode() {
        let base = OpWeights::default();
        assert_eq!(calibrate(&base, &[]), Err(CalibrateError::NoSamples));
        // No weighted work at all.
        assert_eq!(
            calibrate(
                &base,
                &[CalibrationSample {
                    counts: OpCounts::new(),
                    measured_ns: 10.0,
                }]
            ),
            Err(CalibrateError::NoWeightedWork)
        );
        // Zero/negative/non-finite measurements are flagged with their index
        // instead of silently dragging the scale to zero.
        for bad in [0.0, -4.5, f64::NAN, f64::INFINITY] {
            let samples = [
                CalibrationSample {
                    counts: counts(2, 2),
                    measured_ns: 8.0,
                },
                CalibrationSample {
                    counts: counts(3, 3),
                    measured_ns: bad,
                },
            ];
            match calibrate(&base, &samples) {
                Err(CalibrateError::InvalidMeasurement { index: 1, .. }) => {}
                other => panic!("expected InvalidMeasurement for {bad}, got {other:?}"),
            }
        }
        // Every error renders a human-readable reason for the bench report.
        assert!(CalibrateError::NoSamples
            .to_string()
            .contains("no calibration"));
        assert!(CalibrateError::DegenerateFit { scale: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
