//! A GPU execution simulator.
//!
//! The paper benchmarks nvcc-compiled CUDA kernels on three NVIDIA GPUs (Table 2).
//! Neither the GPUs nor the CUDA toolchain are available in this reproduction, so this
//! crate provides the closest synthetic equivalent that exercises the same code paths:
//!
//! * [`device`] — device models for the H100, RTX 4090, and V100 with the Table 2
//!   specifications plus the public architectural figures the cost model needs;
//! * [`launch`] — a data-parallel batch launcher that executes one virtual CUDA thread
//!   per element on a host thread pool (used both for functional execution of generated
//!   kernels through the `moma-ir` interpreter and for wall-clock measurements of the
//!   runtime-library kernels);
//! * [`pool`] — a thread-safe buffer pool that hands out reusable plane-sized
//!   `u64` (and `AtomicU64`) buffers keyed by size class, the host stand-in for a
//!   device memory pool: steady-state serving acquires every working plane here
//!   instead of the allocator, and the hit/miss counters make "allocation-free
//!   after warmup" a tested invariant;
//! * [`cost`] — an analytical cost model that converts per-thread word-operation counts
//!   (produced by the rewrite system / interpreter) into estimated kernel runtimes on a
//!   given device, including the shared-memory capacity cliff the paper observes for
//!   NTT sizes above 2^10.
//!
//! Absolute times are not expected to match the authors' hardware; the model is
//! calibrated so that the *shape* of the paper's figures (scaling with bit-width and
//! transform size, device ordering, memory cliffs) is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod launch;
pub mod pool;

pub use cost::{CostModel, KernelCostEstimate};
pub use device::DeviceSpec;
pub use launch::{
    launch_chunks, launch_compiled, launch_compiled_batch, launch_compiled_batch_into,
    launch_indexed, launch_kernel, launch_map, launch_map_with, LaunchStats,
};
pub use pool::{BufferPool, PoolStats};
