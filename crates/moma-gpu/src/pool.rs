//! Reusable `u64` buffer pool for residue planes and flat launch outputs.
//!
//! The paper's thesis is precompute-once-execute-many, and the launch path
//! holds up its end — plans and kernels are cached — but on real hardware the
//! *memory* side matters just as much: steady-state serving must not touch the
//! allocator per request. [`BufferPool`] is the host-side stand-in for a device
//! memory pool: plane-sized `Vec<u64>` buffers are handed out and taken back
//! keyed by power-of-two size class, so after a warmup phase every acquire is
//! a recycled hit and the allocator is out of the hot path entirely.
//!
//! The pool is thread-safe (one mutex around the shelves; counters are
//! atomic) and deliberately simple: this is bookkeeping for a few dozen large
//! buffers per session, not a general-purpose allocator. Every acquire and
//! recycle is counted, so "steady-state is allocation-free" is a *tested
//! invariant* — callers read [`BufferPool::stats`] before and after a warm
//! workload and assert the miss counter did not move.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Smallest size class handed out: requests below this round up, so tiny
/// buffers do not fragment the shelves.
const MIN_CLASS: usize = 64;

/// Buffers retained per size class; beyond this, recycled buffers are freed
/// instead of shelved so a burst cannot pin memory forever.
const MAX_SHELF: usize = 32;

/// Monotonic pool counters (a snapshot; see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquires served from a shelved buffer (no heap allocation).
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer (cold start, or a size
    /// class whose shelf was empty).
    pub misses: u64,
    /// Buffers returned to a shelf by [`BufferPool::recycle`].
    pub recycled: u64,
    /// Recycled buffers dropped because their shelf was full.
    pub dropped: u64,
    /// Buffers currently shelved (a gauge, not a counter).
    pub resident_buffers: u64,
    /// Total capacity in `u64` words across all shelved buffers (a gauge).
    pub resident_words: u64,
}

impl PoolStats {
    /// Misses accumulated since `earlier` — the quantity steady-state tests
    /// assert is zero after warmup.
    pub fn misses_since(&self, earlier: &PoolStats) -> u64 {
        self.misses - earlier.misses
    }
}

/// A thread-safe pool of reusable `Vec<u64>` buffers keyed by size class.
///
/// Size classes are powers of two (minimum `MIN_CLASS` = 64 words): an acquire for any
/// length is served by a buffer whose capacity is at least the next power of
/// two, and a recycled buffer is shelved under the largest class its capacity
/// covers — so buffers flow freely between callers with different exact
/// lengths, as long as they share a class.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelves: Mutex<HashMap<usize, Vec<Vec<u64>>>>,
    /// Atomic working planes (the batched NTT's in-place butterfly cells) are
    /// a distinct element type, so they get their own shelves; hits and
    /// misses feed the same counters.
    cell_shelves: Mutex<HashMap<usize, Vec<Vec<AtomicU64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

/// The size class that serves a request of `len` words: the next power of two,
/// floored at [`MIN_CLASS`].
fn class_for(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

/// The largest class a buffer of `capacity` words can serve: the previous
/// power of two (capacity itself when it is exactly a power of two).
fn shelf_for(capacity: usize) -> usize {
    if capacity.is_power_of_two() {
        capacity
    } else {
        capacity.next_power_of_two() / 2
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Hands out a zeroed buffer of exactly `len` words, reusing a shelved
    /// buffer when one of the right class is available (a *hit*: no heap
    /// allocation happens) and allocating otherwise (a *miss*).
    pub fn acquire(&self, len: usize) -> Vec<u64> {
        let class = class_for(len);
        let shelved = {
            let mut shelves = self.shelves.lock().unwrap_or_else(PoisonError::into_inner);
            shelves.get_mut(&class).and_then(Vec::pop)
        };
        match shelved {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                // Within the reserved capacity: zero-fill, no reallocation.
                buf.resize(len, 0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(class);
                buf.resize(len, 0);
                buf
            }
        }
    }

    /// Takes a buffer back for reuse. Buffers too small to serve any class are
    /// freed; a full shelf also frees instead of growing without bound.
    pub fn recycle(&self, buf: Vec<u64>) {
        let shelf = shelf_for(buf.capacity());
        if buf.capacity() < MIN_CLASS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shelves = self.shelves.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = shelves.entry(shelf).or_default();
        if slot.len() >= MAX_SHELF {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hands out a zeroed `AtomicU64` working plane of exactly `len` cells —
    /// the atomic twin of [`BufferPool::acquire`], for in-place butterfly
    /// stages whose disjoint writes are spelled with relaxed atomics. Shares
    /// the hit/miss counters with the `u64` side.
    pub fn acquire_cells(&self, len: usize) -> Vec<AtomicU64> {
        let class = class_for(len);
        let shelved = {
            let mut shelves = self
                .cell_shelves
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shelves.get_mut(&class).and_then(Vec::pop)
        };
        match shelved {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                // In-place re-construction within the reserved capacity: no
                // heap traffic (`AtomicU64::default()` is zero).
                buf.resize_with(len, AtomicU64::default);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(class);
                buf.resize_with(len, AtomicU64::default);
                buf
            }
        }
    }

    /// Takes an `AtomicU64` working plane back for reuse (see
    /// [`BufferPool::recycle`]).
    pub fn recycle_cells(&self, buf: Vec<AtomicU64>) {
        let shelf = shelf_for(buf.capacity());
        if buf.capacity() < MIN_CLASS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shelves = self
            .cell_shelves
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = shelves.entry(shelf).or_default();
        if slot.len() >= MAX_SHELF {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Misses so far (cheap: one atomic load). Ops that route planes through
    /// the pool report `misses()` deltas as their allocation count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let (mut resident_buffers, mut resident_words) = {
            let shelves = self.shelves.lock().unwrap_or_else(PoisonError::into_inner);
            shelves
                .values()
                .flatten()
                .fold((0u64, 0u64), |(n, w), b| (n + 1, w + b.capacity() as u64))
        };
        {
            let shelves = self
                .cell_shelves
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for b in shelves.values().flatten() {
                resident_buffers += 1;
                resident_words += b.capacity() as u64;
            }
        }
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            resident_buffers,
            resident_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_then_recycle_then_acquire_is_a_hit() {
        let pool = BufferPool::new();
        let buf = pool.acquire(1000);
        assert_eq!(buf.len(), 1000);
        assert!(buf.iter().all(|&x| x == 0));
        assert_eq!(pool.stats().misses, 1);
        pool.recycle(buf);
        assert_eq!(pool.stats().resident_buffers, 1);
        let again = pool.acquire(1000);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1, "the second acquire must not allocate");
        assert_eq!(again.len(), 1000);
        assert!(again.iter().all(|&x| x == 0), "reused buffers are zeroed");
    }

    #[test]
    fn different_lengths_share_a_size_class() {
        let pool = BufferPool::new();
        // 900 and 1024 both land in the 1024 class.
        pool.recycle(pool.acquire(900));
        let buf = pool.acquire(1024);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(buf.len(), 1024);
    }

    #[test]
    fn smaller_class_does_not_steal_bigger_buffers_and_vice_versa() {
        let pool = BufferPool::new();
        pool.recycle(pool.acquire(4096));
        let small = pool.acquire(100);
        assert_eq!(pool.stats().misses, 2, "a 4096 buffer serves 4096-class");
        pool.recycle(small);
        pool.recycle(pool.acquire(100));
        let stats = pool.stats();
        assert_eq!(stats.hits, 1, "the shelved small-class buffer is reused");
        assert_eq!(stats.resident_buffers, 2);
    }

    #[test]
    fn shelf_cap_frees_excess_buffers() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_SHELF + 5).map(|_| pool.acquire(256)).collect();
        for buf in bufs {
            pool.recycle(buf);
        }
        let stats = pool.stats();
        assert_eq!(stats.resident_buffers, MAX_SHELF as u64);
        assert_eq!(stats.dropped, 5);
    }

    #[test]
    fn pool_is_usable_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..100 {
                        let buf = pool.acquire(512);
                        pool.recycle(buf);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert!(stats.misses <= 4, "at most one cold buffer per thread");
    }

    #[test]
    fn atomic_cells_recycle_and_rezero() {
        let pool = BufferPool::new();
        let cells = pool.acquire_cells(300);
        cells[7].store(99, std::sync::atomic::Ordering::Relaxed);
        pool.recycle_cells(cells);
        let again = pool.acquire_cells(300);
        assert_eq!(pool.stats().hits, 1);
        assert!(again
            .iter()
            .all(|c| c.load(std::sync::atomic::Ordering::Relaxed) == 0));
    }

    #[test]
    fn misses_since_isolates_a_window() {
        let pool = BufferPool::new();
        pool.recycle(pool.acquire(128));
        let before = pool.stats();
        for _ in 0..10 {
            let buf = pool.acquire(128);
            pool.recycle(buf);
        }
        assert_eq!(pool.stats().misses_since(&before), 0);
    }
}
