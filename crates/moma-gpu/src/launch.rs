//! Data-parallel batch launcher: one virtual CUDA thread per element on a host thread
//! pool.
//!
//! The paper's BLAS kernels assign one CUDA thread per vector element and its NTT
//! kernels one thread per butterfly (§5.1). This module reproduces that model on the
//! host: the index space `0..n` is chunked over `std::thread::scope` workers sized by
//! [`std::thread::available_parallelism`], each element runs the same kernel, and the
//! wall-clock time of the whole launch is reported.
//!
//! Three tiers of entry points:
//!
//! * [`launch_indexed`] — runs a side-effecting closure per element (the most general
//!   form; callers own their output storage and synchronization);
//! * [`launch_map`] / [`launch_map_with`] — runs a *value-returning* closure per
//!   element and collects the results in index order. Each worker writes a disjoint
//!   chunk, so there is no lock on the output path; the `_with` variant additionally
//!   gives every worker its own mutable state (a compiled-kernel scratch frame, an
//!   RNG, …) initialized once per worker rather than once per element;
//! * [`launch_kernel`] / [`launch_compiled`] — executes a *generated* machine-level
//!   kernel per element. `launch_kernel` compiles the kernel once and routes the hot
//!   loop through [`moma_ir::compiled::CompiledKernel`]; the tree interpreter remains
//!   available as the correctness oracle (`moma_ir::interp`), and the test suites
//!   cross-check the two. [`launch_compiled_batch`] is the flat single-output batch
//!   form, and [`launch_compiled_rows`] the multi-output form that scatters each
//!   output to its own row — the shape fused residue kernels (one kernel computing
//!   every target row of a base conversion) need to run in a single launch.

use moma_ir::compiled::{BlockScratch, CompiledKernel, Scratch};
use moma_ir::Kernel;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Statistics of one simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Number of virtual threads (elements) executed.
    pub threads: usize,
    /// Number of host worker threads used.
    pub workers: usize,
    /// Number of kernel launches performed (1 for a single launch; accumulated
    /// totals count one per launch). On real hardware every launch pays a fixed
    /// dispatch + grid-barrier cost, so callers that batch work care about this
    /// number staying independent of the batch size.
    pub launches: usize,
    /// Plane-sized heap buffers (output planes, working planes) the launch
    /// path allocated. In-place entry points ([`launch_indexed`],
    /// [`launch_chunks`], [`launch_compiled_rows`],
    /// [`launch_compiled_batch_into`]) report `0` — the caller owns the
    /// output — and ops that route their planes through a
    /// [`crate::pool::BufferPool`] report the pool-miss delta, so a warm
    /// steady state reports `0` end to end. Per-worker scratch frames are
    /// O(registers), not plane-sized, and are excluded (the inline
    /// single-worker path reuses a thread-local frame and allocates none).
    pub allocs: usize,
    /// Wall-clock time of the launch.
    pub elapsed: Duration,
}

impl Default for LaunchStats {
    /// The statistics of a launch that had nothing to do: zero threads, one
    /// worker, zero launches, zero elapsed time — the identity for
    /// [`LaunchStats::accumulate`].
    fn default() -> Self {
        LaunchStats {
            threads: 0,
            workers: 1,
            launches: 0,
            allocs: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl LaunchStats {
    /// Wall-clock nanoseconds per element.
    pub fn nanos_per_element(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.elapsed.as_secs_f64() * 1e9 / self.threads as f64
        }
    }

    /// Folds a subsequent (serialized) launch into this total: threads and
    /// launch counts add up, workers take the maximum, elapsed times add up.
    /// Used by callers that chain several launches into one logical operation
    /// (NTT stages with a barrier between them, one launch per residue row, …).
    pub fn accumulate(&mut self, next: LaunchStats) {
        self.threads += next.threads;
        self.workers = self.workers.max(next.workers);
        self.launches += next.launches;
        self.allocs += next.allocs;
        self.elapsed += next.elapsed;
    }
}

/// Number of host worker threads to use.
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

thread_local! {
    /// Reusable per-thread scratch frames for the inline (single-worker)
    /// compiled paths. Scratch frames self-retag when they move between
    /// kernels, so one frame per thread serves every kernel that thread ever
    /// launches — the steady state allocates no scratch at all. Scoped worker
    /// threads are born fresh per launch and still build one frame each; that
    /// frame is O(registers), not plane-sized, and is excluded from
    /// [`LaunchStats::allocs`].
    static INLINE_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
    static INLINE_BLOCK_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::default());
}

/// Runs `f` with this thread's reusable scratch frame.
fn with_inline_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    INLINE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's reusable lane-block frame.
fn with_inline_block_scratch<R>(f: impl FnOnce(&mut BlockScratch) -> R) -> R {
    INLINE_BLOCK_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `kernel_fn(i)` for every `i` in `0..n` across a host thread pool and reports
/// the launch statistics.
///
/// The closure receives the element index, mirroring
/// `blockIdx.x * blockDim.x + threadIdx.x` in the generated CUDA code.
pub fn launch_indexed<F>(n: usize, kernel_fn: F) -> LaunchStats
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count().max(1);
    let start = Instant::now();
    if n > 0 {
        if workers == 1 {
            // One worker: run inline rather than paying a thread spawn for no
            // parallelism (single-core hosts, cgroup-limited CI runners).
            for i in 0..n {
                kernel_fn(i);
            }
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    if lo >= hi {
                        continue;
                    }
                    let f = &kernel_fn;
                    scope.spawn(move || {
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            });
        }
    }
    LaunchStats {
        threads: n,
        workers,
        launches: 1,
        allocs: 0,
        elapsed: start.elapsed(),
    }
}

/// Runs `f(i)` for every `i` in `0..n` in parallel and collects the results in
/// index order.
///
/// Each worker fills a disjoint output chunk, so no synchronization is needed on
/// the result path (unlike routing writes through a shared mutex, which serializes
/// exactly the part of the launch that was supposed to be parallel).
pub fn launch_map<T, F>(n: usize, f: F) -> (Vec<T>, LaunchStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    launch_map_with(n, || (), |(), i| f(i))
}

/// Like [`launch_map`], but gives each worker its own mutable state created by
/// `init` — scratch buffers, per-worker RNGs — initialized once per worker instead
/// of once per element.
pub fn launch_map_with<S, T, I, F>(n: usize, init: I, f: F) -> (Vec<T>, LaunchStats)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = worker_count().max(1);
    let start = Instant::now();
    let mut results: Vec<T> = Vec::with_capacity(n);
    if n > 0 && workers == 1 {
        // One worker: run inline (see `launch_indexed`).
        let mut state = init();
        results.extend((0..n).map(|i| f(&mut state, i)));
    } else if n > 0 {
        let chunk = n.div_ceil(workers);
        let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let f = &f;
                let init = &init;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("launch worker panicked"))
                .collect()
        });
        for c in chunks {
            results.extend(c);
        }
    }
    (
        results,
        LaunchStats {
            threads: n,
            workers,
            launches: 1,
            // The collected output buffer; map launches that must not allocate
            // belong on [`launch_chunks`] (in place) instead.
            allocs: usize::from(n > 0),
            elapsed: start.elapsed(),
        },
    )
}

/// Runs one virtual thread per `chunk_len`-sized chunk of `out`, giving each
/// thread index-order mutable access to exactly its own chunk (the last chunk may
/// be shorter when the length does not divide evenly).
///
/// This is the in-place counterpart of [`launch_map`] for kernels whose natural
/// unit of work is a whole row — e.g. one RNS residue plane — rather than one
/// element: the caller allocates the flat output once and every worker writes its
/// disjoint rows directly, with no per-row collection or concatenation on the
/// launch path.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn launch_chunks<T, F>(out: &mut [T], chunk_len: usize, f: F) -> LaunchStats
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let n = out.len().div_ceil(chunk_len);
    let workers = worker_count().max(1);
    let start = Instant::now();
    if n > 0 && workers == 1 {
        // One worker: run inline (see `launch_indexed`).
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
    } else if n > 0 {
        let per = n.div_ceil(workers);
        let mut chunks: Vec<(usize, &mut [T])> = out.chunks_mut(chunk_len).enumerate().collect();
        std::thread::scope(|scope| {
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let batch: Vec<(usize, &mut [T])> = chunks.drain(..take).collect();
                let f = &f;
                scope.spawn(move || {
                    for (i, chunk) in batch {
                        f(i, chunk);
                    }
                });
            }
        });
    }
    LaunchStats {
        threads: n,
        workers,
        launches: 1,
        allocs: 0,
        elapsed: start.elapsed(),
    }
}

/// Executes an already-compiled machine-level kernel once per element,
/// returning the outputs flat in element order ([`CompiledKernel::output_count`]
/// words per element).
///
/// `fill(i, params)` writes the parameter words for element `i` into the
/// provided slice. Each worker reuses one scratch frame and one parameter
/// buffer for its whole chunk and writes outputs straight into its disjoint
/// rows of the flat result — there is no per-element `Vec` on either the input
/// or the output path (the allocations that made the old
/// `Vec<Vec<u64>>`-collecting form an order of magnitude slower than the
/// arithmetic it was launching).
///
/// # Panics
///
/// Panics if execution fails on any element (which would indicate an invalid
/// generated kernel or malformed inputs).
pub fn launch_compiled<I>(compiled: &CompiledKernel, n: usize, fill: I) -> (Vec<u64>, LaunchStats)
where
    I: Fn(usize, &mut [u64]) + Sync,
{
    let p = compiled.param_count();
    let oc = compiled.output_count();
    let workers = worker_count().max(1);
    let start = Instant::now();
    let mut out = vec![0u64; n * oc];
    let run_rows = |scratch: &mut Scratch, lo: usize, hi: usize, out_slice: &mut [u64]| {
        let mut params = vec![0u64; p];
        for i in lo..hi {
            fill(i, &mut params);
            compiled
                .run_into(
                    &params,
                    scratch,
                    &mut out_slice[(i - lo) * oc..(i - lo + 1) * oc],
                )
                .unwrap_or_else(|e| panic!("generated kernel failed on element {i}: {e}"));
        }
    };
    if n > 0 && workers == 1 {
        // One worker: run inline with the thread's reusable frame (see
        // `launch_indexed` for why inline).
        with_inline_scratch(|scratch| run_rows(scratch, 0, n, &mut out));
    } else if n > 0 {
        let chunk = n.div_ceil(workers);
        let mut slices: Vec<(usize, usize, &mut [u64])> = Vec::new();
        let mut rest: &mut [u64] = &mut out;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            let (head, tail) = rest.split_at_mut((hi - lo) * oc);
            slices.push((lo, hi, head));
            rest = tail;
            lo = hi;
        }
        std::thread::scope(|scope| {
            for (lo, hi, slice) in slices {
                let run_rows = &run_rows;
                scope.spawn(move || run_rows(&mut compiled.scratch(), lo, hi, slice));
            }
        });
    }
    (
        out,
        LaunchStats {
            threads: n,
            workers,
            launches: 1,
            allocs: usize::from(n > 0),
            elapsed: start.elapsed(),
        },
    )
}

/// Executes an already-compiled kernel over a whole row-major input batch in one
/// launch: element `i`'s parameters occupy
/// `inputs[i * param_count .. (i + 1) * param_count]`, and the outputs are
/// returned flat in the same element order (`output_count` words per element).
///
/// This is the fast path for large batches: contiguous row ranges are split
/// across the host workers, each worker reuses one scratch frame and writes its
/// slice of the flat output directly — no per-element input `Vec`, no
/// per-element output allocation, no closure dispatch (the overhead that made
/// the per-element [`launch_compiled`] path ~10× slower than the direct
/// arithmetic it was measuring).
///
/// # Panics
///
/// Panics if `inputs.len()` is not a multiple of the kernel's parameter count,
/// or if execution fails on any element (an invalid generated kernel or
/// malformed inputs).
pub fn launch_compiled_batch(compiled: &CompiledKernel, inputs: &[u64]) -> (Vec<u64>, LaunchStats) {
    let p = compiled.param_count().max(1);
    assert!(
        inputs.len() % p == 0,
        "flat input length must be a multiple of the parameter count"
    );
    let n = if compiled.param_count() == 0 {
        0
    } else {
        inputs.len() / p
    };
    let mut out = vec![0u64; n * compiled.output_count()];
    let mut stats = launch_compiled_batch_into(compiled, inputs, &mut out);
    stats.allocs += usize::from(n > 0);
    (out, stats)
}

/// The caller-owns-the-output form of [`launch_compiled_batch`]: outputs are
/// written straight into `out` (`output_count` words per element, element
/// order), and the launch allocates nothing — callers that recycle `out`
/// through a [`crate::pool::BufferPool`] get an allocation-free steady state.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a multiple of the kernel's parameter count,
/// if `out.len()` is not `elements × output_count`, or if execution fails on
/// any element.
pub fn launch_compiled_batch_into(
    compiled: &CompiledKernel,
    inputs: &[u64],
    out: &mut [u64],
) -> LaunchStats {
    let p = compiled.param_count().max(1);
    assert!(
        inputs.len() % p == 0,
        "flat input length must be a multiple of the parameter count"
    );
    let n = if compiled.param_count() == 0 {
        0
    } else {
        inputs.len() / p
    };
    let oc = compiled.output_count();
    assert_eq!(
        out.len(),
        n * oc,
        "output length must be elements * output_count()"
    );
    let workers = worker_count().max(1);
    let start = Instant::now();
    let run_rows = |scratch: &mut Scratch, lo: usize, hi: usize, out_slice: &mut [u64]| {
        for i in lo..hi {
            compiled
                .run_into(
                    &inputs[i * p..(i + 1) * p],
                    scratch,
                    &mut out_slice[(i - lo) * oc..(i - lo + 1) * oc],
                )
                .unwrap_or_else(|e| panic!("generated kernel failed on element {i}: {e}"));
        }
    };
    if n > 0 && workers == 1 {
        // One worker: run inline with the thread's reusable frame (see
        // `launch_indexed`).
        with_inline_scratch(|scratch| run_rows(scratch, 0, n, out));
    } else if n > 0 {
        let chunk = n.div_ceil(workers);
        let mut slices: Vec<(usize, usize, &mut [u64])> = Vec::new();
        let mut rest: &mut [u64] = out;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            let (head, tail) = rest.split_at_mut((hi - lo) * oc);
            slices.push((lo, hi, head));
            rest = tail;
            lo = hi;
        }
        std::thread::scope(|scope| {
            for (lo, hi, slice) in slices {
                let run_rows = &run_rows;
                scope.spawn(move || run_rows(&mut compiled.scratch(), lo, hi, slice));
            }
        });
    }
    LaunchStats {
        threads: n,
        workers,
        launches: 1,
        allocs: 0,
        elapsed: start.elapsed(),
    }
}

/// Executes a multi-output compiled kernel over every element in a single
/// launch, scattering output `j` of element `i` to `out[j * cols + i]` — the
/// row-major matrix layout a residue-plane consumer needs.
///
/// Elements run in lane blocks through [`CompiledKernel::run_lanes`]: each
/// bytecode instruction dispatches once per block of up to
/// [`moma_ir::compiled::LANE_BLOCK`] elements, and parameters are loaded a
/// whole block at a time — `fill(p, lo, lanes)` must write parameter `p` for
/// the consecutive elements `lo..lo + lanes.len()` into `lanes`, which for
/// row-major input planes is a contiguous row copy rather than a per-element
/// gather. Compared with running one [`launch_compiled_batch`] per output row,
/// this pays the fixed launch cost **once** for all rows, reads each input
/// element once instead of once per row, and never materializes an
/// element-major intermediate: every worker owns a disjoint column range of
/// each output row and writes results in place.
///
/// `out.len()` must equal `output_count() * cols`; the launch reports `cols`
/// virtual threads (one per element, each producing a full output column).
///
/// # Panics
///
/// Panics if `out.len()` is not `output_count() * cols`, or if execution fails
/// on any element (an invalid generated kernel or malformed inputs).
pub fn launch_compiled_rows<F>(
    compiled: &CompiledKernel,
    out: &mut [u64],
    cols: usize,
    fill: F,
) -> LaunchStats
where
    F: Fn(usize, usize, &mut [u64]) + Sync,
{
    let oc = compiled.output_count();
    assert_eq!(
        out.len(),
        oc * cols,
        "output length must be output_count() * cols"
    );
    let workers = worker_count().max(1);
    let start = Instant::now();
    let run_cols = |scratch: &mut BlockScratch, lo: usize, hi: usize, rows: &mut [&mut [u64]]| {
        let mut base = lo;
        while base < hi {
            let n = (hi - base).min(moma_ir::compiled::LANE_BLOCK);
            compiled
                .run_lanes(
                    n,
                    scratch,
                    |p, lanes| fill(p, base, lanes),
                    |j, lanes| rows[j][base - lo..base - lo + n].copy_from_slice(lanes),
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "generated kernel failed on elements {base}..{}: {e}",
                        base + n
                    )
                });
            base += n;
        }
    };
    if cols > 0 && oc > 0 && workers == 1 {
        // One worker: run inline with the thread's reusable frame (see
        // `launch_indexed`).
        let mut rows: Vec<&mut [u64]> = out.chunks_mut(cols).collect();
        with_inline_block_scratch(|scratch| run_cols(scratch, 0, cols, &mut rows));
    } else if cols > 0 && oc > 0 {
        // Carve every output row into the same per-worker column ranges, so
        // each worker holds a disjoint `&mut` window of all rows at once.
        let chunk = cols.div_ceil(workers);
        let mut bounds = Vec::new();
        let mut lo = 0;
        while lo < cols {
            bounds.push((lo, (lo + chunk).min(cols)));
            lo = (lo + chunk).min(cols);
        }
        let mut bundles: Vec<Vec<&mut [u64]>> =
            bounds.iter().map(|_| Vec::with_capacity(oc)).collect();
        for row in out.chunks_mut(cols) {
            let mut rest = row;
            for (w, &(lo, hi)) in bounds.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(hi - lo);
                bundles[w].push(head);
                rest = tail;
            }
        }
        std::thread::scope(|scope| {
            for (&(lo, hi), mut bundle) in bounds.iter().zip(bundles) {
                let run_cols = &run_cols;
                scope.spawn(move || run_cols(&mut compiled.block_scratch(), lo, hi, &mut bundle));
            }
        });
    }
    LaunchStats {
        threads: cols,
        workers,
        launches: 1,
        allocs: 0,
        elapsed: start.elapsed(),
    }
}

/// Executes a generated machine-level kernel once per element, returning the
/// outputs flat in element order (`output_count` words per element).
///
/// The kernel is compiled to register-allocated bytecode once, then the batch runs
/// through [`launch_compiled`]: `fill(i, params)` writes element `i`'s parameter
/// words into the provided slice. Callers that launch the same kernel repeatedly
/// should compile once with [`CompiledKernel::compile`] and call
/// [`launch_compiled`] directly.
///
/// # Panics
///
/// Panics if the kernel fails to compile or fails on any element (which would
/// indicate an invalid generated kernel).
pub fn launch_kernel<I>(kernel: &Kernel, n: usize, fill: I) -> (Vec<u64>, LaunchStats)
where
    I: Fn(usize, &mut [u64]) + Sync,
{
    let compiled = CompiledKernel::compile(kernel)
        .unwrap_or_else(|e| panic!("generated kernel failed to compile: {e}"));
    launch_compiled(&compiled, n, fill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::{interp, KernelBuilder, Op, Ty};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let stats = launch_indexed(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.threads, 1000);
        assert!(stats.workers >= 1);
        assert!(stats.nanos_per_element() > 0.0);
    }

    #[test]
    fn empty_launch_is_fine() {
        let stats = launch_indexed(0, |_| panic!("must not run"));
        assert_eq!(stats.threads, 0);
        assert_eq!(stats.nanos_per_element(), 0.0);
        let (out, stats) = launch_map(0, |_| -> u64 { panic!("must not run") });
        assert!(out.is_empty());
        assert_eq!(stats.threads, 0);
    }

    #[test]
    fn map_collects_results_in_index_order() {
        let (out, stats) = launch_map(10_000, |i| i * i);
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        assert_eq!(stats.threads, 10_000);
    }

    #[test]
    fn map_with_initializes_state_per_worker_not_per_element() {
        let inits = AtomicUsize::new(0);
        let (out, stats) = launch_map_with(
            5000,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, i| {
                // The state is a per-worker call counter bounded by the element
                // count; the result stays dependent only on `i`.
                *count += 1;
                assert!(*count <= 5000);
                i
            },
        );
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        let created = inits.load(Ordering::Relaxed);
        assert!(
            created <= stats.workers,
            "state must be per worker ({created} inits for {} workers)",
            stats.workers
        );
    }

    #[test]
    fn chunk_launch_fills_every_chunk_in_place() {
        let mut out = vec![0u64; 1000];
        let stats = launch_chunks(&mut out, 100, |i, chunk| {
            assert_eq!(chunk.len(), 100);
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 100 + j) as u64;
            }
        });
        assert_eq!(stats.threads, 10);
        assert!(out.iter().enumerate().all(|(k, &v)| v == k as u64));
    }

    #[test]
    fn chunk_launch_handles_ragged_tail_and_empty_output() {
        let mut out = vec![0u32; 7];
        let stats = launch_chunks(&mut out, 3, |i, chunk| {
            assert_eq!(chunk.len(), if i == 2 { 1 } else { 3 });
            chunk.fill(i as u32 + 1);
        });
        assert_eq!(stats.threads, 3);
        assert_eq!(out, [1, 1, 1, 2, 2, 2, 3]);
        let mut empty: [u8; 0] = [];
        let stats = launch_chunks(&mut empty, 4, |_, _| panic!("must not run"));
        assert_eq!(stats.threads, 0);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn chunk_launch_rejects_zero_chunks() {
        launch_chunks(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn kernel_launch_collects_outputs_in_order() {
        // A trivial generated kernel: out = a + b (mod 2^64) with carry.
        let mut kb = KernelBuilder::new("vecadd");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.local("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        let kernel = kb.build();

        let (outputs, stats) = launch_kernel(&kernel, 512, |i, params| {
            params[0] = i as u64;
            params[1] = 2 * i as u64;
        });
        assert_eq!(stats.threads, 512);
        assert_eq!(outputs.len(), 512);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(*out, 3 * i as u64);
        }
    }

    #[test]
    fn compiled_batch_launch_matches_per_element_launch() {
        let mut kb = KernelBuilder::new("modmul");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let p = kb.output("p", Ty::UInt(64));
        kb.push(
            vec![p],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: moma_ir::Operand::Const(2_147_483_647),
                mu: moma_ir::Operand::Const(0),
                mbits: 31,
            },
        );
        let compiled = CompiledKernel::compile(&kb.build()).unwrap();
        let n = 333; // deliberately not a multiple of any worker count
        let flat: Vec<u64> = (0..n)
            .flat_map(|i| [i as u64 * 77, i as u64 * 131 + 5])
            .collect();
        let (batch_out, stats) = launch_compiled_batch(&compiled, &flat);
        assert_eq!(stats.threads, n);
        assert_eq!(stats.launches, 1);
        assert_eq!(
            stats.allocs, 1,
            "one flat output buffer, nothing per element"
        );
        assert_eq!(batch_out.len(), n);
        let (per_elt, stats) = launch_compiled(&compiled, n, |i, params| {
            params[0] = i as u64 * 77;
            params[1] = i as u64 * 131 + 5;
        });
        assert_eq!(stats.allocs, 1);
        assert_eq!(per_elt, batch_out);
        let (empty, stats) = launch_compiled_batch(&compiled, &[]);
        assert!(empty.is_empty());
        assert_eq!(stats.threads, 0);
        assert_eq!(stats.allocs, 0);
    }

    #[test]
    fn batch_into_writes_caller_buffer_without_allocating() {
        let mut kb = KernelBuilder::new("double");
        let a = kb.param("a", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![o],
            Op::MulLow {
                a: a.into(),
                b: moma_ir::Operand::Const(2),
            },
        );
        let compiled = CompiledKernel::compile(&kb.build()).unwrap();
        let inputs: Vec<u64> = (0..257).collect();
        let mut out = vec![u64::MAX; 257];
        let stats = launch_compiled_batch_into(&compiled, &inputs, &mut out);
        assert_eq!(stats.threads, 257);
        assert_eq!(stats.allocs, 0, "the caller owns the output buffer");
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn batch_into_rejects_mismatched_output_length() {
        let mut kb = KernelBuilder::new("copy");
        let a = kb.param("a", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: a.into() });
        let compiled = CompiledKernel::compile(&kb.build()).unwrap();
        launch_compiled_batch_into(&compiled, &[1, 2, 3], &mut [0u64; 2]);
    }

    #[test]
    fn rows_launch_scatters_each_output_to_its_row() {
        // Two outputs per element: sum with carry and a shifted copy — enough
        // to see the row-major scatter (out[j * cols + i]).
        let mut kb = KernelBuilder::new("pair");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.local("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        let double = kb.output("double", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        kb.push(
            vec![double],
            Op::MulLow {
                a: a.into(),
                b: moma_ir::Operand::Const(2),
            },
        );
        let compiled = CompiledKernel::compile(&kb.build()).unwrap();
        let cols = 333; // deliberately not a multiple of any worker count
        let inputs: Vec<[u64; 2]> = (0..cols).map(|i| [i as u64 * 3, i as u64 + 7]).collect();
        let mut out = vec![0u64; 2 * cols];
        let stats = launch_compiled_rows(&compiled, &mut out, cols, |p, lo, lanes| {
            for (e, lane) in lanes.iter_mut().enumerate() {
                *lane = inputs[lo + e][p];
            }
        });
        assert_eq!(stats.threads, cols);
        assert_eq!(stats.launches, 1);
        assert_eq!(stats.allocs, 0, "rows launches write in place");
        let (oracle, _) = launch_compiled(&compiled, cols, |i, params| {
            params.copy_from_slice(&inputs[i]);
        });
        for i in 0..cols {
            assert_eq!(out[i], oracle[2 * i], "row 0 element {i}");
            assert_eq!(out[cols + i], oracle[2 * i + 1], "row 1 element {i}");
        }
        let mut empty: [u64; 0] = [];
        let stats =
            launch_compiled_rows(&compiled, &mut empty, 0, |_, _, _| panic!("must not run"));
        assert_eq!(stats.threads, 0);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn rows_launch_rejects_mismatched_output_length() {
        let mut kb = KernelBuilder::new("copy");
        let a = kb.param("a", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: a.into() });
        let compiled = CompiledKernel::compile(&kb.build()).unwrap();
        launch_compiled_rows(&compiled, &mut [0u64; 5], 4, |_, _, _| {});
    }

    #[test]
    fn launch_stats_count_launches() {
        let mut total = LaunchStats::default();
        assert_eq!(total.launches, 0);
        total.accumulate(launch_indexed(8, |_| {}));
        total.accumulate(launch_indexed(8, |_| {}));
        assert_eq!(total.launches, 2);
        assert_eq!(total.threads, 16);
    }

    #[test]
    fn compiled_launch_matches_the_interpreter_oracle() {
        let mut kb = KernelBuilder::new("modmul");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let q = kb.param("q", Ty::UInt(64));
        let p = kb.output("p", Ty::UInt(64));
        kb.push(
            vec![p],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: q.into(),
                mu: moma_ir::Operand::Const(0),
                mbits: 31,
            },
        );
        let kernel = kb.build();
        let compiled = CompiledKernel::compile(&kernel).unwrap();
        let feed = |i: usize| [i as u64 * 77, i as u64 * 131 + 5, 2_147_483_647];
        let (outputs, _) = launch_compiled(&compiled, 256, |i, params| {
            params.copy_from_slice(&feed(i));
        });
        for (i, out) in outputs.iter().enumerate() {
            let oracle = interp::run(&kernel, &feed(i)).unwrap();
            assert_eq!(oracle.outputs.len(), 1);
            assert_eq!(*out, oracle.outputs[0], "element {i}");
        }
    }
}
