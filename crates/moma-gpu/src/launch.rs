//! Data-parallel batch launcher: one virtual CUDA thread per element on a host thread
//! pool.
//!
//! The paper's BLAS kernels assign one CUDA thread per vector element and its NTT
//! kernels one thread per butterfly (§5.1). [`launch_indexed`] reproduces that model on
//! the host: the index space `0..n` is partitioned over worker threads (std scoped
//! threads), each element runs the same kernel closure, and the wall-clock time
//! of the whole launch is reported. [`launch_kernel`] does the same but executes a
//! *generated* machine-level kernel through the `moma-ir` interpreter, which is how the
//! functional correctness of generated code is exercised end to end.

use moma_ir::{interp, Kernel};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Statistics of one simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Number of virtual threads (elements) executed.
    pub threads: usize,
    /// Number of host worker threads used.
    pub workers: usize,
    /// Wall-clock time of the launch.
    pub elapsed: Duration,
}

impl LaunchStats {
    /// Wall-clock nanoseconds per element.
    pub fn nanos_per_element(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.elapsed.as_secs_f64() * 1e9 / self.threads as f64
        }
    }
}

/// Number of host worker threads to use.
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `kernel_fn(i)` for every `i` in `0..n` across a host thread pool and reports
/// the launch statistics.
///
/// The closure receives the element index, mirroring
/// `blockIdx.x * blockDim.x + threadIdx.x` in the generated CUDA code.
pub fn launch_indexed<F>(n: usize, kernel_fn: F) -> LaunchStats
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count().max(1);
    let start = Instant::now();
    if n > 0 {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let f = &kernel_fn;
                scope.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
            }
        });
    }
    LaunchStats {
        threads: n,
        workers,
        elapsed: start.elapsed(),
    }
}

/// Executes a generated machine-level kernel once per element through the interpreter.
///
/// `inputs(i)` supplies the parameter words for element `i`; the outputs of every
/// element are collected in index order.
///
/// # Panics
///
/// Panics if the interpreter fails on any element (which would indicate an invalid
/// generated kernel).
pub fn launch_kernel<I>(kernel: &Kernel, n: usize, inputs: I) -> (Vec<Vec<u64>>, LaunchStats)
where
    I: Fn(usize) -> Vec<u64> + Sync,
{
    let results: Mutex<Vec<Option<Vec<u64>>>> = Mutex::new(vec![None; n]);
    let stats = launch_indexed(n, |i| {
        let input = inputs(i);
        let run = interp::run(kernel, &input)
            .unwrap_or_else(|e| panic!("generated kernel failed on element {i}: {e}"));
        results.lock()[i] = Some(run.outputs);
    });
    let outputs = results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every element executed"))
        .collect();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_ir::{KernelBuilder, Op, Ty};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let stats = launch_indexed(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.threads, 1000);
        assert!(stats.workers >= 1);
        assert!(stats.nanos_per_element() > 0.0);
    }

    #[test]
    fn empty_launch_is_fine() {
        let stats = launch_indexed(0, |_| panic!("must not run"));
        assert_eq!(stats.threads, 0);
        assert_eq!(stats.nanos_per_element(), 0.0);
    }

    #[test]
    fn kernel_launch_collects_outputs_in_order() {
        // A trivial generated kernel: out = a + b (mod 2^64) with carry.
        let mut kb = KernelBuilder::new("vecadd");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.local("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        let kernel = kb.build();

        let (outputs, stats) = launch_kernel(&kernel, 512, |i| vec![i as u64, 2 * i as u64]);
        assert_eq!(stats.threads, 512);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out, &vec![3 * i as u64]);
        }
    }
}
