//! Batched execution of BLAS kernels.
//!
//! The paper reaches steady-state throughput by processing many independent vectors in
//! one launch (§5.1: "we employ batch processing on the GPU to harness additional
//! levels of parallelism") and reports the per-element runtime at the best batch size.
//! A [`Batch`] is simply a contiguous collection of `batch_size` vectors of `n`
//! elements each.

use crate::BlasOp;
use moma_mp::{ModRing, MpUint};
use rand::Rng;

/// A batch of equal-length vectors stored contiguously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<const L: usize> {
    /// Elements, vector after vector.
    pub data: Vec<MpUint<L>>,
    /// Length of each vector.
    pub vector_len: usize,
}

impl<const L: usize> Batch<L> {
    /// Creates a batch of `batch_size` vectors of `vector_len` uniformly random reduced
    /// elements.
    pub fn random<R: Rng + ?Sized>(
        ring: &ModRing<L>,
        rng: &mut R,
        batch_size: usize,
        vector_len: usize,
    ) -> Self {
        Batch {
            data: (0..batch_size * vector_len)
                .map(|_| ring.random_element(rng))
                .collect(),
            vector_len,
        }
    }

    /// Number of vectors in the batch.
    pub fn batch_size(&self) -> usize {
        self.data.len().checked_div(self.vector_len).unwrap_or(0)
    }

    /// Total number of elements.
    pub fn total_elements(&self) -> usize {
        self.data.len()
    }
}

/// Applies one BLAS operation element-wise across two batches (scalar `a` is used only
/// by `axpy`), sequentially. Returns the result batch.
///
/// # Panics
///
/// Panics if the batches have different shapes.
pub fn run_batch<const L: usize>(
    ring: &ModRing<L>,
    op: BlasOp,
    a_scalar: MpUint<L>,
    x: &Batch<L>,
    y: &Batch<L>,
) -> Batch<L> {
    assert_eq!(x.data.len(), y.data.len(), "batch shape mismatch");
    assert_eq!(x.vector_len, y.vector_len, "batch shape mismatch");
    let data = x
        .data
        .iter()
        .zip(&y.data)
        .map(|(&xi, &yi)| apply_element(ring, op, a_scalar, xi, yi))
        .collect();
    Batch {
        data,
        vector_len: x.vector_len,
    }
}

/// The per-element computation of each BLAS operation — exactly the element kernel a
/// GPU thread executes.
#[inline]
pub fn apply_element<const L: usize>(
    ring: &ModRing<L>,
    op: BlasOp,
    a_scalar: MpUint<L>,
    x: MpUint<L>,
    y: MpUint<L>,
) -> MpUint<L> {
    match op {
        BlasOp::VecMul => ring.mul(x, y),
        BlasOp::VecAdd => ring.add(x, y),
        BlasOp::VecSub => ring.sub(x, y),
        BlasOp::Axpy => ring.add(ring.mul(a_scalar, x), y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_mp::U256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring() -> ModRing<4> {
        ModRing::new(U256::from_hex(
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffe200000001",
        ))
    }

    #[test]
    fn batch_shape() {
        let ring = ring();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = Batch::random(&ring, &mut rng, 8, 32);
        assert_eq!(batch.batch_size(), 8);
        assert_eq!(batch.total_elements(), 256);
    }

    #[test]
    fn batched_result_matches_per_vector_result() {
        let ring = ring();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Batch::random(&ring, &mut rng, 4, 16);
        let y = Batch::random(&ring, &mut rng, 4, 16);
        let a = ring.random_element(&mut rng);
        for op in BlasOp::all() {
            let batched = run_batch(&ring, op, a, &x, &y);
            for i in 0..x.total_elements() {
                assert_eq!(
                    batched.data[i],
                    apply_element(&ring, op, a, x.data[i], y.data[i])
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let ring = ring();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Batch::random(&ring, &mut rng, 2, 16);
        let y = Batch::random(&ring, &mut rng, 2, 8);
        run_batch(&ring, BlasOp::VecAdd, U256::ONE, &x, &y);
    }
}
