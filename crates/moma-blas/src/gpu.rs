//! Data-parallel BLAS execution on the simulated GPU launcher.

use crate::batch::{apply_element, Batch};
use crate::BlasOp;
use moma_gpu::launch::{launch_map, LaunchStats};
use moma_mp::{ModRing, MpUint};

/// Runs one BLAS operation over a batch with one virtual GPU thread per element,
/// returning the result and the launch statistics (wall-clock time on the host thread
/// pool).
///
/// Elements are chunked across `std::thread::scope` workers sized by the machine's
/// available parallelism; every worker writes a disjoint slice of the output, so the
/// launch has no lock on its hot path.
///
/// # Panics
///
/// Panics if the batches have different shapes.
pub fn run_batch_parallel<const L: usize>(
    ring: &ModRing<L>,
    op: BlasOp,
    a_scalar: MpUint<L>,
    x: &Batch<L>,
    y: &Batch<L>,
) -> (Batch<L>, LaunchStats) {
    assert_eq!(x.data.len(), y.data.len(), "batch shape mismatch");
    assert_eq!(x.vector_len, y.vector_len, "batch shape mismatch");
    let n = x.data.len();
    let (data, stats) = launch_map(n, |i| {
        apply_element(ring, op, a_scalar, x.data[i], y.data[i])
    });
    (
        Batch {
            data,
            vector_len: x.vector_len,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::run_batch;
    use moma_mp::U128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential_for_all_ops() {
        let ring = ModRing::new(U128::from_hex("fffffffffffffffffffffe100000001"));
        let mut rng = StdRng::seed_from_u64(7);
        let x = Batch::random(&ring, &mut rng, 4, 64);
        let y = Batch::random(&ring, &mut rng, 4, 64);
        let a = ring.random_element(&mut rng);
        for op in BlasOp::all() {
            let sequential = run_batch(&ring, op, a, &x, &y);
            let (parallel, stats) = run_batch_parallel(&ring, op, a, &x, &y);
            assert_eq!(parallel, sequential, "{op:?}");
            assert_eq!(stats.threads, 256);
        }
    }

    #[test]
    fn large_batch_round_trips_add_then_sub() {
        let ring = ModRing::new(U128::from_hex("fffffffffffffffffffffe100000001"));
        let mut rng = StdRng::seed_from_u64(8);
        let x = Batch::random(&ring, &mut rng, 16, 256);
        let y = Batch::random(&ring, &mut rng, 16, 256);
        let a = ring.random_element(&mut rng);
        let (sum, _) = run_batch_parallel(&ring, BlasOp::VecAdd, a, &x, &y);
        let (back, _) = run_batch_parallel(&ring, BlasOp::VecSub, a, &sum, &y);
        assert_eq!(back, x);
    }
}
