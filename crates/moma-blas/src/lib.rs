//! Finite-field BLAS level-1 kernels over multi-word moduli.
//!
//! These are the point-wise polynomial operations of the paper's §2.3 / Figure 2:
//! vector addition, subtraction, multiplication, and `axpy` over `Z_q`, with each
//! element processed by one virtual GPU thread. The sequential entry points operate on
//! slices of [`moma_mp::MpUint`]; the [`gpu`] module runs the same element kernels
//! data-parallel on the simulated GPU launcher and reports launch statistics, and
//! [`batch`] provides the batched execution the paper uses to reach steady-state
//! throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod gpu;

use moma_mp::{ModRing, MpUint};

/// Element-wise `c[i] = (a[i] + b[i]) mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn vec_add_mod<const L: usize>(
    ring: &ModRing<L>,
    a: &[MpUint<L>],
    b: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| ring.add(x, y)).collect()
}

/// Element-wise `c[i] = (a[i] - b[i]) mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn vec_sub_mod<const L: usize>(
    ring: &ModRing<L>,
    a: &[MpUint<L>],
    b: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| ring.sub(x, y)).collect()
}

/// Element-wise `c[i] = (a[i] * b[i]) mod q` (the point-wise product used between the
/// forward and inverse NTT).
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn vec_mul_mod<const L: usize>(
    ring: &ModRing<L>,
    a: &[MpUint<L>],
    b: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| ring.mul(x, y)).collect()
}

/// BLAS `axpy`: `y[i] = (a * x[i] + y[i]) mod q` (Equation 10).
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn axpy_mod<const L: usize>(
    ring: &ModRing<L>,
    a: MpUint<L>,
    x: &[MpUint<L>],
    y: &[MpUint<L>],
) -> Vec<MpUint<L>> {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| ring.add(ring.mul(a, xi), yi))
        .collect()
}

/// The four BLAS operations the paper evaluates in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlasOp {
    /// Point-wise vector multiplication.
    VecMul,
    /// Vector addition.
    VecAdd,
    /// Vector subtraction.
    VecSub,
    /// `y = a·x + y`.
    Axpy,
}

impl BlasOp {
    /// All operations in the paper's reporting order.
    pub fn all() -> [BlasOp; 4] {
        [BlasOp::VecMul, BlasOp::VecAdd, BlasOp::VecSub, BlasOp::Axpy]
    }

    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            BlasOp::VecMul => "vector multiplication",
            BlasOp::VecAdd => "vector addition",
            BlasOp::VecSub => "vector subtraction",
            BlasOp::Axpy => "axpy",
        }
    }

    /// Stable snake_case key for machine-readable output (the row names of
    /// `BENCH_ntt_blas.json`), shared by the positional and RNS engines.
    pub fn key(&self) -> &'static str {
        match self {
            BlasOp::VecMul => "vec_mul",
            BlasOp::VecAdd => "vec_add",
            BlasOp::VecSub => "vec_sub",
            BlasOp::Axpy => "axpy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_mp::U128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring() -> ModRing<2> {
        ModRing::new(U128::from_hex("fffffffffffffffffffffe100000001"))
    }

    fn random_vec(ring: &ModRing<2>, n: usize, seed: u64) -> Vec<U128> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| ring.random_element(&mut rng)).collect()
    }

    #[test]
    fn add_sub_round_trip() {
        let ring = ring();
        let a = random_vec(&ring, 100, 1);
        let b = random_vec(&ring, 100, 2);
        let sum = vec_add_mod(&ring, &a, &b);
        let back = vec_sub_mod(&ring, &sum, &b);
        assert_eq!(back, a);
    }

    #[test]
    fn mul_distributes_over_add() {
        let ring = ring();
        let a = random_vec(&ring, 50, 3);
        let b = random_vec(&ring, 50, 4);
        let c = random_vec(&ring, 50, 5);
        let lhs = vec_mul_mod(&ring, &a, &vec_add_mod(&ring, &b, &c));
        let rhs = vec_add_mod(
            &ring,
            &vec_mul_mod(&ring, &a, &b),
            &vec_mul_mod(&ring, &a, &c),
        );
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn axpy_matches_manual_computation() {
        let ring = ring();
        let x = random_vec(&ring, 20, 6);
        let y = random_vec(&ring, 20, 7);
        let a = random_vec(&ring, 1, 8)[0];
        let out = axpy_mod(&ring, a, &x, &y);
        for i in 0..x.len() {
            assert_eq!(out[i], ring.add(ring.mul(a, x[i]), y[i]));
        }
    }

    #[test]
    fn blas_op_enumeration() {
        assert_eq!(BlasOp::all().len(), 4);
        assert_eq!(BlasOp::Axpy.name(), "axpy");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let ring = ring();
        let a = random_vec(&ring, 4, 9);
        let b = random_vec(&ring, 5, 10);
        vec_add_mod(&ring, &a, &b);
    }
}
