//! Property tests for the fused rescale-and-extend chain: on random mixed
//! narrow/wide bases and random inputs, `rescale_then_extend` must match the
//! `scale_and_round` → `base_convert` two-step `BigUint` oracle **bit for bit**
//! (including the `x + αM⁻` overshoot), and the two planned paths (fused and
//! two-pass) must agree with each other.

use moma_bignum::BigUint;
use moma_rns::{RnsContext, RnsMatrix, RnsPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic basis of `count` primes whose widths cycle through
/// `widths` (31-bit narrow rows exercise the single-widening-multiplication
/// path, 40/52-bit rows the general Barrett path).
fn mixed_basis(seed: u64, count: usize, widths: &[u32]) -> Vec<u64> {
    let mut moduli = Vec::with_capacity(count);
    for (i, &bits) in widths.iter().cycle().take(count).enumerate() {
        // One fresh prime per slot; distinct seeds keep the slots distinct.
        let m = RnsContext::with_random_primes(1, bits, seed ^ ((i as u64 + 1) << 17)).moduli()[0];
        if !moduli.contains(&m) {
            moduli.push(m);
        }
    }
    // Collisions are vanishingly rare; top up deterministically if one happened.
    let mut extra = 0u64;
    while moduli.len() < count {
        let m = RnsContext::with_random_primes(1, 31, seed ^ 0xdead ^ extra).moduli()[0];
        if !moduli.contains(&m) {
            moduli.push(m);
        }
        extra += 1;
    }
    moduli
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused chain equals the BigUint oracle chain bit for bit, on random
    /// mixed narrow/wide source and target bases.
    #[test]
    fn fused_chain_matches_biguint_oracle(
        seed in any::<u64>(),
        src_count in 3usize..6,
        dst_count in 2usize..6,
        cols in 1usize..12,
    ) {
        let src_moduli = mixed_basis(seed, src_count, &[31, 40, 31, 52]);
        let dst_moduli = mixed_basis(seed ^ 0xb1ab, dst_count, &[52, 31, 40]);
        let src_ctx = RnsContext::with_moduli(&src_moduli);
        let dst_ctx = RnsContext::with_moduli(&dst_moduli);
        let src = RnsPlan::new(&src_ctx);
        let dst = RnsPlan::new(&dst_ctx);
        let p = src.rescale_extend_plan(&dst);

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let values: Vec<BigUint> = (0..cols)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);

        let (fused, fused_stats) = src.rescale_then_extend(&p, &a);
        let (two_pass, _) = src.rescale_then_extend_two_pass(&p, &a);
        prop_assert_eq!(&fused, &two_pass, "fused and two-pass paths must agree");
        prop_assert_eq!(fused_stats.launches, 2, "fused path is two launch rounds");

        let out_ctx = src_ctx.without_last();
        for (c, v) in values.iter().enumerate() {
            let oracle = out_ctx.base_convert(
                &dst_ctx,
                &src_ctx.scale_and_round(&src_ctx.to_residues(v)),
            );
            prop_assert_eq!(fused.element(c), oracle, "column {}", c);
        }
    }

    /// The fused chain's reconstructed value is the rescaled quotient plus a
    /// small multiple of the shortened basis product (the approximate-conversion
    /// overshoot contract), whenever the target basis has headroom to represent
    /// it exactly.
    #[test]
    fn fused_chain_overshoot_stays_bounded(seed in any::<u64>(), cols in 1usize..8) {
        let src = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed, 4, &[31, 40])));
        // A roomy all-wide target: 4 × 52-bit ≫ 3 × ≤40-bit source product.
        let dst = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed ^ 0x77, 4, &[52])));
        let p = src.rescale_extend_plan(&dst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let values: Vec<BigUint> = (0..cols)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (out, _) = src.rescale_then_extend(&p, &a);
        let src_ctx = RnsContext::with_moduli(&src.moduli().collect::<Vec<_>>());
        let short_product = p.rescale_plan().output_plan().product().clone();
        for (c, v) in values.iter().enumerate() {
            let rescaled = p
                .rescale_plan()
                .output_plan()
                .from_residues(&src_ctx.scale_and_round(&src_ctx.to_residues(v)));
            let reconstructed = dst.to_biguints(&out)[c].clone();
            let excess = &reconstructed - &rescaled;
            let (alpha, rem) = excess.div_rem(&short_product);
            prop_assert!(rem.is_zero(), "column {}: overshoot must be a multiple of M⁻", c);
            prop_assert!(
                alpha.to_u64().unwrap() < p.rescale_plan().output_plan().moduli_count() as u64,
                "column {}: α out of range",
                c
            );
        }
    }
}
