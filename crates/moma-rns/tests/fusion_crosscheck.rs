//! Fusion cross-checks: every kernel that passes through the rewrite fusion
//! stage must stay **bit-for-bit** identical to its unfused form, with the
//! interpreter running the *unfused* program as the semantic oracle. Both the
//! fused interpretation and the fused compiled-bytecode execution are held to
//! the oracle, over fully random width-masked inputs.
//!
//! Coverage: every kernel shape the rewrite system generates (both widths,
//! both multiplication splitting rules), plus the RNS chain kernels — the
//! per-row base-convert MAC, the all-rows conversion, the `mul→axpy` chain,
//! and the `mul→rescale→extend` chain — on random mixed narrow/wide bases.

use moma_ir::{interp, validate, CompiledKernel, Kernel};
use moma_rewrite::passes::optimize;
use moma_rewrite::{lower, KernelSpec, LoweringConfig, MulAlgorithm};
use moma_rns::{BaseConvPlan, RnsContext, RnsPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random inputs masked to each parameter's declared width.
fn random_inputs(kernel: &Kernel, rng: &mut StdRng) -> Vec<u64> {
    kernel
        .params
        .iter()
        .map(|p| {
            let bits = kernel.ty(*p).bits();
            let v: u64 = rng.gen();
            if bits >= 64 {
                v
            } else {
                v & ((1u64 << bits) - 1)
            }
        })
        .collect()
}

/// Optimizes `unfused` and demands that both the interpreter and the compiled
/// executor running the fused program reproduce the unfused interpreter oracle
/// exactly, on `rounds` random inputs.
fn fused_matches_unfused(unfused: &Kernel, rounds: usize, rng: &mut StdRng) {
    validate::validate(unfused).expect("unfused kernel must type-check");
    let fused = optimize(unfused);
    validate::validate(&fused).expect("fused kernel must type-check");
    assert_eq!(
        fused.params.len(),
        unfused.params.len(),
        "{}: fusion must not change the parameter list",
        unfused.name
    );
    let compiled = CompiledKernel::compile(&fused)
        .unwrap_or_else(|e| panic!("{}: fused compile failed: {e}", unfused.name));
    for _ in 0..rounds {
        let inputs = random_inputs(unfused, rng);
        let oracle = interp::run(unfused, &inputs)
            .unwrap_or_else(|e| panic!("{}: unfused interp failed: {e}", unfused.name));
        let via_interp = interp::run(&fused, &inputs)
            .unwrap_or_else(|e| panic!("{}: fused interp failed: {e}", unfused.name));
        assert_eq!(
            via_interp.outputs, oracle.outputs,
            "{}: fused interpretation diverges (inputs {inputs:x?})",
            unfused.name
        );
        let batch = compiled
            .run_batch(&inputs)
            .unwrap_or_else(|e| panic!("{}: fused batch run failed: {e}", unfused.name));
        assert_eq!(
            batch.element(0),
            &oracle.outputs[..],
            "{}: fused compiled execution diverges (inputs {inputs:x?})",
            unfused.name
        );
    }
}

/// Builds a deterministic basis of `count` distinct primes whose widths cycle
/// through `widths` (31-bit narrow rows interleaved with 40/52-bit wide ones).
fn mixed_basis(seed: u64, count: usize, widths: &[u32]) -> Vec<u64> {
    let mut moduli = Vec::with_capacity(count);
    for (i, &bits) in widths.iter().cycle().take(count).enumerate() {
        let m = RnsContext::with_random_primes(1, bits, seed ^ ((i as u64 + 1) << 17)).moduli()[0];
        if !moduli.contains(&m) {
            moduli.push(m);
        }
    }
    let mut extra = 0u64;
    while moduli.len() < count {
        let m = RnsContext::with_random_primes(1, 31, seed ^ 0xdead ^ extra).moduli()[0];
        if !moduli.contains(&m) {
            moduli.push(m);
        }
        extra += 1;
    }
    moduli
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every kernel shape the rewrite system generates survives the optimizer
    /// (fusion included) bit for bit.
    #[test]
    fn rewrite_kernels_survive_fusion(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = [
            moma_rewrite::KernelOp::ModAdd,
            moma_rewrite::KernelOp::ModSub,
            moma_rewrite::KernelOp::ModMul,
            moma_rewrite::KernelOp::Axpy,
            moma_rewrite::KernelOp::Butterfly,
        ];
        for op in ops {
            for bits in [128u32, 256] {
                for alg in [MulAlgorithm::Schoolbook, MulAlgorithm::Karatsuba] {
                    let hl = moma_rewrite::builders::build(&KernelSpec::new(op, bits));
                    let config = LoweringConfig { mul_algorithm: alg, ..LoweringConfig::default() };
                    let lowered = lower(&hl, &config);
                    fused_matches_unfused(&lowered.kernel, 3, &mut rng);
                }
            }
        }
    }

    /// The base-convert kernels — each per-row MAC and the all-rows conversion
    /// — survive fusion bit for bit on random mixed narrow/wide basis pairs.
    #[test]
    fn baseconv_kernels_survive_fusion(
        seed in any::<u64>(),
        src_count in 3usize..6,
        dst_count in 2usize..5,
    ) {
        let src = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed, src_count, &[31, 52, 40])));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed ^ 0xbc, dst_count, &[40, 31, 52])));
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bc0);
        for s in 0..dst_count {
            fused_matches_unfused(&bc.mac_kernel_ir_unfused(s), 4, &mut rng);
        }
        fused_matches_unfused(&bc.fused_kernel_ir_unfused(), 4, &mut rng);
    }

    /// The `mul→axpy` chain kernel survives fusion bit for bit on random mixed
    /// narrow/wide bases.
    #[test]
    fn mul_axpy_chain_kernel_survives_fusion(seed in any::<u64>(), count in 2usize..7) {
        let plan = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed, count, &[31, 52, 40, 31])));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa491);
        fused_matches_unfused(&plan.mul_axpy_kernel_ir_unfused(), 5, &mut rng);
    }

    /// The whole `mul→rescale→extend` chain kernel survives fusion bit for bit
    /// on random mixed narrow/wide basis pairs.
    #[test]
    fn mul_rescale_extend_chain_kernel_survives_fusion(
        seed in any::<u64>(),
        src_count in 3usize..6,
        dst_count in 2usize..5,
    ) {
        let src = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed, src_count, &[40, 31, 52])));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(seed ^ 0x5ca1e, dst_count, &[52, 40, 31])));
        let p = src.rescale_extend_plan(&dst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0e57);
        fused_matches_unfused(&p.mul_fused_kernel_ir_unfused(), 4, &mut rng);
    }
}
