//! Property tests for the planned residue engine: on random bases, sizes, and
//! values, `RnsPlan`/`RnsMatrix` operations must agree residue-for-residue with
//! the `BigUint`-backed `RnsContext` oracle, and conversions must round-trip.

use moma_bignum::{random::random_bits, BigUint};
use moma_blas::BlasOp;
use moma_rns::vector::RnsVector;
use moma_rns::{RnsContext, RnsMatrix, RnsPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_values(seed: u64, n: usize, bits: u32) -> (Vec<BigUint>, Vec<BigUint>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
    let b = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Forward conversion agrees with the oracle and CRT round-trips.
    #[test]
    fn conversion_matches_oracle_and_round_trips(
        seed in any::<u64>(),
        n in 1usize..20,
        bits in 1u32..220,
    ) {
        let ctx = RnsContext::with_capacity_bits(bits.max(8));
        let plan = RnsPlan::new(&ctx);
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        let m = RnsMatrix::from_biguints(&plan, &values);
        for (c, v) in values.iter().enumerate() {
            prop_assert_eq!(m.element(c), ctx.to_residues(v), "column {}", c);
            prop_assert_eq!(&plan.from_residues(&m.element(c)), v);
        }
        prop_assert_eq!(plan.to_biguints(&m), values);
    }

    /// Element-wise matrix ops equal the per-element context ops, residue for
    /// residue.
    #[test]
    fn elementwise_ops_match_context_oracle(
        seed in any::<u64>(),
        n in 1usize..20,
        bits in 8u32..160,
    ) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let plan = RnsPlan::new(&ctx);
        let (a, b) = random_values(seed, n, bits);
        let va = RnsVector::from_biguints(&ctx, &a);
        let vb = RnsVector::from_biguints(&ctx, &b);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        for op in [BlasOp::VecMul, BlasOp::VecAdd, BlasOp::VecSub] {
            let (out, _) = plan.apply(op, None, &ma, &mb);
            for c in 0..n {
                let oracle = match op {
                    BlasOp::VecMul => ctx.mul(&va.elements[c], &vb.elements[c]),
                    BlasOp::VecAdd => ctx.add(&va.elements[c], &vb.elements[c]),
                    BlasOp::VecSub => ctx.sub(&va.elements[c], &vb.elements[c]),
                    BlasOp::Axpy => unreachable!(),
                };
                prop_assert_eq!(out.element(c), oracle, "{:?} column {}", op, c);
            }
        }
    }

    /// axpy positionally equals `a·x + y` (values sized so no wraparound).
    #[test]
    fn axpy_matches_positional(
        seed in any::<u64>(),
        n in 1usize..16,
        bits in 8u32..120,
        scalar in any::<u64>(),
    ) {
        let plan = RnsPlan::with_capacity_bits(2 * bits.max(64) + 8);
        let (x, y) = random_values(seed, n, bits);
        let s = BigUint::from(scalar);
        let out = plan.axpy(
            &plan.to_residues(&s),
            &RnsMatrix::from_biguints(&plan, &x),
            &RnsMatrix::from_biguints(&plan, &y),
        );
        let back = plan.to_biguints(&out);
        for c in 0..n {
            prop_assert_eq!(&back[c], &(&(&s * &x[c]) + &y[c]), "column {}", c);
        }
    }

    /// The compiled-kernel multiplication path computes exactly what the rowwise
    /// Barrett path computes.
    #[test]
    fn compiled_mul_matches_rowwise_mul(
        seed in any::<u64>(),
        n in 1usize..12,
        bits in 8u32..100,
    ) {
        let plan = RnsPlan::with_capacity_bits(2 * bits + 8);
        let (a, b) = random_values(seed, n, bits);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        prop_assert_eq!(plan.mul_compiled(&ma, &mb).0, plan.mul(&ma, &mb));
    }

    /// reduce_mod agrees with the context oracle element by element.
    #[test]
    fn reduce_mod_matches_oracle(
        seed in any::<u64>(),
        n in 1usize..8,
        bits in 16u32..100,
    ) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let plan = RnsPlan::new(&ctx);
        let (a, b) = random_values(seed, n, bits);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let q = random_bits(&mut rng, bits.max(2)) + BigUint::one();
        let prod = plan.mul(
            &RnsMatrix::from_biguints(&plan, &a),
            &RnsMatrix::from_biguints(&plan, &b),
        );
        let reduced = plan.reduce_mod(&prod, &q);
        for c in 0..n {
            prop_assert_eq!(
                reduced.element(c),
                ctx.reduce_mod(&prod.element(c), &q),
                "column {}",
                c
            );
        }
    }
}
