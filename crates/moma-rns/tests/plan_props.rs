//! Property tests for the planned residue engine: on random bases, sizes, and
//! values, `RnsPlan`/`RnsMatrix` operations must agree residue-for-residue with
//! the `BigUint`-backed `RnsContext` oracle, and conversions must round-trip.

use moma_bignum::prime::random_prime;
use moma_bignum::{random::random_bits, BigUint};
use moma_blas::BlasOp;
use moma_rns::vector::RnsVector;
use moma_rns::{BaseConvPlan, RnsContext, RnsMatrix, RnsPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_values(seed: u64, n: usize, bits: u32) -> (Vec<BigUint>, Vec<BigUint>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
    let b = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
    (a, b)
}

/// A random basis of `count` distinct primes whose widths straddle the narrow
/// (≤32-bit) / wide boundary: each modulus is drawn at 30–33 bits or genuinely
/// wide (up to 58 bits), so every plan exercises the per-row dispatch.
fn random_mixed_basis(seed: u64, count: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<u64> = Vec::with_capacity(count);
    while out.len() < count {
        let bits = match rng.gen_range(0..4) {
            0 => rng.gen_range(30..32) as u32,
            1 => 32,
            2 => 33,
            _ => rng.gen_range(34..59) as u32,
        };
        let p = random_prime(&mut rng, bits).to_u64().expect("fits u64");
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Random values strictly below `bound`.
fn random_below_n(seed: u64, n: usize, bound: &BigUint) -> Vec<BigUint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| moma_bignum::random::random_below(&mut rng, bound))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Forward conversion agrees with the oracle and CRT round-trips.
    #[test]
    fn conversion_matches_oracle_and_round_trips(
        seed in any::<u64>(),
        n in 1usize..20,
        bits in 1u32..220,
    ) {
        let ctx = RnsContext::with_capacity_bits(bits.max(8));
        let plan = RnsPlan::new(&ctx);
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        let m = RnsMatrix::from_biguints(&plan, &values);
        for (c, v) in values.iter().enumerate() {
            prop_assert_eq!(m.element(c), ctx.to_residues(v), "column {}", c);
            prop_assert_eq!(&plan.from_residues(&m.element(c)), v);
        }
        prop_assert_eq!(plan.to_biguints(&m), values);
    }

    /// Element-wise matrix ops equal the per-element context ops, residue for
    /// residue.
    #[test]
    fn elementwise_ops_match_context_oracle(
        seed in any::<u64>(),
        n in 1usize..20,
        bits in 8u32..160,
    ) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let plan = RnsPlan::new(&ctx);
        let (a, b) = random_values(seed, n, bits);
        let va = RnsVector::from_biguints(&ctx, &a);
        let vb = RnsVector::from_biguints(&ctx, &b);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        for op in [BlasOp::VecMul, BlasOp::VecAdd, BlasOp::VecSub] {
            let (out, _) = plan.apply(op, None, &ma, &mb);
            for c in 0..n {
                let oracle = match op {
                    BlasOp::VecMul => ctx.mul(&va.elements[c], &vb.elements[c]),
                    BlasOp::VecAdd => ctx.add(&va.elements[c], &vb.elements[c]),
                    BlasOp::VecSub => ctx.sub(&va.elements[c], &vb.elements[c]),
                    BlasOp::Axpy => unreachable!(),
                };
                prop_assert_eq!(out.element(c), oracle, "{:?} column {}", op, c);
            }
        }
    }

    /// axpy positionally equals `a·x + y` (values sized so no wraparound).
    #[test]
    fn axpy_matches_positional(
        seed in any::<u64>(),
        n in 1usize..16,
        bits in 8u32..120,
        scalar in any::<u64>(),
    ) {
        let plan = RnsPlan::with_capacity_bits(2 * bits.max(64) + 8);
        let (x, y) = random_values(seed, n, bits);
        let s = BigUint::from(scalar);
        let out = plan.axpy(
            &plan.to_residues(&s),
            &RnsMatrix::from_biguints(&plan, &x),
            &RnsMatrix::from_biguints(&plan, &y),
        );
        let back = plan.to_biguints(&out);
        for c in 0..n {
            prop_assert_eq!(&back[c], &(&(&s * &x[c]) + &y[c]), "column {}", c);
        }
    }

    /// The compiled-kernel multiplication path computes exactly what the rowwise
    /// Barrett path computes.
    #[test]
    fn compiled_mul_matches_rowwise_mul(
        seed in any::<u64>(),
        n in 1usize..12,
        bits in 8u32..100,
    ) {
        let plan = RnsPlan::with_capacity_bits(2 * bits + 8);
        let (a, b) = random_values(seed, n, bits);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        prop_assert_eq!(plan.mul_compiled(&ma, &mb).0, plan.mul(&ma, &mb));
    }

    /// The planned engine round-trips on bases mixing narrow (≤32-bit) and wide
    /// moduli: conversion, CRT reconstruction, and element-wise multiplication
    /// must all agree with the context oracle when the per-row narrow/wide
    /// dispatch is exercised on both sides of the boundary.
    #[test]
    fn mixed_narrow_wide_basis_round_trips_and_multiplies(
        seed in any::<u64>(),
        count in 2usize..7,
        n in 1usize..12,
    ) {
        let ctx = RnsContext::with_moduli(&random_mixed_basis(seed, count));
        let plan = RnsPlan::new(&ctx);
        let a = random_below_n(seed ^ 0xa, n, ctx.product());
        let b = random_below_n(seed ^ 0xb, n, ctx.product());
        let ma = RnsMatrix::from_biguints(&plan, &a);
        prop_assert_eq!(plan.to_biguints(&ma), a.clone(), "round trip");
        let mb = RnsMatrix::from_biguints(&plan, &b);
        let out = plan.mul(&ma, &mb);
        for c in 0..n {
            prop_assert_eq!(
                out.element(c),
                ctx.mul(&ctx.to_residues(&a[c]), &ctx.to_residues(&b[c])),
                "column {}", c
            );
        }
    }

    /// Fast base extension agrees bit-for-bit with the BigUint oracle on random
    /// basis pairs mixing narrow and wide moduli, on both the row-wise and the
    /// generated-kernel paths.
    #[test]
    fn base_convert_matches_oracle_on_random_bases(
        seed in any::<u64>(),
        src_count in 2usize..6,
        dst_count in 1usize..6,
        n in 1usize..10,
    ) {
        let src_ctx = RnsContext::with_moduli(&random_mixed_basis(seed, src_count));
        let dst_ctx = RnsContext::with_moduli(&random_mixed_basis(seed ^ 0xd57, dst_count));
        let src = RnsPlan::new(&src_ctx);
        let dst = RnsPlan::new(&dst_ctx);
        let bc = BaseConvPlan::new(&src, &dst);
        let values = random_below_n(seed ^ 0x5a1, n, src_ctx.product());
        let a = RnsMatrix::from_biguints(&src, &values);
        let (out, _) = src.base_convert(&bc, &a);
        let (compiled, _) = src.base_convert_compiled(&bc, &a);
        prop_assert_eq!(&compiled, &out, "compiled path must match row-wise path");
        for (c, v) in values.iter().enumerate() {
            let oracle = src_ctx.base_convert(&dst_ctx, &src_ctx.to_residues(v));
            prop_assert_eq!(out.element(c), oracle, "column {}", c);
        }
    }

    /// Approximate scaled rounding agrees with the BigUint oracle and lands
    /// within one of the true quotient on random mixed bases.
    #[test]
    fn scale_and_round_matches_oracle_on_random_bases(
        seed in any::<u64>(),
        count in 2usize..7,
        n in 1usize..10,
    ) {
        let ctx = RnsContext::with_moduli(&random_mixed_basis(seed, count));
        let plan = RnsPlan::new(&ctx);
        let rp = plan.rescale_plan();
        let values = random_below_n(seed ^ 0x0f, n, ctx.product());
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (out, _) = plan.scale_and_round(&rp, &a);
        let last = BigUint::from(*ctx.moduli().last().unwrap());
        for (c, v) in values.iter().enumerate() {
            prop_assert_eq!(
                out.element(c),
                ctx.scale_and_round(&ctx.to_residues(v)),
                "column {}", c
            );
            let y = rp.output_plan().to_biguints(&out)[c].clone();
            let scaled = &y * &last;
            let distance = if scaled >= *v { &scaled - v } else { v - &scaled };
            prop_assert!(distance <= last, "column {}: rounding error exceeds m_k", c);
        }
    }

    /// reduce_mod agrees with the context oracle element by element.
    #[test]
    fn reduce_mod_matches_oracle(
        seed in any::<u64>(),
        n in 1usize..8,
        bits in 16u32..100,
    ) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let plan = RnsPlan::new(&ctx);
        let (a, b) = random_values(seed, n, bits);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let q = random_bits(&mut rng, bits.max(2)) + BigUint::one();
        let prod = plan.mul(
            &RnsMatrix::from_biguints(&plan, &a),
            &RnsMatrix::from_biguints(&plan, &b),
        );
        let reduced = plan.reduce_mod(&prod, &q);
        for c in 0..n {
            prop_assert_eq!(
                reduced.element(c),
                ctx.reduce_mod(&prod.element(c), &q),
                "column {}",
                c
            );
        }
    }
}
