//! Residue number system (RNS) arithmetic — the GRNS baseline stand-in.
//!
//! The paper compares MoMA against GRNS, a GPU library that represents very large
//! integers by their residues modulo a set of machine-word-sized primes and performs
//! arithmetic independently per residue. This crate implements the same scheme:
//!
//! * [`RnsContext`] — a basis of distinct word-sized primes whose product covers the
//!   required dynamic range, with conversion to residues and CRT reconstruction;
//! * [`RnsInt`] — one large integer in residue form, with `O(#moduli)` addition,
//!   subtraction, and multiplication;
//! * [`vector`] — per-element vector operations over [`RnsInt`] values, the original
//!   (allocation-heavy) baseline of the Figure 2 BLAS comparison;
//! * [`plan`] — the planned residue engine: [`RnsPlan`] precomputes per-modulus
//!   Barrett constants and CRT data once per basis, and [`RnsMatrix`] stores whole
//!   vectors in structure-of-arrays layout so element-wise operations run
//!   per-residue-row on the simulated GPU launcher with no arbitrary-precision
//!   arithmetic on the hot path;
//! * [`baseconv`] — the RNS operations FHE pipelines chain *between* element-wise
//!   stages: [`BaseConvPlan`] precomputes the fast-base-extension tables once per
//!   basis pair and [`RnsPlan::base_convert`] runs the sum-of-products
//!   accumulation one launcher thread per target residue row (with a generated
//!   multiply-accumulate kernel as the compiled path), while [`RescalePlan`] /
//!   [`RnsPlan::scale_and_round`] implement approximate division-by-`m_k` with
//!   rounding (the CKKS/BGV rescale primitive).
//!
//! The trade-off the paper measures is visible directly in the API: ring operations are
//! embarrassingly cheap per residue, but anything that needs the positional value —
//! comparison, reduction modulo a user modulus `q` that is not the RNS product, or
//! conversion — requires CRT reconstruction through arbitrary-precision arithmetic.
//!
//! [`RnsContext`]/[`RnsInt`] remain the readable correctness oracle; the planned
//! engine is cross-checked against them property-by-property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseconv;
pub mod plan;
pub mod vector;

pub use baseconv::{BaseConvPlan, ConvRestoreError, RescaleExtendPlan, RescalePlan};
pub use plan::{PlanRestoreError, RnsMatrix, RnsPlan};

use moma_bignum::{prime, BigUint};
use moma_mp::single::SingleBarrett;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Number of bits per RNS modulus. 31-bit moduli keep every product inside a `u64`
/// accumulator without overflow handling, mirroring GRNS's use of the GPU's
/// floating-point units (whose exactly-representable integer range is similar).
pub const MODULUS_BITS: u32 = 31;

/// A basis of pairwise-distinct word-sized primes.
///
/// # Example
///
/// ```
/// use moma_bignum::BigUint;
/// use moma_rns::RnsContext;
///
/// let ctx = RnsContext::with_capacity_bits(256);
/// let x = BigUint::from_hex("123456789abcdef0123456789abcdef0").unwrap();
/// let residues = ctx.to_residues(&x);
/// assert_eq!(ctx.from_residues(&residues), x);
/// ```
#[derive(Debug, Clone)]
pub struct RnsContext {
    moduli: Vec<u64>,
    /// The basis moduli as `BigUint`s, built once so the conversion paths do not
    /// re-allocate one `BigUint` per modulus per call.
    moduli_big: Vec<BigUint>,
    product: BigUint,
    /// Precomputed CRT data: (M_i = product / m_i, y_i = M_i^{-1} mod m_i).
    crt: Vec<(BigUint, u64)>,
}

impl RnsContext {
    /// Creates a context whose dynamic range covers at least `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn with_capacity_bits(bits: u32) -> Self {
        assert!(bits > 0, "capacity must be positive");
        let count = bits.div_ceil(MODULUS_BITS - 1) as usize + 1;
        Self::with_moduli_count(count)
    }

    /// Creates a context with exactly `count` deterministic prime moduli.
    pub fn with_moduli_count(count: usize) -> Self {
        Self::with_random_primes(count, MODULUS_BITS, 0x6e73_5f72_6e73)
    }

    /// Creates a context over `count` distinct primes of `bits` bits drawn from
    /// a seeded generator — the deterministic basis builder for fresh
    /// base-extension targets (the benches and cross-basis tests need a second
    /// basis that is not the default one).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `bits` exceeds the 60-bit single-word
    /// Barrett limit.
    pub fn with_random_primes(count: usize, bits: u32, seed: u64) -> Self {
        assert!(count > 0, "need at least one modulus");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut moduli = Vec::with_capacity(count);
        // Set-based dedup: a `moduli.contains` scan would make basis
        // construction quadratic in the modulus count.
        let mut seen = HashSet::with_capacity(count);
        while moduli.len() < count {
            let p = prime::random_prime(&mut rng, bits)
                .to_u64()
                .expect("word-sized prime fits u64");
            if seen.insert(p) {
                moduli.push(p);
            }
        }
        Self::from_moduli(moduli)
    }

    /// Creates a context over an explicit basis of pairwise-distinct primes.
    ///
    /// Unlike the deterministic constructors, the basis may mix *narrow*
    /// (≤32-bit) and *wide* moduli of up to 60 bits — the planned engine decides
    /// the narrow-Barrett dispatch per modulus at plan-build time. This is also
    /// how base-extension targets and rescale output bases are built.
    ///
    /// # Panics
    ///
    /// Panics if the basis is empty, contains a duplicate, a non-prime, or a
    /// modulus wider than 60 bits (the single-word Barrett limit).
    pub fn with_moduli(moduli: &[u64]) -> Self {
        assert!(!moduli.is_empty(), "need at least one modulus");
        let mut seen = HashSet::with_capacity(moduli.len());
        let mut rng = StdRng::seed_from_u64(0x7072_696d_6573);
        for &m in moduli {
            assert!(seen.insert(m), "duplicate modulus {m}");
            assert!(
                prime::is_prime(&mut rng, &BigUint::from(m)),
                "modulus {m} is not prime (CRT reconstruction needs a prime basis)"
            );
        }
        Self::from_moduli(moduli.to_vec())
    }

    /// Shared constructor tail: precomputes the products and CRT data for an
    /// already-validated basis.
    fn from_moduli(moduli: Vec<u64>) -> Self {
        let moduli_big: Vec<BigUint> = moduli.iter().map(|&m| BigUint::from(m)).collect();
        let mut product = BigUint::one();
        for m_big in &moduli_big {
            product = &product * m_big;
        }
        let crt = moduli
            .iter()
            .zip(&moduli_big)
            .map(|(&m, m_big)| {
                let mi = &product / m_big;
                let mi_mod = (&mi % m_big).to_u64().unwrap();
                // Word-sized modular inverse via the shared helper in `moma-mp`
                // (Fermat over a Barrett context; the moduli are primes of at
                // most 60 bits).
                let yi = SingleBarrett::new(m).inv_mod(mi_mod);
                (mi, yi)
            })
            .collect();
        RnsContext {
            moduli,
            moduli_big,
            product,
            crt,
        }
    }

    /// The same basis with the last modulus dropped — the output basis of one
    /// [`RnsContext::scale_and_round`] step.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn without_last(&self) -> Self {
        assert!(
            self.moduli.len() >= 2,
            "rescale needs at least two basis moduli"
        );
        Self::from_moduli(self.moduli[..self.moduli.len() - 1].to_vec())
    }

    /// The prime moduli of the basis.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// The product of all moduli (the dynamic range).
    pub fn product(&self) -> &BigUint {
        &self.product
    }

    /// Number of bits of dynamic range.
    pub fn capacity_bits(&self) -> u32 {
        self.product.bits() - 1
    }

    /// Converts a positional integer (must be below the product) into residues.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not below the dynamic range.
    pub fn to_residues(&self, x: &BigUint) -> RnsInt {
        assert!(x < &self.product, "value exceeds the RNS dynamic range");
        RnsInt {
            residues: self
                .moduli_big
                .iter()
                .map(|m_big| (x % m_big).to_u64().unwrap())
                .collect(),
        }
    }

    /// Reconstructs the positional value via the Chinese remainder theorem.
    pub fn from_residues(&self, x: &RnsInt) -> BigUint {
        assert_eq!(x.residues.len(), self.moduli.len());
        let mut acc = BigUint::zero();
        for ((&r, &m), (mi, yi)) in x.residues.iter().zip(&self.moduli).zip(&self.crt) {
            // term = r * yi mod m, times Mi
            let t = (r as u128 * *yi as u128 % m as u128) as u64;
            acc = &acc + &(mi * &BigUint::from(t));
        }
        &acc % &self.product
    }

    /// Element-wise addition of residue vectors.
    pub fn add(&self, a: &RnsInt, b: &RnsInt) -> RnsInt {
        self.zip(a, b, |x, y, m| ((x as u128 + y as u128) % m as u128) as u64)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, a: &RnsInt, b: &RnsInt) -> RnsInt {
        self.zip(a, b, |x, y, m| {
            ((x as u128 + m as u128 - y as u128) % m as u128) as u64
        })
    }

    /// Element-wise multiplication.
    pub fn mul(&self, a: &RnsInt, b: &RnsInt) -> RnsInt {
        self.zip(a, b, |x, y, m| ((x as u128 * y as u128) % m as u128) as u64)
    }

    /// Reduces an RNS value modulo a user modulus `q` by CRT reconstruction followed by
    /// forward conversion — the expensive step that positional (MoMA-style)
    /// representations avoid.
    pub fn reduce_mod(&self, a: &RnsInt, q: &BigUint) -> RnsInt {
        let positional = self.from_residues(a);
        self.to_residues(&(&positional % q))
    }

    /// Slow-path oracle for *fast base extension*: converts `x` from this basis
    /// `B` (product `M`) into residues modulo the moduli of `dst`, through exact
    /// arbitrary-precision arithmetic.
    ///
    /// The fast conversion is the BEHZ-style approximate CRT: with
    /// pseudo-residues `x̃_r = x_r · (M/m_r)^{-1} mod m_r`, the value
    /// `Σ_r x̃_r · (M/m_r)` equals `x + α·M` for some overshoot `0 ≤ α < #B`,
    /// and the conversion returns that sum's residues in the target basis. The
    /// planned engine ([`RnsPlan::base_convert`]) computes exactly this function
    /// with machine-word arithmetic; this method is its `BigUint` oracle,
    /// bit-for-bit including the overshoot.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match this basis.
    pub fn base_convert(&self, dst: &RnsContext, x: &RnsInt) -> RnsInt {
        assert_eq!(x.residues.len(), self.moduli.len(), "value basis mismatch");
        let mut sum = BigUint::zero();
        for ((&xr, &m), (mi, yi)) in x.residues.iter().zip(&self.moduli).zip(&self.crt) {
            // x̃_r = x_r · (M/m_r)^{-1} mod m_r, then the exact product with M/m_r.
            let pseudo = (xr as u128 * *yi as u128 % m as u128) as u64;
            sum = &sum + &(mi * &BigUint::from(pseudo));
        }
        RnsInt {
            residues: dst
                .moduli_big
                .iter()
                .map(|m_big| (&sum % m_big).to_u64().unwrap())
                .collect(),
        }
    }

    /// Slow-path oracle for *approximate scaled rounding* (the CKKS/BGV rescale
    /// primitive): divides by the last basis modulus `m_k` with rounding and
    /// returns residues over the remaining basis (see
    /// [`RnsContext::without_last`]).
    ///
    /// With `c = x mod m_k` (the last residue), the result is
    /// `y = (x − c)/m_k + (c > m_k/2)` — exact division after removing the last
    /// residue, plus the rounding correction, so `|y − x/m_k| ≤ 1`. The planned
    /// engine ([`RnsPlan::scale_and_round`]) computes the same function residue-
    /// locally; this method is its `BigUint` oracle.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli or `x` does not match it.
    pub fn scale_and_round(&self, x: &RnsInt) -> RnsInt {
        assert!(
            self.moduli.len() >= 2,
            "rescale needs at least two basis moduli"
        );
        assert_eq!(x.residues.len(), self.moduli.len(), "value basis mismatch");
        let k = self.moduli.len() - 1;
        let last = self.moduli[k];
        let c = x.residues[k];
        let v = self.from_residues(x);
        // v ≡ c (mod m_k) and v ≥ c, so the subtraction is exact and the
        // quotient is an integer.
        let (mut y, rem) = (&v - &BigUint::from(c)).div_rem(&BigUint::from(last));
        debug_assert!(rem.is_zero(), "x − (x mod m_k) must divide by m_k");
        if c > last / 2 {
            y = &y + &BigUint::one();
        }
        RnsInt {
            residues: self.moduli_big[..k]
                .iter()
                .map(|m_big| (&y % m_big).to_u64().unwrap())
                .collect(),
        }
    }

    fn zip(&self, a: &RnsInt, b: &RnsInt, f: impl Fn(u64, u64, u64) -> u64) -> RnsInt {
        assert_eq!(a.residues.len(), self.moduli.len());
        assert_eq!(b.residues.len(), self.moduli.len());
        RnsInt {
            residues: a
                .residues
                .iter()
                .zip(&b.residues)
                .zip(&self.moduli)
                .map(|((&x, &y), &m)| f(x, y, m))
                .collect(),
        }
    }
}

/// One large integer in residue form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsInt {
    /// One residue per basis modulus, in basis order.
    pub residues: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::random::random_bits;

    #[test]
    fn capacity_and_basis_shape() {
        let ctx = RnsContext::with_capacity_bits(256);
        assert!(ctx.capacity_bits() >= 256);
        assert!(ctx.moduli().len() >= 9);
        // All moduli distinct and of the right size.
        for (i, &m) in ctx.moduli().iter().enumerate() {
            assert_eq!(64 - m.leading_zeros(), MODULUS_BITS);
            assert!(!ctx.moduli()[..i].contains(&m));
        }
    }

    #[test]
    fn round_trip_random_values() {
        let ctx = RnsContext::with_capacity_bits(512);
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [1u32, 64, 128, 300, 512] {
            let x = random_bits(&mut rng, bits);
            assert_eq!(ctx.from_residues(&ctx.to_residues(&x)), x, "bits {bits}");
        }
        assert_eq!(
            ctx.from_residues(&ctx.to_residues(&BigUint::zero())),
            BigUint::zero()
        );
    }

    #[test]
    fn ring_operations_match_bignum() {
        let ctx = RnsContext::with_capacity_bits(600);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let a = random_bits(&mut rng, 256);
            let b = random_bits(&mut rng, 256);
            let ra = ctx.to_residues(&a);
            let rb = ctx.to_residues(&b);
            assert_eq!(ctx.from_residues(&ctx.add(&ra, &rb)), &a + &b);
            assert_eq!(ctx.from_residues(&ctx.mul(&ra, &rb)), &a * &b);
            let (hi, lo) = if a >= b { (&a, &b) } else { (&b, &a) };
            let diff = ctx.sub(&ctx.to_residues(hi), &ctx.to_residues(lo));
            assert_eq!(ctx.from_residues(&diff), hi - lo);
        }
    }

    #[test]
    fn reduce_mod_matches_oracle() {
        let ctx = RnsContext::with_capacity_bits(600);
        let mut rng = StdRng::seed_from_u64(11);
        let q = random_bits(&mut rng, 252);
        let a = random_bits(&mut rng, 250);
        let b = random_bits(&mut rng, 250);
        let prod = ctx.mul(&ctx.to_residues(&a), &ctx.to_residues(&b));
        let reduced = ctx.reduce_mod(&prod, &q);
        assert_eq!(ctx.from_residues(&reduced), (&a * &b) % &q);
    }

    #[test]
    #[should_panic(expected = "dynamic range")]
    fn overflow_rejected() {
        let ctx = RnsContext::with_moduli_count(2);
        let too_big = BigUint::from(1u64) << 80;
        ctx.to_residues(&too_big);
    }
}
