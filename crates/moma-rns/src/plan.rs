//! The planned residue engine: precompute-once-execute-many RNS arithmetic in
//! structure-of-arrays layout on the simulated GPU launcher.
//!
//! The original [`RnsContext`]/[`RnsInt`] path is a readable oracle, but it is the
//! wrong shape for a throughput comparison against MoMA's positional kernels: every
//! element owns its own `Vec<u64>` of residues (array-of-structures), every
//! multiplication reduces through a `u128 %` division, and every conversion
//! allocates one `BigUint` per modulus. GRNS — the baseline the paper compares
//! against — stores residues *plane by plane* and runs each plane as an independent
//! data-parallel kernel. This module reproduces that organisation:
//!
//! * [`RnsPlan`] precomputes, once per basis, a [`SingleBarrett`] context per
//!   modulus (so hot-path reductions are Barrett multiplications, not `u128`
//!   divisions), the residues of every power of the limb radix `2^64` (so
//!   positional→residue conversion is a dot product over machine words with no
//!   arbitrary-precision arithmetic), and the CRT reconstruction data;
//! * [`RnsMatrix`] stores a vector of `n` big integers as a flat `#moduli × n`
//!   row-major matrix (structure-of-arrays): row `r` holds the residues of all `n`
//!   elements modulo basis prime `m_r`;
//! * element-wise operations ([`RnsPlan::apply`]) dispatch one virtual GPU thread
//!   per residue row through [`moma_gpu::launch_chunks`] (each thread filling its
//!   row of the flat output in place), and
//!   [`RnsPlan::mul_compiled`] routes the same per-residue multiplication through a
//!   *generated* machine-level kernel via [`moma_gpu::launch_compiled`] — so GRNS
//!   vector ops and MoMA compiled kernels are measured on the same launch
//!   infrastructure.
//!
//! The conversion-cost trade-off the paper measures is explicit in the types:
//! everything on [`RnsMatrix`] is `BigUint`-free, while [`RnsPlan::to_biguints`]
//! and [`RnsPlan::reduce_mod`] — the operations RNS cannot do residue-locally —
//! pay the CRT reconstruction through arbitrary-precision arithmetic. Positional
//! (MoMA-style) multi-word arithmetic never pays that step, which is the heart of
//! the Figure 2 comparison.

use crate::{RnsContext, RnsInt};
use moma_bignum::BigUint;
use moma_blas::BlasOp;
use moma_gpu::launch::{launch_chunks, launch_compiled, launch_compiled_rows, LaunchStats};
use moma_gpu::pool::BufferPool;
use moma_ir::compiled::CompiledKernel;
use moma_ir::{Kernel, KernelBuilder, Op, Operand, Ty};
use moma_mp::single::SingleBarrett;
use std::sync::{Arc, OnceLock};

/// Why a restored [`RnsPlan`] table set was rejected by
/// [`RnsPlan::from_tables`]. Every variant is fail-closed: nothing about the
/// plan is usable once validation stops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanRestoreError {
    /// A modulus is outside the supported range (`q < 2` or above 60 bits).
    BadModulus {
        /// The rejected modulus.
        q: u64,
    },
    /// The basis is empty or the CRT table length does not match it.
    ShapeMismatch,
    /// The claimed product is not the product of the moduli.
    BadProduct,
    /// A CRT entry fails its identity (`M_i · m_i ≠ product` or
    /// `y_i · M_i ≢ 1 mod m_i`).
    BadCrt {
        /// Index of the offending basis modulus.
        index: usize,
    },
}

impl std::fmt::Display for PlanRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanRestoreError::BadModulus { q } => {
                write!(f, "modulus {q} is outside the supported 60-bit range")
            }
            PlanRestoreError::ShapeMismatch => {
                write!(f, "basis and CRT table shapes do not match")
            }
            PlanRestoreError::BadProduct => {
                write!(f, "claimed dynamic range is not the product of the moduli")
            }
            PlanRestoreError::BadCrt { index } => {
                write!(f, "CRT entry {index} fails its reconstruction identity")
            }
        }
    }
}

impl std::error::Error for PlanRestoreError {}

/// Precomputed per-basis execution data for the planned residue engine.
///
/// Built once per basis (from an existing [`RnsContext`] or directly from a
/// capacity); every subsequent element-wise operation is pure machine-word
/// arithmetic.
///
/// # Example
///
/// ```
/// use moma_bignum::BigUint;
/// use moma_rns::{RnsContext, RnsMatrix, RnsPlan};
///
/// let ctx = RnsContext::with_capacity_bits(256);
/// let plan = RnsPlan::new(&ctx);
/// let a: Vec<BigUint> = (1u64..5).map(BigUint::from).collect();
/// let b: Vec<BigUint> = (5u64..9).map(BigUint::from).collect();
/// let ma = RnsMatrix::from_biguints(&plan, &a);
/// let mb = RnsMatrix::from_biguints(&plan, &b);
/// let prod = plan.mul(&ma, &mb);
/// assert_eq!(plan.to_biguints(&prod)[0], &a[0] * &b[0]);
/// ```
#[derive(Debug, Clone)]
pub struct RnsPlan {
    /// One Barrett context per basis modulus, in basis order.
    pub(crate) ctxs: Vec<SingleBarrett>,
    /// Narrow-path verdict per modulus, decided **once at plan construction**:
    /// `narrow[r]` is `true` iff modulus `r` has at most 32 bits, so
    /// [`SingleBarrett::mul_mod_narrow`]'s single-widening-multiplication path is
    /// valid for it. Row kernels dispatch on this precomputed flag instead of
    /// relying on every call site to re-check the precondition — on a wide
    /// modulus the narrow path silently truncates in release builds.
    pub(crate) narrow: Vec<bool>,
    /// `limb_residues[r][j] = 2^(64·j) mod m_r` for every limb position `j` the
    /// dynamic range can hold — the dot-product table for `BigUint`-free forward
    /// conversion.
    pub(crate) limb_residues: Vec<Vec<u64>>,
    /// Product of the basis (the dynamic range).
    pub(crate) product: BigUint,
    /// CRT reconstruction data per modulus: `(M_i = product / m_i, y_i =
    /// M_i^{-1} mod m_i)`.
    pub(crate) crt: Vec<(BigUint, u64)>,
    /// One *generated* single-word Barrett modmul kernel per modulus, compiled
    /// lazily on the first [`RnsPlan::mul_compiled`] call (the plain arithmetic
    /// paths never pay for them) and cached for every call after.
    mul_kernels: OnceLock<Vec<CompiledKernel>>,
    /// The single all-rows fused `mul→axpy` chain kernel
    /// ([`RnsPlan::mul_axpy_kernel_ir`]), compiled lazily on the first
    /// [`RnsPlan::mul_axpy_fused`] call. Session-owned caches compile the IR
    /// themselves and run [`RnsPlan::mul_axpy_fused_with`].
    axpy_kernel: OnceLock<Arc<CompiledKernel>>,
}

impl RnsPlan {
    /// Builds the plan for the basis of an existing context.
    ///
    /// The plan computes the same residues and reconstructions as the context; the
    /// crosscheck tests exploit that to use [`RnsContext`] as the oracle.
    pub fn new(ctx: &RnsContext) -> Self {
        let ctxs: Vec<SingleBarrett> = ctx.moduli.iter().map(|&m| SingleBarrett::new(m)).collect();
        // The narrow-vs-wide multiplication dispatch is validated here, once per
        // basis, where the path is *selected* — not at each call site. Mixed
        // bases (narrow and wide moduli in one plan) are fully supported; each
        // residue row gets the fastest multiplication that is correct for it.
        let narrow: Vec<bool> = ctxs.iter().map(SingleBarrett::is_narrow).collect();
        let max_limbs = ctx.product.bits().div_ceil(64) as usize;
        let limb_residues = ctxs
            .iter()
            .map(|b| {
                // radix = 2^64 mod m, then successive powers by Barrett multiplication.
                let radix = b.radix_residue();
                let mut pows = Vec::with_capacity(max_limbs);
                let mut cur = 1u64;
                for _ in 0..max_limbs {
                    pows.push(cur);
                    cur = b.mul_mod(cur, radix);
                }
                pows
            })
            .collect();
        RnsPlan {
            ctxs,
            narrow,
            limb_residues,
            product: ctx.product.clone(),
            crt: ctx.crt.clone(),
            mul_kernels: OnceLock::new(),
            axpy_kernel: OnceLock::new(),
        }
    }

    /// Convenience constructor: builds a deterministic basis covering at least
    /// `bits` bits of dynamic range (same basis as
    /// [`RnsContext::with_capacity_bits`]).
    pub fn with_capacity_bits(bits: u32) -> Self {
        Self::new(&RnsContext::with_capacity_bits(bits))
    }

    /// Number of basis moduli (= rows of every matrix over this plan).
    pub fn moduli_count(&self) -> usize {
        self.ctxs.len()
    }

    /// The basis moduli, in basis order.
    pub fn moduli(&self) -> impl Iterator<Item = u64> + '_ {
        self.ctxs.iter().map(|c| c.q)
    }

    /// The product of the basis (the dynamic range).
    pub fn product(&self) -> &BigUint {
        &self.product
    }

    /// The CRT reconstruction tables, `(M_i = product/m_i, y_i = M_i^{-1} mod
    /// m_i)` per basis modulus — the serialization view used by session
    /// snapshots (the `M_i` are the expensive-to-rebuild part: one
    /// arbitrary-precision division each on a cold build).
    pub fn crt_tables(&self) -> &[(BigUint, u64)] {
        &self.crt
    }

    /// Rebuilds a plan from snapshot data: the basis moduli, their product, and
    /// the CRT tables. This is the warm-start constructor — it skips the prime
    /// search and every `product / m_i` division — but it does **not** trust
    /// its input: the product is re-derived by multiplication, and each CRT
    /// entry must satisfy `M_i · m_i = product` and `y_i · M_i ≡ 1 (mod m_i)`.
    /// Together those identities force the moduli to be pairwise coprime (an
    /// inverse of `M_i = ∏_{j≠i} m_j` exists mod `m_i` only then), which is all
    /// CRT correctness needs; primality is a property of the *generated* bases,
    /// not a requirement of the arithmetic. Barrett contexts, narrow-path
    /// verdicts, and limb-radix residues are recomputed, never deserialized.
    pub fn from_tables(
        moduli: &[u64],
        product: BigUint,
        crt: Vec<(BigUint, u64)>,
    ) -> Result<Self, PlanRestoreError> {
        if let Some(&q) = moduli
            .iter()
            .find(|&&q| q < 2 || (64 - q.leading_zeros()) > 60)
        {
            return Err(PlanRestoreError::BadModulus { q });
        }
        if moduli.is_empty() || crt.len() != moduli.len() {
            return Err(PlanRestoreError::ShapeMismatch);
        }
        let mut check = BigUint::from(1u64);
        for &m in moduli {
            check = &check * &BigUint::from(m);
        }
        if check != product {
            return Err(PlanRestoreError::BadProduct);
        }
        let ctxs: Vec<SingleBarrett> = moduli.iter().map(|&m| SingleBarrett::new(m)).collect();
        for (index, ((mi, yi), ctx)) in crt.iter().zip(&ctxs).enumerate() {
            let m_big = BigUint::from(ctx.q);
            let residue = (mi % &m_big).to_u64().expect("residue fits a word");
            if *yi >= ctx.q || mi * &m_big != product || ctx.mul_mod(*yi, residue) != 1 {
                return Err(PlanRestoreError::BadCrt { index });
            }
        }
        let narrow: Vec<bool> = ctxs.iter().map(SingleBarrett::is_narrow).collect();
        let max_limbs = product.bits().div_ceil(64) as usize;
        let limb_residues = ctxs
            .iter()
            .map(|b| {
                let radix = b.radix_residue();
                let mut pows = Vec::with_capacity(max_limbs);
                let mut cur = 1u64;
                for _ in 0..max_limbs {
                    pows.push(cur);
                    cur = b.mul_mod(cur, radix);
                }
                pows
            })
            .collect();
        Ok(RnsPlan {
            ctxs,
            narrow,
            limb_residues,
            product,
            crt,
            mul_kernels: OnceLock::new(),
            axpy_kernel: OnceLock::new(),
        })
    }

    /// Converts one positional integer into residues with no `BigUint`
    /// arithmetic: each residue is a Barrett dot product of the value's machine
    /// words against the precomputed limb-radix residues.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not below the dynamic range.
    pub fn to_residues(&self, x: &BigUint) -> RnsInt {
        assert!(x < &self.product, "value exceeds the RNS dynamic range");
        let limbs = x.limbs();
        RnsInt {
            residues: self
                .ctxs
                .iter()
                .zip(&self.narrow)
                .zip(&self.limb_residues)
                .map(|((ctx, &narrow), pows)| residue_of(ctx, narrow, pows, limbs))
                .collect(),
        }
    }

    /// Reconstructs the positional value of one residue column via the Chinese
    /// remainder theorem — the explicit conversion path where arbitrary-precision
    /// arithmetic is allowed (and unavoidable).
    pub fn from_residues(&self, x: &RnsInt) -> BigUint {
        assert_eq!(x.residues.len(), self.moduli_count());
        self.crt_reconstruct(|r| x.residues[r])
    }

    /// Element-wise `a + b` over matrices (one launcher thread per residue row).
    pub fn add(&self, a: &RnsMatrix, b: &RnsMatrix) -> RnsMatrix {
        self.apply(BlasOp::VecAdd, None, a, b).0
    }

    /// Element-wise `a - b` (well-defined modulo the basis product).
    pub fn sub(&self, a: &RnsMatrix, b: &RnsMatrix) -> RnsMatrix {
        self.apply(BlasOp::VecSub, None, a, b).0
    }

    /// Element-wise `a * b`.
    pub fn mul(&self, a: &RnsMatrix, b: &RnsMatrix) -> RnsMatrix {
        self.apply(BlasOp::VecMul, None, a, b).0
    }

    /// `a·x + y` with an RNS scalar `a`.
    pub fn axpy(&self, a: &RnsInt, x: &RnsMatrix, y: &RnsMatrix) -> RnsMatrix {
        self.apply(BlasOp::Axpy, Some(a), x, y).0
    }

    /// Runs one BLAS operation element-wise over two matrices, one virtual GPU
    /// thread per residue row, and reports the launch statistics.
    ///
    /// This is the planned hot path: each row runs against its own precomputed
    /// Barrett context, performs no `BigUint` arithmetic and no per-element
    /// allocation, and all rows share the same [`moma_gpu::launch_chunks`]
    /// infrastructure the positional BLAS batches use.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes do not match the plan (or each other), or if
    /// `op` is [`BlasOp::Axpy`] and no scalar is supplied.
    pub fn apply(
        &self,
        op: BlasOp,
        scalar: Option<&RnsInt>,
        a: &RnsMatrix,
        b: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        // One flat allocation; every launcher thread fills its own residue row in
        // place (no per-row collection or concatenation).
        let mut data = vec![0u64; self.moduli_count() * a.cols];
        let mut stats = self.apply_rows(op, scalar, a, b, &mut data);
        stats.allocs += usize::from(a.cols > 0);
        (
            RnsMatrix {
                rows: self.moduli_count(),
                cols: a.cols,
                data,
            },
            stats,
        )
    }

    /// [`RnsPlan::apply`] with the output plane acquired from `pool` instead of
    /// the allocator. The returned statistics count pool *misses* in the window
    /// as allocations, so a warm pool reports `allocs == 0`; the caller owns
    /// the result and decides when its storage flows back (see
    /// [`RnsMatrix::take_storage`]).
    pub fn apply_pooled(
        &self,
        op: BlasOp,
        scalar: Option<&RnsInt>,
        a: &RnsMatrix,
        b: &RnsMatrix,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let before = pool.misses();
        let mut data = pool.acquire(self.moduli_count() * a.cols);
        let mut stats = self.apply_rows(op, scalar, a, b, &mut data);
        stats.allocs += (pool.misses() - before) as usize;
        (
            RnsMatrix {
                rows: self.moduli_count(),
                cols: a.cols,
                data,
            },
            stats,
        )
    }

    /// The shared body of [`RnsPlan::apply`] and [`RnsPlan::apply_pooled`]:
    /// validates shapes and fills the caller-provided output plane.
    fn apply_rows(
        &self,
        op: BlasOp,
        scalar: Option<&RnsInt>,
        a: &RnsMatrix,
        b: &RnsMatrix,
        data: &mut [u64],
    ) -> LaunchStats {
        self.check_shape(a);
        self.check_shape(b);
        assert_eq!(a.cols, b.cols, "matrix width mismatch");
        assert_eq!(data.len(), self.moduli_count() * a.cols);
        let scalar = match op {
            BlasOp::Axpy => {
                let s = scalar.expect("axpy requires an RNS scalar");
                assert_eq!(
                    s.residues.len(),
                    self.moduli_count(),
                    "scalar basis mismatch"
                );
                Some(s)
            }
            _ => None,
        };
        let cols = a.cols;
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_chunks(data, cols, |r, out| {
                let ctx = &self.ctxs[r];
                // Per-row dispatch recorded at plan build: the narrow
                // single-widening-multiplication path for validated ≤32-bit
                // moduli, the general Barrett path otherwise.
                let narrow = self.narrow[r];
                let ar = a.row(r);
                let br = b.row(r);
                match op {
                    BlasOp::VecMul => {
                        for (o, (&x, &y)) in out.iter_mut().zip(ar.iter().zip(br)) {
                            *o = mul_mod(ctx, narrow, x, y);
                        }
                    }
                    BlasOp::VecAdd => {
                        for (o, (&x, &y)) in out.iter_mut().zip(ar.iter().zip(br)) {
                            *o = ctx.add_mod(x, y);
                        }
                    }
                    BlasOp::VecSub => {
                        for (o, (&x, &y)) in out.iter_mut().zip(ar.iter().zip(br)) {
                            *o = ctx.sub_mod(x, y);
                        }
                    }
                    BlasOp::Axpy => {
                        let s = scalar.unwrap().residues[r];
                        for (o, (&x, &y)) in out.iter_mut().zip(ar.iter().zip(br)) {
                            *o = ctx.add_mod(mul_mod(ctx, narrow, s, x), y);
                        }
                    }
                }
            })
        }
    }

    /// Element-wise `a * b` routed through a *generated* machine-level modular
    /// multiplication kernel per residue row, executed with
    /// [`moma_gpu::launch_compiled`].
    ///
    /// Functionally identical to [`RnsPlan::mul`]; it exists so the GRNS-style
    /// residue arithmetic and MoMA's compiled positional kernels can be measured
    /// on the exact same executor and launcher. (The generated kernel pays an
    /// exact-division reduction per element, so this path is a measurement
    /// harness, not the fast path.)
    pub fn mul_compiled(&self, a: &RnsMatrix, b: &RnsMatrix) -> (RnsMatrix, LaunchStats) {
        self.check_shape(a);
        self.check_shape(b);
        assert_eq!(a.cols, b.cols, "matrix width mismatch");
        let cols = a.cols;
        let mut data = Vec::with_capacity(self.moduli_count() * cols);
        let mut total = LaunchStats::default();
        let kernels = self.mul_kernels.get_or_init(|| {
            self.ctxs
                .iter()
                .map(|b| {
                    CompiledKernel::compile(&modmul_kernel(b))
                        .expect("generated residue kernel compiles")
                })
                .collect()
        });
        for (r, compiled) in kernels.iter().enumerate() {
            let ar = a.row(r);
            let br = b.row(r);
            let (outs, stats) = launch_compiled(compiled, cols, |i, params| {
                params[0] = ar[i];
                params[1] = br[i];
            });
            data.extend_from_slice(&outs);
            total.accumulate(stats);
        }
        (
            RnsMatrix {
                rows: self.moduli_count(),
                cols,
                data,
            },
            total,
        )
    }

    /// Builds the IR of the **all-rows** fused `s·(a∘b) + y` chain kernel: one
    /// generated program computing, per element, every residue row of the
    /// multiply-then-axpy chain — four parameters (`x_r`, `w_r`, `s_r`, `z_r`)
    /// and one output per basis modulus.
    ///
    /// The kernel is generated naively (a Barrett multiplication and a
    /// multiply-accumulate per row) and handed to
    /// [`moma_rewrite::passes::optimize`], whose fusion stage collapses each
    /// row into two division-free [`Op::MacReduceMod`] accumulation loops (the
    /// product, then `t·s + z` with the addend folded as an extra pair). The
    /// scalar rides as a *parameter*, not a baked constant, so one compiled
    /// kernel serves every scalar over this basis — which is what makes the
    /// kernel worth caching under a basis-shaped key.
    pub fn mul_axpy_kernel_ir(&self) -> Kernel {
        moma_rewrite::passes::optimize(&self.mul_axpy_kernel_ir_unfused())
    }

    /// The naive (pre-fusion) form of [`RnsPlan::mul_axpy_kernel_ir`]: one
    /// Barrett multiplication and one multiply-accumulate per row, exactly the
    /// unfused `mul` → `axpy` sequence written as a single program. Kept public
    /// as the interpreter oracle for fusion cross-checks.
    pub fn mul_axpy_kernel_ir_unfused(&self) -> Kernel {
        let mut kb = KernelBuilder::new("rns_mul_axpy_fused");
        let rows: Vec<_> = (0..self.moduli_count())
            .map(|r| {
                (
                    kb.param(format!("x{r}"), Ty::UInt(64)),
                    kb.param(format!("w{r}"), Ty::UInt(64)),
                    kb.param(format!("s{r}"), Ty::UInt(64)),
                    kb.param(format!("z{r}"), Ty::UInt(64)),
                    kb.output(format!("y{r}"), Ty::UInt(64)),
                )
            })
            .collect();
        for (ctx, (x, w, s, z, out)) in self.ctxs.iter().zip(rows) {
            let t = kb.fresh("t", Ty::UInt(64));
            kb.push(
                vec![t],
                Op::MulModBarrett {
                    a: x.into(),
                    b: w.into(),
                    q: Operand::Const(ctx.q),
                    mu: Operand::Const(ctx.mu),
                    mbits: ctx.mbits,
                },
            );
            kb.push(
                vec![out],
                Op::MulAddMod {
                    a: t.into(),
                    b: s.into(),
                    c: z.into(),
                    q: Operand::Const(ctx.q),
                    mu: Operand::Const(ctx.mu),
                    mbits: ctx.mbits,
                },
            );
        }
        kb.build()
    }

    /// `s·(a∘b) + z` — the element-wise multiply immediately scaled and
    /// accumulated — in **one** launch through the generated fused chain
    /// kernel, instead of the two launches (and one full intermediate matrix)
    /// of [`RnsPlan::mul`] followed by [`RnsPlan::axpy`]. Bit-for-bit equal to
    /// that unfused sequence.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes or the scalar basis do not match the plan.
    pub fn mul_axpy_fused(
        &self,
        a: &RnsMatrix,
        b: &RnsMatrix,
        s: &RnsInt,
        z: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        let compiled = self.axpy_kernel.get_or_init(|| {
            Arc::new(
                CompiledKernel::compile(&self.mul_axpy_kernel_ir())
                    .expect("generated fused chain kernel compiles"),
            )
        });
        self.mul_axpy_fused_with(a, b, s, z, compiled)
    }

    /// [`RnsPlan::mul_axpy_fused`] with a caller-supplied compiled chain kernel
    /// — the entry point for session-owned kernel caches, which compile
    /// [`RnsPlan::mul_axpy_kernel_ir`] once per basis and reuse it across every
    /// scalar and call.
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::mul_axpy_fused`] does, or if `compiled` does not
    /// take four parameters and produce one output per basis modulus.
    pub fn mul_axpy_fused_with(
        &self,
        a: &RnsMatrix,
        b: &RnsMatrix,
        s: &RnsInt,
        z: &RnsMatrix,
        compiled: &CompiledKernel,
    ) -> (RnsMatrix, LaunchStats) {
        let rows = self.moduli_count();
        let cols = a.cols;
        let mut data = vec![0u64; rows * cols];
        let mut stats = self.mul_axpy_fused_rows(a, b, s, z, compiled, &mut data);
        stats.allocs += usize::from(cols > 0);
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// [`RnsPlan::mul_axpy_fused_with`] with the output plane acquired from
    /// `pool`; `allocs` reports the pool-miss delta of the window.
    pub fn mul_axpy_fused_with_pool(
        &self,
        a: &RnsMatrix,
        b: &RnsMatrix,
        s: &RnsInt,
        z: &RnsMatrix,
        compiled: &CompiledKernel,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let rows = self.moduli_count();
        let cols = a.cols;
        let before = pool.misses();
        let mut data = pool.acquire(rows * cols);
        let mut stats = self.mul_axpy_fused_rows(a, b, s, z, compiled, &mut data);
        stats.allocs += (pool.misses() - before) as usize;
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// The shared body of the fused-chain entry points: validates shapes and
    /// fills the caller-provided output plane.
    fn mul_axpy_fused_rows(
        &self,
        a: &RnsMatrix,
        b: &RnsMatrix,
        s: &RnsInt,
        z: &RnsMatrix,
        compiled: &CompiledKernel,
        data: &mut [u64],
    ) -> LaunchStats {
        self.check_shape(a);
        self.check_shape(b);
        self.check_shape(z);
        assert_eq!(a.cols, b.cols, "matrix width mismatch");
        assert_eq!(a.cols, z.cols, "matrix width mismatch");
        assert_eq!(
            s.residues.len(),
            self.moduli_count(),
            "scalar basis mismatch"
        );
        let rows = self.moduli_count();
        let cols = a.cols;
        assert_eq!(
            (compiled.param_count(), compiled.output_count()),
            (4 * rows, rows),
            "fused chain kernel shape must match the basis"
        );
        assert_eq!(data.len(), rows * cols);
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_compiled_rows(compiled, data, cols, |p, lo, lanes| {
                let r = p / 4;
                let plane = match p % 4 {
                    0 => &a.data,
                    1 => &b.data,
                    2 => return lanes.fill(s.residues[r]),
                    _ => &z.data,
                };
                lanes.copy_from_slice(&plane[r * cols + lo..r * cols + lo + lanes.len()]);
            })
        }
    }

    /// Reduces every element modulo a user modulus `q` that is not the basis
    /// product: CRT reconstruction, positional reduction, forward conversion.
    /// This is the expensive round trip positional arithmetic avoids.
    pub fn reduce_mod(&self, a: &RnsMatrix, q: &BigUint) -> RnsMatrix {
        let reduced: Vec<BigUint> = self.to_biguints(a).into_iter().map(|x| &x % q).collect();
        RnsMatrix::from_biguints(self, &reduced)
    }

    /// Converts a whole matrix back to positional integers (CRT per column).
    pub fn to_biguints(&self, a: &RnsMatrix) -> Vec<BigUint> {
        self.check_shape(a);
        (0..a.cols)
            .map(|c| self.crt_reconstruct(|r| a.data[r * a.cols + c]))
            .collect()
    }

    fn crt_reconstruct(&self, residue: impl Fn(usize) -> u64) -> BigUint {
        let mut acc = BigUint::zero();
        for (r, (ctx, (mi, yi))) in self.ctxs.iter().zip(&self.crt).enumerate() {
            let t = ctx.mul_mod(residue(r) % ctx.q, *yi);
            acc = &acc + &(mi * &BigUint::from(t));
        }
        &acc % &self.product
    }

    pub(crate) fn check_shape(&self, a: &RnsMatrix) {
        assert_eq!(a.rows, self.moduli_count(), "matrix basis mismatch");
        assert_eq!(a.data.len(), a.rows * a.cols, "matrix storage corrupt");
    }
}

/// `(a · b) mod q`, dispatching on the `narrow` verdict the plan recorded at
/// construction: the single-widening-multiplication path for validated ≤32-bit
/// moduli (always true for the 31-bit bases [`RnsContext`] constructs by
/// default), the general Barrett path for wide rows of a mixed basis.
#[inline]
pub(crate) fn mul_mod(ctx: &SingleBarrett, narrow: bool, a: u64, b: u64) -> u64 {
    if narrow {
        ctx.mul_mod_narrow(a, b)
    } else {
        ctx.mul_mod(a, b)
    }
}

/// Computes `value mod q` from little-endian machine words: a Barrett dot product
/// against the precomputed residues of the limb-radix powers.
fn residue_of(ctx: &SingleBarrett, narrow: bool, pows: &[u64], limbs: &[u64]) -> u64 {
    assert!(
        limbs.len() <= pows.len(),
        "value exceeds the RNS dynamic range"
    );
    let mut acc = 0u64;
    for (&limb, &pow) in limbs.iter().zip(pows) {
        acc = ctx.add_mod(acc, mul_mod(ctx, narrow, limb % ctx.q, pow));
    }
    acc
}

/// Builds the generated single-word Barrett modular-multiplication kernel for one
/// residue modulus: `out = (a · b) mod q` with `q`, `μ`, and the modulus bit-width
/// baked in as constants (the paper's Listing 1 `_smulmod` shape).
fn modmul_kernel(ctx: &SingleBarrett) -> Kernel {
    let mut kb = KernelBuilder::new(format!("rns_modmul_m{:x}", ctx.q));
    let a = kb.param("a", Ty::UInt(64));
    let b = kb.param("b", Ty::UInt(64));
    let out = kb.output("out", Ty::UInt(64));
    kb.push(
        vec![out],
        Op::MulModBarrett {
            a: a.into(),
            b: b.into(),
            q: Operand::Const(ctx.q),
            mu: Operand::Const(ctx.mu),
            mbits: ctx.mbits,
        },
    );
    kb.build()
}

/// A vector of big integers in residue form, stored structure-of-arrays.
///
/// Row `r` of the flat row-major storage holds the residues of all `cols`
/// elements modulo basis prime `m_r` — the GRNS "residue plane" layout, which is
/// what lets one launcher thread stream a whole row with perfect locality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsMatrix {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) data: Vec<u64>,
}

impl RnsMatrix {
    /// Converts a slice of positional integers into SoA residue form, one
    /// launcher thread per residue row. Apart from reading each value's machine
    /// words, the conversion performs no `BigUint` arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if any value is not below the plan's dynamic range.
    pub fn from_biguints(plan: &RnsPlan, values: &[BigUint]) -> Self {
        let mut data = vec![0u64; plan.moduli_count() * values.len()];
        Self::fill_from_biguints(plan, values, &mut data);
        RnsMatrix {
            rows: plan.moduli_count(),
            cols: values.len(),
            data,
        }
    }

    /// [`RnsMatrix::from_biguints`] with the residue plane acquired from `pool`
    /// instead of the allocator. The matrix owns the buffer; recycle it through
    /// [`RnsMatrix::take_storage`] (or an owner's `Drop`, as `moma`'s `RnsVec`
    /// does) when the matrix is done.
    pub fn from_biguints_pooled(plan: &RnsPlan, values: &[BigUint], pool: &BufferPool) -> Self {
        let mut data = pool.acquire(plan.moduli_count() * values.len());
        Self::fill_from_biguints(plan, values, &mut data);
        RnsMatrix {
            rows: plan.moduli_count(),
            cols: values.len(),
            data,
        }
    }

    /// The shared forward-conversion body: one launcher thread per residue row,
    /// writing into the caller-provided plane.
    fn fill_from_biguints(plan: &RnsPlan, values: &[BigUint], data: &mut [u64]) {
        for v in values {
            assert!(v < &plan.product, "value exceeds the RNS dynamic range");
        }
        let cols = values.len();
        assert_eq!(data.len(), plan.moduli_count() * cols);
        if cols > 0 {
            launch_chunks(data, cols, |r, out| {
                let ctx = &plan.ctxs[r];
                let narrow = plan.narrow[r];
                let pows = &plan.limb_residues[r];
                for (o, v) in out.iter_mut().zip(values) {
                    *o = residue_of(ctx, narrow, pows, v.limbs());
                }
            });
        }
    }

    /// A copy of this matrix whose residue plane comes from `pool` instead of
    /// the allocator — the pooled twin of `Clone`, used by owners that recycle
    /// their planes on drop.
    pub fn clone_with_pool(&self, pool: &BufferPool) -> Self {
        let mut data = pool.acquire(self.data.len());
        data.copy_from_slice(&self.data);
        RnsMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Tears the matrix down to its flat storage, leaving it empty (0 × 0).
    /// This is the hand-back half of the pooled lifecycle: an owner that
    /// acquired the plane from a [`BufferPool`] takes the storage here and
    /// recycles it instead of letting the `Vec` drop to the allocator.
    pub fn take_storage(&mut self) -> Vec<u64> {
        self.rows = 0;
        self.cols = 0;
        std::mem::take(&mut self.data)
    }

    /// Number of residue rows (= basis moduli).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of elements (columns).
    pub fn len(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.cols == 0
    }

    /// One residue row: the residues of every element modulo basis prime `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one residue row — the in-place hook that lets ring-level
    /// callers run a per-modulus transform (e.g. a negacyclic NTT) directly on
    /// the plane without copying the row out and back.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts one element's residue column as an [`RnsInt`] (inspection /
    /// interop path; allocates).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn element(&self, c: usize) -> RnsInt {
        assert!(c < self.cols, "column out of range");
        RnsInt {
            residues: (0..self.rows)
                .map(|r| self.data[r * self.cols + c])
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::RnsVector;
    use moma_bignum::random::random_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, bits: u32) -> (RnsContext, RnsPlan, Vec<BigUint>, Vec<BigUint>) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let plan = RnsPlan::new(&ctx);
        let mut rng = StdRng::seed_from_u64(0x504c_414e);
        let a: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        let b: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        (ctx, plan, a, b)
    }

    #[test]
    fn residues_match_context_oracle() {
        let (ctx, plan, a, _) = setup(12, 140);
        for v in a.iter().chain([&BigUint::zero(), &BigUint::one()]) {
            assert_eq!(plan.to_residues(v), ctx.to_residues(v), "value {v:?}");
        }
    }

    #[test]
    fn matrix_round_trips_through_crt() {
        let (_, plan, a, _) = setup(9, 200);
        let m = RnsMatrix::from_biguints(&plan, &a);
        assert_eq!(m.row_count(), plan.moduli_count());
        assert_eq!(m.len(), 9);
        assert_eq!(plan.to_biguints(&m), a);
    }

    #[test]
    fn elementwise_ops_match_vector_oracle() {
        let (ctx, plan, a, b) = setup(16, 120);
        let va = RnsVector::from_biguints(&ctx, &a);
        let vb = RnsVector::from_biguints(&ctx, &b);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        type Oracle = fn(&RnsContext, &RnsInt, &RnsInt) -> RnsInt;
        let checks: [(BlasOp, Oracle); 3] = [
            (BlasOp::VecMul, |c, x, y| c.mul(x, y)),
            (BlasOp::VecAdd, |c, x, y| c.add(x, y)),
            (BlasOp::VecSub, |c, x, y| c.sub(x, y)),
        ];
        for (op, oracle) in checks {
            let (out, stats) = plan.apply(op, None, &ma, &mb);
            assert_eq!(stats.threads, plan.moduli_count(), "{op:?}");
            for c in 0..a.len() {
                assert_eq!(
                    out.element(c),
                    oracle(&ctx, &va.elements[c], &vb.elements[c]),
                    "{op:?} column {c}"
                );
            }
        }
    }

    #[test]
    fn axpy_matches_positional() {
        let (_, plan, x, y) = setup(8, 100);
        let s = BigUint::from(0xdead_beefu64);
        let mx = RnsMatrix::from_biguints(&plan, &x);
        let my = RnsMatrix::from_biguints(&plan, &y);
        let out = plan.axpy(&plan.to_residues(&s), &mx, &my);
        let back = plan.to_biguints(&out);
        for c in 0..x.len() {
            assert_eq!(back[c], &(&s * &x[c]) + &y[c]);
        }
    }

    #[test]
    fn compiled_kernel_path_matches_rowwise_path() {
        let (_, plan, a, b) = setup(10, 96);
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        let fast = plan.mul(&ma, &mb);
        let (compiled, stats) = plan.mul_compiled(&ma, &mb);
        assert_eq!(compiled, fast);
        assert_eq!(stats.threads, plan.moduli_count() * a.len());
    }

    #[test]
    fn mul_axpy_kernel_collapses_to_accumulation_loops() {
        let plan = RnsPlan::with_capacity_bits(160);
        let kernel = plan.mul_axpy_kernel_ir();
        moma_ir::validate::validate(&kernel).expect("fused chain kernel validates");
        let k = plan.moduli_count() as u64;
        let counts = CompiledKernel::compile(&kernel)
            .unwrap()
            .counts_per_element()
            .clone();
        // Per row: a single-pair loop for the product and a two-pair loop for
        // `t·s + z` (the addend folded as the extra pair); nothing survives
        // unfused.
        assert_eq!(counts.get("macreduce"), 3 * k);
        assert_eq!(counts.get("reducewide"), 2 * k);
        assert_eq!(counts.get("mulmod"), 0);
        assert_eq!(counts.get("macmod"), 0);
    }

    #[test]
    fn fused_mul_axpy_matches_the_unfused_chain_in_one_launch() {
        // A mixed narrow/wide basis so both multiplication dispatches of the
        // unfused path are crosschecked against the generated kernel.
        let narrow = RnsContext::with_random_primes(2, 31, 0xa1)
            .moduli()
            .to_vec();
        let wide = RnsContext::with_random_primes(2, 52, 0xa2)
            .moduli()
            .to_vec();
        let ctx = RnsContext::with_moduli(&[narrow[0], wide[0], narrow[1], wide[1]]);
        let plan = RnsPlan::new(&ctx);
        let mut rng = StdRng::seed_from_u64(0xaf99);
        let mut draw = |n: usize| -> Vec<BigUint> {
            (0..n)
                .map(|_| moma_bignum::random::random_below(&mut rng, &plan.product))
                .collect()
        };
        let (va, vb, vz) = (draw(19), draw(19), draw(19));
        let s_val = draw(1).remove(0);
        let a = RnsMatrix::from_biguints(&plan, &va);
        let b = RnsMatrix::from_biguints(&plan, &vb);
        let z = RnsMatrix::from_biguints(&plan, &vz);
        let s = plan.to_residues(&s_val);
        let (prod, mul_stats) = plan.apply(BlasOp::VecMul, None, &a, &b);
        let (unfused, axpy_stats) = plan.apply(BlasOp::Axpy, Some(&s), &prod, &z);
        let (fused, stats) = plan.mul_axpy_fused(&a, &b, &s, &z);
        assert_eq!(fused, unfused, "fusion must not change a single bit");
        assert_eq!(mul_stats.launches + axpy_stats.launches, 2);
        assert_eq!(stats.launches, 1, "the whole chain is one launch");
        assert_eq!(stats.threads, va.len(), "one thread per element");
        // And positionally: s·(a·b mod M) + z (mod M).
        for (c, back) in plan.to_biguints(&fused).iter().enumerate() {
            let expect =
                &(&(&s_val * &(&(&va[c] * &vb[c]) % &plan.product)) + &vz[c]) % &plan.product;
            assert_eq!(back, &expect, "column {c}");
        }
        // Empty batches short-circuit.
        let empty = RnsMatrix::from_biguints(&plan, &[]);
        let (out, stats) = plan.mul_axpy_fused(&empty, &empty, &s, &empty);
        assert!(out.is_empty());
        assert_eq!(stats.launches, 0);
    }

    #[test]
    #[should_panic(expected = "kernel shape")]
    fn fused_mul_axpy_rejects_a_mismatched_kernel() {
        let plan = RnsPlan::with_capacity_bits(96);
        let other = RnsPlan::with_capacity_bits(256);
        let m = RnsMatrix::from_biguints(&plan, &[BigUint::one()]);
        let s = plan.to_residues(&BigUint::one());
        let wrong = CompiledKernel::compile(&other.mul_axpy_kernel_ir()).unwrap();
        plan.mul_axpy_fused_with(&m, &m, &s, &m, &wrong);
    }

    #[test]
    fn reduce_mod_matches_oracle() {
        let (ctx, plan, a, b) = setup(4, 120);
        let q = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let prod = plan.mul(
            &RnsMatrix::from_biguints(&plan, &a),
            &RnsMatrix::from_biguints(&plan, &b),
        );
        let reduced = plan.reduce_mod(&prod, &q);
        for (c, back) in plan.to_biguints(&reduced).iter().enumerate() {
            assert_eq!(back, &((&a[c] * &b[c]) % &q));
            assert_eq!(reduced.element(c), ctx.reduce_mod(&prod.element(c), &q));
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let plan = RnsPlan::with_capacity_bits(64);
        let m = RnsMatrix::from_biguints(&plan, &[]);
        assert!(m.is_empty());
        assert!(plan.mul(&m, &m).is_empty());
        assert!(plan.to_biguints(&m).is_empty());
    }

    #[test]
    #[should_panic(expected = "dynamic range")]
    fn oversized_value_rejected() {
        let plan = RnsPlan::with_capacity_bits(64);
        RnsMatrix::from_biguints(&plan, &[BigUint::from(1u64) << 200]);
    }

    #[test]
    #[should_panic(expected = "basis mismatch")]
    fn mismatched_bases_rejected() {
        let small = RnsPlan::with_capacity_bits(64);
        let large = RnsPlan::with_capacity_bits(256);
        let m = RnsMatrix::from_biguints(&large, &[BigUint::one()]);
        small.mul(&m, &m);
    }

    #[test]
    fn from_tables_roundtrips_bit_for_bit() {
        let (_, plan, a, b) = setup(11, 150);
        let moduli: Vec<u64> = plan.moduli().collect();
        let restored =
            RnsPlan::from_tables(&moduli, plan.product.clone(), plan.crt_tables().to_vec())
                .expect("fresh tables restore");
        assert_eq!(restored.moduli().collect::<Vec<u64>>(), moduli);
        assert_eq!(restored.product, plan.product);
        assert_eq!(restored.crt_tables(), plan.crt_tables());
        assert_eq!(restored.narrow, plan.narrow);
        assert_eq!(restored.limb_residues, plan.limb_residues);
        // The restored plan computes identically to the fresh one.
        let ma = RnsMatrix::from_biguints(&restored, &a);
        let mb = RnsMatrix::from_biguints(&restored, &b);
        assert_eq!(restored.mul(&ma, &mb), plan.mul(&ma, &mb));
        assert_eq!(plan.to_biguints(&restored.mul(&ma, &mb)).len(), a.len());
    }

    #[test]
    fn from_tables_fails_closed() {
        let plan = RnsPlan::with_capacity_bits(128);
        let moduli: Vec<u64> = plan.moduli().collect();
        let product = plan.product.clone();
        let crt = plan.crt_tables().to_vec();

        // Modulus out of range.
        let mut bad = moduli.clone();
        bad[0] = 1;
        assert!(matches!(
            RnsPlan::from_tables(&bad, product.clone(), crt.clone()),
            Err(PlanRestoreError::BadModulus { q: 1 })
        ));
        let mut wide = moduli.clone();
        wide[0] = 1 << 61;
        assert!(matches!(
            RnsPlan::from_tables(&wide, product.clone(), crt.clone()),
            Err(PlanRestoreError::BadModulus { .. })
        ));

        // Table count disagrees with the basis.
        assert!(matches!(
            RnsPlan::from_tables(&moduli, product.clone(), crt[1..].to_vec()),
            Err(PlanRestoreError::ShapeMismatch)
        ));
        assert!(matches!(
            RnsPlan::from_tables(&[], BigUint::one(), Vec::new()),
            Err(PlanRestoreError::ShapeMismatch)
        ));

        // Product that is not the basis product.
        assert!(matches!(
            RnsPlan::from_tables(&moduli, &product + &BigUint::one(), crt.clone()),
            Err(PlanRestoreError::BadProduct)
        ));

        // A flipped inverse word.
        let mut tampered = crt.clone();
        tampered[1].1 ^= 1;
        assert!(matches!(
            RnsPlan::from_tables(&moduli, product.clone(), tampered),
            Err(PlanRestoreError::BadCrt { index: 1 })
        ));

        // A perturbed punctured product M_i.
        let mut tampered = crt.clone();
        tampered[0].0 = &tampered[0].0 + &BigUint::one();
        assert!(matches!(
            RnsPlan::from_tables(&moduli, product.clone(), tampered),
            Err(PlanRestoreError::BadCrt { index: 0 })
        ));

        // Everything intact still restores.
        assert!(RnsPlan::from_tables(&moduli, product, crt).is_ok());
    }

    #[test]
    fn pooled_ops_match_heap_and_go_allocation_free_when_warm() {
        let (_, plan, a, b) = setup(14, 120);
        let pool = BufferPool::new();
        let ma = RnsMatrix::from_biguints(&plan, &a);
        let mb = RnsMatrix::from_biguints(&plan, &b);
        let s = plan.to_residues(&BigUint::from(0x5eedu64));
        let compiled = CompiledKernel::compile(&plan.mul_axpy_kernel_ir()).unwrap();

        let (heap_mul, heap_stats) = plan.apply(BlasOp::VecMul, None, &ma, &mb);
        assert_eq!(heap_stats.allocs, 1, "heap path allocates its plane");
        let (heap_fused, _) = plan.mul_axpy_fused_with(&ma, &mb, &s, &mb, &compiled);

        // Cold pool: the planes miss, so the first round reports allocations.
        let (mut cold_mul, cold_stats) = plan.apply_pooled(BlasOp::VecMul, None, &ma, &mb, &pool);
        assert_eq!(cold_mul, heap_mul, "pooled result is bit-identical");
        assert_eq!(cold_stats.allocs, 1, "cold pool misses once");
        let (mut cold_fused, _) =
            plan.mul_axpy_fused_with_pool(&ma, &mb, &s, &mb, &compiled, &pool);
        assert_eq!(cold_fused, heap_fused);
        pool.recycle(cold_mul.take_storage());
        pool.recycle(cold_fused.take_storage());

        // Warm pool: every plane is served from the shelves.
        for round in 0..5 {
            let before = pool.misses();
            let (mut warm_mul, warm_stats) =
                plan.apply_pooled(BlasOp::VecMul, None, &ma, &mb, &pool);
            let (mut warm_fused, fused_stats) =
                plan.mul_axpy_fused_with_pool(&ma, &mb, &s, &mb, &compiled, &pool);
            assert_eq!(warm_mul, heap_mul, "round {round}");
            assert_eq!(warm_fused, heap_fused, "round {round}");
            assert_eq!(warm_stats.allocs, 0, "round {round} mul is allocation-free");
            assert_eq!(
                fused_stats.allocs, 0,
                "round {round} fused is allocation-free"
            );
            assert_eq!(pool.misses(), before, "round {round} never missed");
            pool.recycle(warm_mul.take_storage());
            pool.recycle(warm_fused.take_storage());
        }

        // from_biguints_pooled follows the same contract.
        let mut pooled_in = RnsMatrix::from_biguints_pooled(&plan, &a, &pool);
        assert_eq!(pooled_in, ma);
        pool.recycle(pooled_in.take_storage());
    }
}
