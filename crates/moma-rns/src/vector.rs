//! Element-wise vector operations over RNS integers (the GRNS BLAS baseline).
//!
//! This is the array-of-structures oracle path: one [`RnsInt`] (and one residue
//! `Vec`) per element. The measured hot path lives in [`crate::plan`], which
//! stores whole vectors as flat residue planes and runs them on the GPU
//! launcher; the crosscheck tests pin the two paths together.

use crate::{RnsContext, RnsInt};
use moma_bignum::BigUint;

/// A vector of RNS integers sharing one context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsVector {
    /// The elements, all over the same basis.
    pub elements: Vec<RnsInt>,
}

impl RnsVector {
    /// Converts a slice of positional integers.
    pub fn from_biguints(ctx: &RnsContext, values: &[BigUint]) -> Self {
        RnsVector {
            elements: values.iter().map(|v| ctx.to_residues(v)).collect(),
        }
    }

    /// Converts back to positional integers.
    pub fn to_biguints(&self, ctx: &RnsContext) -> Vec<BigUint> {
        self.elements.iter().map(|e| ctx.from_residues(e)).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// Element-wise `a + b`.
pub fn vec_add(ctx: &RnsContext, a: &RnsVector, b: &RnsVector) -> RnsVector {
    zip(a, b, |x, y| ctx.add(x, y))
}

/// Element-wise `a - b` (requires `a[i] >= b[i]` positionally for a positional match;
/// in RNS the result is always well-defined modulo the product).
pub fn vec_sub(ctx: &RnsContext, a: &RnsVector, b: &RnsVector) -> RnsVector {
    zip(a, b, |x, y| ctx.sub(x, y))
}

/// Element-wise `a * b`.
pub fn vec_mul(ctx: &RnsContext, a: &RnsVector, b: &RnsVector) -> RnsVector {
    zip(a, b, |x, y| ctx.mul(x, y))
}

/// `y = a*x + y` with a scalar `a`.
pub fn axpy(ctx: &RnsContext, a: &RnsInt, x: &RnsVector, y: &RnsVector) -> RnsVector {
    assert_eq!(x.len(), y.len());
    RnsVector {
        elements: x
            .elements
            .iter()
            .zip(&y.elements)
            .map(|(xi, yi)| ctx.add(&ctx.mul(a, xi), yi))
            .collect(),
    }
}

/// Element-wise reduction modulo a user modulus `q` (the expensive CRT round trip that
/// positional multi-word arithmetic avoids).
pub fn vec_reduce_mod(ctx: &RnsContext, a: &RnsVector, q: &BigUint) -> RnsVector {
    RnsVector {
        elements: a.elements.iter().map(|e| ctx.reduce_mod(e, q)).collect(),
    }
}

fn zip(a: &RnsVector, b: &RnsVector, f: impl Fn(&RnsInt, &RnsInt) -> RnsInt) -> RnsVector {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    RnsVector {
        elements: a
            .elements
            .iter()
            .zip(&b.elements)
            .map(|(x, y)| f(x, y))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::random::random_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, bits: u32) -> (RnsContext, Vec<BigUint>, Vec<BigUint>) {
        let ctx = RnsContext::with_capacity_bits(2 * bits + 8);
        let mut rng = StdRng::seed_from_u64(77);
        let a: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        let b: Vec<BigUint> = (0..n).map(|_| random_bits(&mut rng, bits)).collect();
        (ctx, a, b)
    }

    #[test]
    fn vector_ops_match_positional() {
        let (ctx, a, b) = setup(16, 128);
        let va = RnsVector::from_biguints(&ctx, &a);
        let vb = RnsVector::from_biguints(&ctx, &b);
        let sum = vec_add(&ctx, &va, &vb).to_biguints(&ctx);
        let prod = vec_mul(&ctx, &va, &vb).to_biguints(&ctx);
        for i in 0..a.len() {
            assert_eq!(sum[i], &a[i] + &b[i]);
            assert_eq!(prod[i], &a[i] * &b[i]);
        }
    }

    #[test]
    fn axpy_matches_positional() {
        let (ctx, x, y) = setup(8, 100);
        let scalar = BigUint::from(123456789u64);
        let out = axpy(
            &ctx,
            &ctx.to_residues(&scalar),
            &RnsVector::from_biguints(&ctx, &x),
            &RnsVector::from_biguints(&ctx, &y),
        )
        .to_biguints(&ctx);
        for i in 0..x.len() {
            assert_eq!(out[i], &(&scalar * &x[i]) + &y[i]);
        }
    }

    #[test]
    fn reduce_mod_vector() {
        let (ctx, a, b) = setup(4, 120);
        let q = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let prod = vec_mul(
            &ctx,
            &RnsVector::from_biguints(&ctx, &a),
            &RnsVector::from_biguints(&ctx, &b),
        );
        let reduced = vec_reduce_mod(&ctx, &prod, &q).to_biguints(&ctx);
        for i in 0..a.len() {
            assert_eq!(reduced[i], (&a[i] * &b[i]) % &q);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let (ctx, a, _) = setup(4, 64);
        let va = RnsVector::from_biguints(&ctx, &a);
        let vb = RnsVector::from_biguints(&ctx, &a[..2]);
        vec_add(&ctx, &va, &vb);
    }

    #[test]
    fn empty_vectors() {
        let ctx = RnsContext::with_moduli_count(3);
        let empty = RnsVector { elements: vec![] };
        assert!(empty.is_empty());
        assert_eq!(vec_add(&ctx, &empty, &empty).len(), 0);
    }
}
