//! RNS base extension and approximate scaled rounding on the planned engine.
//!
//! Element-wise residue arithmetic ([`crate::plan`]) is only half of the GRNS
//! workload the paper's Figure 2 models: FHE pipelines chain two more RNS
//! primitives *between* the NTT and BLAS stages, and both are sum-of-products
//! reductions rather than independent per-residue maps:
//!
//! * **Fast base extension** (`FastBConv` in the BEHZ literature): re-express a
//!   value known modulo basis `B = {m_1, …, m_k}` (product `M`) in a second
//!   basis `B' = {m'_1, …, m'_l}` without reconstructing the positional value.
//!   With pseudo-residues `x̃_r = x_r · (M/m_r)^{-1} mod m_r`, each target
//!   residue is `y_s = Σ_r x̃_r · |M/m_r|_{m'_s} mod m'_s`. The conversion is
//!   *approximate*: the sum equals `x + α·M` for an overshoot `0 ≤ α < k`,
//!   which downstream FHE operations absorb by design.
//! * **Approximate scaled rounding** (the CKKS/BGV rescale): divide by the last
//!   basis modulus `m_k` with rounding, dropping that modulus from the basis —
//!   `y = (x − [x]_{m_k})/m_k + ([x]_{m_k} > m_k/2)`, computed residue-locally
//!   as `y_r = (x_r − c)·m_k^{-1} mod m_r` plus the rounding increment.
//!
//! [`BaseConvPlan`] precomputes, **once per basis pair**, the punctured-product
//! inverses `(M/m_r)^{-1} mod m_r` and the cross-basis table
//! `|M/m_r|_{m'_s}`; [`RescalePlan`] precomputes the dropped modulus' inverses
//! and the output-basis plan. Execution then runs one virtual GPU thread per
//! *target* residue row through [`moma_gpu::launch_chunks`], exactly like the
//! element-wise operations, with the inner sum accumulated widening
//! ([`moma_mp::single::smac`]) and reduced once per element
//! ([`SingleBarrett::reduce_wide`]). Two generated-kernel paths run the same
//! math on the compiled executor:
//!
//! * [`RnsPlan::base_convert_compiled`] — one batch launch per target row
//!   through the per-row kernels of [`BaseConvPlan::mac_kernel_ir`], which the
//!   `moma-rewrite` fusion pass collapses from a [`moma_ir::Op::MulAddMod`]
//!   chain into a single [`moma_ir::Op::MacReduceMod`] accumulation loop (a
//!   measurement harness: it keeps the per-row launch structure visible);
//! * [`RnsPlan::base_convert_fused`] — the fast path: **one** launch runs the
//!   all-rows kernel of [`BaseConvPlan::fused_kernel_ir`], computing an
//!   element's pseudo-residues and every target residue in registers, with no
//!   intermediate pseudo-residue plane written or re-read at all.
//!
//! FHE pipelines chain the two — rescale, then extend the quotient into a fresh
//! basis (the BEHZ `FastBConvSK` shape). Run separately that walks the data
//! twice; [`RescaleExtendPlan`] folds the dropped modulus' inverse *into* the
//! punctured-product inverses at plan-build time, so
//! [`RnsPlan::rescale_then_extend`] computes the conversion's pseudo-residues
//! straight from the unrescaled data — one launch round per residue-row set,
//! no intermediate matrix. The two-pass chain stays callable
//! ([`RnsPlan::rescale_then_extend_two_pass`]) and the cost model prices both
//! ([`RescaleExtendPlan::fused_is_faster`]) so sessions can select
//! automatically.
//!
//! Every operation is cross-checked bit-for-bit against the `BigUint` oracles
//! [`RnsContext::base_convert`] and [`RnsContext::scale_and_round`].

use crate::plan::{mul_mod, RnsMatrix, RnsPlan};
use crate::RnsContext;
use moma_gpu::launch::{launch_chunks, launch_compiled_batch, launch_compiled_rows, LaunchStats};
use moma_gpu::pool::BufferPool;
use moma_gpu::CostModel;
use moma_ir::compiled::CompiledKernel;
use moma_ir::cost::OpCounts;
use moma_ir::{Kernel, KernelBuilder, Op, Operand, Ty};
use moma_mp::single::{smac, SingleBarrett};
use std::sync::{Arc, OnceLock};

/// Why a restored conversion-plan table set was rejected by
/// [`BaseConvPlan::from_tables`], [`RescalePlan::from_tables`], or
/// [`RescaleExtendPlan::from_parts`]. Every variant is fail-closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvRestoreError {
    /// Table lengths or basis pairings do not match the plans they claim to
    /// belong to.
    ShapeMismatch,
    /// A pseudo-residue factor disagrees with the source plan's CRT inverse.
    BadPseudoFactor {
        /// Index of the offending source modulus.
        index: usize,
    },
    /// A cross-basis table entry disagrees with the recomputed
    /// `|M/m_r|_{m'_s}`.
    BadCrossTable {
        /// Flat row-major index (`s·k + r`) of the offending entry.
        index: usize,
    },
    /// A dropped-modulus inverse fails `inv_last[r] · m_k ≢ 1 (mod m_r)`.
    BadInverse {
        /// Index of the offending surviving modulus.
        index: usize,
    },
    /// A folded factor fails `fused[r] ≠ inv_last[r] · inv_punctured[r]`.
    BadFusedFactor {
        /// Index of the offending surviving modulus.
        index: usize,
    },
}

impl std::fmt::Display for ConvRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvRestoreError::ShapeMismatch => {
                write!(f, "conversion tables do not match the claimed basis pair")
            }
            ConvRestoreError::BadPseudoFactor { index } => {
                write!(
                    f,
                    "pseudo-residue factor {index} fails its inverse identity"
                )
            }
            ConvRestoreError::BadCrossTable { index } => {
                write!(
                    f,
                    "cross-basis table entry {index} disagrees with the source CRT"
                )
            }
            ConvRestoreError::BadInverse { index } => {
                write!(f, "dropped-modulus inverse {index} fails its identity")
            }
            ConvRestoreError::BadFusedFactor { index } => {
                write!(f, "folded rescale-extend factor {index} fails its identity")
            }
        }
    }
}

impl std::error::Error for ConvRestoreError {}

/// Precomputed tables for fast base extension from one basis into another.
///
/// Built once per `(source, target)` basis pair; every subsequent
/// [`RnsPlan::base_convert`] is pure machine-word arithmetic.
///
/// # Example
///
/// ```
/// use moma_bignum::BigUint;
/// use moma_rns::{BaseConvPlan, RnsContext, RnsMatrix, RnsPlan};
///
/// let src = RnsPlan::new(&RnsContext::with_moduli_count(4));
/// let dst = RnsPlan::new(&RnsContext::with_moduli(&[2147481173, 2147482223]));
/// let bc = BaseConvPlan::new(&src, &dst);
/// let m = RnsMatrix::from_biguints(&src, &[BigUint::from(12345u64)]);
/// let (converted, _) = src.base_convert(&bc, &m);
/// assert_eq!(converted.row_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BaseConvPlan {
    /// Source basis moduli, for validating that a conversion is run from the
    /// plan it was built for.
    src_moduli: Vec<u64>,
    /// `(M/m_r)^{-1} mod m_r` per source modulus — the pseudo-residue factors.
    inv_punctured: Vec<u64>,
    /// Row-major cross-basis table: `cross[s·k + r] = |M/m_r|_{m'_s}`, laid out
    /// so each target row's accumulation streams its own contiguous slice.
    cross: Vec<u64>,
    /// The target plan (cloned so converted matrices can be used immediately).
    dst: RnsPlan,
    /// One generated fused multiply-accumulate kernel per target modulus,
    /// compiled lazily on the first [`RnsPlan::base_convert_compiled`] call.
    /// Callers that own a cross-plan kernel cache (a session) should instead
    /// generate the IR with [`BaseConvPlan::mac_kernel_ir`], compile through
    /// their cache, and execute with [`RnsPlan::base_convert_compiled_with`].
    mac_kernels: OnceLock<Vec<Arc<CompiledKernel>>>,
    /// The single all-rows conversion kernel (pseudo-residues and every target
    /// row in one generated program), compiled lazily on the first
    /// [`RnsPlan::base_convert_fused`] call. Session-owned caches compile
    /// [`BaseConvPlan::fused_kernel_ir`] themselves and run
    /// [`RnsPlan::base_convert_fused_with`].
    fused_kernel: OnceLock<Arc<CompiledKernel>>,
}

impl BaseConvPlan {
    /// Builds the conversion tables for the `src → dst` basis pair.
    ///
    /// # Panics
    ///
    /// Panics if the widening sum-of-products could overflow its 128-bit
    /// accumulator — `k` terms of `(m_r − 1)·(m'_s − 1)` each — which cannot
    /// happen for any realistic basis (it needs ≥ 2^8 moduli of 60 bits).
    pub fn new(src: &RnsPlan, dst: &RnsPlan) -> Self {
        let k = src.moduli_count();
        let max_src = src.moduli().max().expect("basis is non-empty");
        let max_dst = dst.moduli().max().expect("basis is non-empty");
        let worst_term = (max_src - 1) as u128 * (max_dst - 1) as u128;
        assert!(
            worst_term == 0 || k as u128 <= u128::MAX / worst_term,
            "basis pair too large for the widening accumulator ({k} source moduli)"
        );
        // crt[r] = (M/m_r, (M/m_r)^{-1} mod m_r): both halves of the fast
        // conversion are already precomputed by the source plan.
        let inv_punctured: Vec<u64> = src.crt.iter().map(|(_, yi)| *yi).collect();
        let mut cross = Vec::with_capacity(dst.moduli_count() * k);
        for dst_ctx in &dst.ctxs {
            let m_big = moma_bignum::BigUint::from(dst_ctx.q);
            for (mi, _) in &src.crt {
                cross.push((mi % &m_big).to_u64().expect("residue fits a word"));
            }
        }
        BaseConvPlan {
            src_moduli: src.moduli().collect(),
            inv_punctured,
            cross,
            dst: dst.clone(),
            mac_kernels: OnceLock::new(),
            fused_kernel: OnceLock::new(),
        }
    }

    /// The target plan matrices produced by this conversion live over.
    pub fn dst_plan(&self) -> &RnsPlan {
        &self.dst
    }

    /// The source basis moduli this plan converts from.
    pub fn source_moduli(&self) -> &[u64] {
        &self.src_moduli
    }

    /// The conversion tables — `(M/m_r)^{-1} mod m_r` per source modulus, then
    /// the row-major cross-basis table `|M/m_r|_{m'_s}` — the serialization
    /// view used by session snapshots.
    pub fn conversion_tables(&self) -> (&[u64], &[u64]) {
        (&self.inv_punctured, &self.cross)
    }

    /// Rebuilds a conversion plan from snapshot data over already-restored
    /// source and target plans. Nothing is trusted: each pseudo-residue factor
    /// must equal the source plan's CRT inverse exactly (they are copies by
    /// construction), and each cross-basis entry is recomputed as
    /// `M/m_r mod m'_s` from the source CRT numerators and compared — so a
    /// tampered table, or tables paired with the wrong basis, fail closed.
    ///
    /// # Panics
    ///
    /// Panics under the [`BaseConvPlan::new`] accumulator-width conditions.
    pub fn from_tables(
        src: &RnsPlan,
        dst: &RnsPlan,
        inv_punctured: Vec<u64>,
        cross: Vec<u64>,
    ) -> Result<Self, ConvRestoreError> {
        let k = src.moduli_count();
        let max_src = src.moduli().max().expect("basis is non-empty");
        let max_dst = dst.moduli().max().expect("basis is non-empty");
        let worst_term = (max_src - 1) as u128 * (max_dst - 1) as u128;
        assert!(
            worst_term == 0 || k as u128 <= u128::MAX / worst_term,
            "basis pair too large for the widening accumulator ({k} source moduli)"
        );
        if inv_punctured.len() != k || cross.len() != dst.moduli_count() * k {
            return Err(ConvRestoreError::ShapeMismatch);
        }
        for (index, (&ip, (_, yi))) in inv_punctured.iter().zip(src.crt_tables()).enumerate() {
            if ip != *yi {
                return Err(ConvRestoreError::BadPseudoFactor { index });
            }
        }
        for (s, dst_ctx) in dst.ctxs.iter().enumerate() {
            let m_big = moma_bignum::BigUint::from(dst_ctx.q);
            for (r, (mi, _)) in src.crt_tables().iter().enumerate() {
                let expect = (mi % &m_big).to_u64().expect("residue fits a word");
                if cross[s * k + r] != expect {
                    return Err(ConvRestoreError::BadCrossTable { index: s * k + r });
                }
            }
        }
        Ok(BaseConvPlan {
            src_moduli: src.moduli().collect(),
            inv_punctured,
            cross,
            dst: dst.clone(),
            mac_kernels: OnceLock::new(),
            fused_kernel: OnceLock::new(),
        })
    }

    pub(crate) fn check_source(&self, src: &RnsPlan) {
        assert!(
            src.moduli().eq(self.src_moduli.iter().copied()),
            "conversion plan was built for a different source basis"
        );
    }

    /// Generates (on first use) and returns the per-target-modulus fused
    /// multiply-accumulate kernels.
    fn kernels(&self) -> &[Arc<CompiledKernel>] {
        self.mac_kernels.get_or_init(|| {
            (0..self.dst.moduli_count())
                .map(|s| {
                    Arc::new(
                        CompiledKernel::compile(&self.mac_kernel_ir(s))
                            .expect("generated baseconv kernel compiles"),
                    )
                })
                .collect()
        })
    }

    /// Builds the IR of the generated sum-of-products kernel for target modulus
    /// `s`, **after** the `moma-rewrite` fusion pass: the naive
    /// [`Op::MulAddMod`] chain ([`BaseConvPlan::mac_kernel_ir_unfused`])
    /// collapses to a single [`Op::MacReduceMod`] accumulation loop — one
    /// deferred division-free reduction instead of one full Barrett reduction
    /// per source modulus. This is the hook for external kernel caches: compile
    /// it once under a `("baseconv_mac", 64, m'_s)` key and execute with
    /// [`RnsPlan::base_convert_compiled_with`].
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a target-row index.
    pub fn mac_kernel_ir(&self, s: usize) -> Kernel {
        moma_rewrite::passes::optimize(&self.mac_kernel_ir_unfused(s))
    }

    /// The pre-fusion form of [`BaseConvPlan::mac_kernel_ir`]: the naive chain
    /// of one [`Op::MulAddMod`] per source modulus. Kept callable as the oracle
    /// the fusion crosschecks run against (and as the shape the fusion pass is
    /// exercised on in production).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a target-row index.
    pub fn mac_kernel_ir_unfused(&self, s: usize) -> Kernel {
        let k = self.src_moduli.len();
        mac_kernel(&self.dst.ctxs[s], &self.cross[s * k..(s + 1) * k])
    }

    /// Builds the IR of the **all-rows** conversion kernel: one generated
    /// program whose parameters are an element's raw source residues and whose
    /// outputs are every target residue at once — the pseudo-residue
    /// multiplications and all `l` cross-basis accumulations live in the same
    /// kernel, so one launch (and one read of the element) replaces the
    /// two-stage pseudo-plane round-trip.
    ///
    /// The kernel is generated naively — one [`Op::MulModBarrett`] per source
    /// modulus, then one [`Op::MulAddMod`] chain per target modulus — and
    /// handed to [`moma_rewrite::passes::optimize`], whose fusion stage
    /// collapses every multiplication and chain into [`Op::MacReduceMod`]
    /// accumulation loops; the compiled executor then runs the whole
    /// conversion division-free.
    pub fn fused_kernel_ir(&self) -> Kernel {
        moma_rewrite::passes::optimize(&self.fused_kernel_ir_unfused())
    }

    /// The naive (pre-fusion) form of [`BaseConvPlan::fused_kernel_ir`] — the
    /// literal two-stage op sequence written as one program. Kept public as the
    /// interpreter oracle for fusion cross-checks.
    pub fn fused_kernel_ir_unfused(&self) -> Kernel {
        let k = self.src_moduli.len();
        let mut kb = KernelBuilder::new("rns_baseconv_fused");
        let params: Vec<_> = (0..k)
            .map(|r| kb.param(format!("x{r}"), Ty::UInt(64)))
            .collect();
        let outs: Vec<_> = (0..self.dst.moduli_count())
            .map(|s| kb.output(format!("y{s}"), Ty::UInt(64)))
            .collect();
        let mut pseudo = Vec::with_capacity(k);
        for ((&x, &m), &inv) in params.iter().zip(&self.src_moduli).zip(&self.inv_punctured) {
            let ctx = SingleBarrett::new(m);
            let t = kb.fresh("ps", Ty::UInt(64));
            kb.push(
                vec![t],
                Op::MulModBarrett {
                    a: x.into(),
                    b: Operand::Const(inv),
                    q: Operand::Const(ctx.q),
                    mu: Operand::Const(ctx.mu),
                    mbits: ctx.mbits,
                },
            );
            pseudo.push(t);
        }
        for (s, (&out, ctx)) in outs.iter().zip(&self.dst.ctxs).enumerate() {
            let cross_row = &self.cross[s * k..(s + 1) * k];
            let mut acc = Operand::Const(0);
            let last = k - 1;
            for (r, (&t, &c)) in pseudo.iter().zip(cross_row).enumerate() {
                let dst = if r == last {
                    out
                } else {
                    kb.fresh("acc", Ty::UInt(64))
                };
                kb.push(
                    vec![dst],
                    Op::MulAddMod {
                        a: t.into(),
                        b: Operand::Const(c),
                        c: acc,
                        q: Operand::Const(ctx.q),
                        mu: Operand::Const(ctx.mu),
                        mbits: ctx.mbits,
                    },
                );
                acc = dst.into();
            }
        }
        kb.build()
    }

    /// Generates (on first use) and returns the compiled all-rows conversion
    /// kernel.
    fn fused(&self) -> &Arc<CompiledKernel> {
        self.fused_kernel.get_or_init(|| {
            Arc::new(
                CompiledKernel::compile(&self.fused_kernel_ir())
                    .expect("generated fused conversion kernel compiles"),
            )
        })
    }
}

/// Builds the generated sum-of-products kernel for one target modulus: a chain
/// of fused multiply-accumulates `acc = (x̃_r · c_r + acc) mod q` with the
/// cross-basis constants, `q`, and `μ` baked in — one [`Op::MulAddMod`]
/// statement per source modulus.
///
/// The kernel's parameters are the element's pseudo-residues **reduced modulo
/// the target modulus** (the caller folds them, since a pseudo-residue lives in
/// its source ring and a mixed-width basis pair can have `m_r > m'_s`):
/// `MulAddMod`'s operands are contractually reduced, and the word-algebra
/// expansion the emitters rely on is only exact under that precondition.
fn mac_kernel(ctx: &SingleBarrett, cross_row: &[u64]) -> Kernel {
    let mut kb = KernelBuilder::new(format!("rns_baseconv_m{:x}", ctx.q));
    let params: Vec<_> = (0..cross_row.len())
        .map(|r| kb.param(format!("x{r}"), Ty::UInt(64)))
        .collect();
    let out = kb.output("out", Ty::UInt(64));
    let mut acc = Operand::Const(0);
    let last = cross_row.len() - 1;
    for (r, (&x, &c)) in params.iter().zip(cross_row).enumerate() {
        let dst = if r == last {
            out
        } else {
            kb.fresh("acc", Ty::UInt(64))
        };
        kb.push(
            vec![dst],
            Op::MulAddMod {
                a: x.into(),
                b: Operand::Const(c),
                c: acc,
                q: Operand::Const(ctx.q),
                mu: Operand::Const(ctx.mu),
                mbits: ctx.mbits,
            },
        );
        acc = dst.into();
    }
    kb.build()
}

impl RnsPlan {
    /// Computes the pseudo-residue planes `x̃_r = x_r · (M/m_r)^{-1} mod m_r`,
    /// one launcher thread per source residue row — the shared first stage of
    /// both base-conversion paths.
    fn pseudo_residues(&self, bc: &BaseConvPlan, a: &RnsMatrix) -> (Vec<u64>, LaunchStats) {
        let mut pseudo = vec![0u64; self.moduli_count() * a.len()];
        let stats = self.pseudo_residues_into(bc, a, &mut pseudo);
        (pseudo, stats)
    }

    /// [`RnsPlan::pseudo_residues`] into a caller-provided plane.
    fn pseudo_residues_into(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        pseudo: &mut [u64],
    ) -> LaunchStats {
        let cols = a.len();
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_chunks(pseudo, cols, |r, out| {
                let ctx = &self.ctxs[r];
                let narrow = self.narrow[r];
                let inv = bc.inv_punctured[r];
                for (o, &x) in out.iter_mut().zip(a.row(r)) {
                    *o = mul_mod(ctx, narrow, x, inv);
                }
            })
        }
    }

    /// Fast base extension: re-expresses every element of `a` (over this plan's
    /// basis `B`, product `M`) in the target basis of `bc`, entirely in
    /// machine-word arithmetic.
    ///
    /// Two launch rounds: pseudo-residues (one thread per *source* row), then
    /// the sum-of-products accumulation (one thread per *target* row), each
    /// element accumulated widening ([`smac`]) and reduced once
    /// ([`SingleBarrett::reduce_wide`]). The result represents `x + α·M` for an
    /// overshoot `0 ≤ α < k` — the approximate conversion FHE pipelines use,
    /// bit-for-bit equal to the [`RnsContext::base_convert`] oracle.
    ///
    /// # Panics
    ///
    /// Panics if `bc` was built for a different source basis or `a` does not
    /// match this plan.
    pub fn base_convert(&self, bc: &BaseConvPlan, a: &RnsMatrix) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let mut pseudo = vec![0u64; self.moduli_count() * cols];
        let mut data = vec![0u64; bc.dst.moduli_count() * cols];
        let mut stats = self.base_convert_rows(bc, a, &mut pseudo, &mut data);
        stats.allocs += 2 * usize::from(cols > 0);
        (
            RnsMatrix {
                rows: bc.dst.moduli_count(),
                cols,
                data,
            },
            stats,
        )
    }

    /// [`RnsPlan::base_convert`] with both working planes (the intermediate
    /// pseudo-residues and the output) acquired from `pool`; the pseudo plane
    /// is recycled before returning and `allocs` reports the pool-miss delta of
    /// the window.
    pub fn base_convert_pooled(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let before = pool.misses();
        let mut pseudo = pool.acquire(self.moduli_count() * cols);
        let mut data = pool.acquire(bc.dst.moduli_count() * cols);
        let mut stats = self.base_convert_rows(bc, a, &mut pseudo, &mut data);
        pool.recycle(pseudo);
        stats.allocs += (pool.misses() - before) as usize;
        (
            RnsMatrix {
                rows: bc.dst.moduli_count(),
                cols,
                data,
            },
            stats,
        )
    }

    /// The shared body of the two-round conversion: validates shapes and fills
    /// the caller-provided pseudo-residue and output planes.
    fn base_convert_rows(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        pseudo: &mut [u64],
        data: &mut [u64],
    ) -> LaunchStats {
        bc.check_source(self);
        self.check_shape(a);
        let cols = a.len();
        let k = self.moduli_count();
        assert_eq!(pseudo.len(), k * cols);
        assert_eq!(data.len(), bc.dst.moduli_count() * cols);
        let mut stats = self.pseudo_residues_into(bc, a, pseudo);
        if cols > 0 {
            let pseudo = &*pseudo;
            stats.accumulate(launch_chunks(data, cols, |s, out| {
                let ctx = &bc.dst.ctxs[s];
                let cross_row = &bc.cross[s * k..(s + 1) * k];
                for (i, o) in out.iter_mut().enumerate() {
                    let mut acc = 0u128;
                    for (r, &c) in cross_row.iter().enumerate() {
                        acc = smac(acc, pseudo[r * cols + i], c);
                    }
                    *o = ctx.reduce_wide(acc);
                }
            }));
        }
        stats
    }

    /// Fast base extension routed through the *generated* fused
    /// multiply-accumulate kernels, one [`launch_compiled_batch`] per target
    /// residue row.
    ///
    /// Functionally identical to [`RnsPlan::base_convert`]; it exists so the
    /// conversion cost is measurable on the exact same compiled executor and
    /// launcher as MoMA's positional kernels (like
    /// [`RnsPlan::mul_compiled`], a measurement harness rather than the fast
    /// path).
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::base_convert`] does.
    pub fn base_convert_compiled(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        self.base_convert_compiled_with(bc, a, bc.kernels())
    }

    /// [`RnsPlan::base_convert_compiled`] with caller-supplied compiled MAC
    /// kernels — the entry point for session-owned kernel caches, which compile
    /// each [`BaseConvPlan::mac_kernel_ir`] once per `(op, width, modulus)` key
    /// and reuse it across every conversion plan and call.
    ///
    /// Each target row runs as one flat-batch launch
    /// ([`moma_gpu::launch_compiled_batch`]): the per-element input marshalling
    /// that dominated the old per-element path (a fresh `Vec` per element per
    /// row) is hoisted into one row-major buffer fill.
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::base_convert`] does, or if `kernels` does not hold
    /// exactly one kernel per target modulus.
    pub fn base_convert_compiled_with(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        kernels: &[Arc<CompiledKernel>],
    ) -> (RnsMatrix, LaunchStats) {
        bc.check_source(self);
        self.check_shape(a);
        assert_eq!(
            kernels.len(),
            bc.dst.moduli_count(),
            "one compiled MAC kernel per target modulus"
        );
        let cols = a.len();
        let k = self.moduli_count();
        let (pseudo, mut stats) = self.pseudo_residues(bc, a);
        let mut data = Vec::with_capacity(bc.dst.moduli_count() * cols);
        let mut raw_flat: Option<Vec<u64>> = None;
        let mut reduced_flat = Vec::new();
        for (compiled, ctx) in kernels.iter().zip(&bc.dst.ctxs) {
            if cols == 0 {
                break;
            }
            let input: &[u64] = if compiled.counts_per_element().get("macreduce") > 0 {
                // An accumulation-loop kernel reduces the whole sum modulo the
                // target exactly once, so term-by-term congruence is all it
                // needs: the raw pseudo-residues feed it unchanged, and the
                // transposed batch is built once and shared by every fused
                // target row instead of refilled (and re-reduced) per row.
                raw_flat.get_or_insert_with(|| {
                    let mut flat = vec![0u64; cols * k];
                    for (r, plane) in pseudo.chunks_exact(cols).enumerate() {
                        for (i, &x) in plane.iter().enumerate() {
                            flat[i * k + r] = x;
                        }
                    }
                    flat
                })
            } else {
                // A pseudo-residue is reduced modulo its *source* modulus,
                // which may exceed the target modulus in a mixed-width basis
                // pair; an unfused kernel's MulAddMod contract requires factors
                // reduced modulo the target q, so fold them into the row-major
                // input batch here — congruence is unchanged since
                // (x mod q)·c + acc ≡ x·c + acc (mod q).
                reduced_flat.resize(cols * k, 0);
                for (r, plane) in pseudo.chunks_exact(cols).enumerate() {
                    for (i, &x) in plane.iter().enumerate() {
                        reduced_flat[i * k + r] = ctx.reduce_word(x);
                    }
                }
                &reduced_flat
            };
            let (outs, round) = launch_compiled_batch(compiled, input);
            data.extend(outs);
            stats.accumulate(round);
        }
        (
            RnsMatrix {
                rows: bc.dst.moduli_count(),
                cols,
                data,
            },
            stats,
        )
    }

    /// Fast base extension through the single all-rows generated kernel — the
    /// compiled executor's fast path.
    ///
    /// Where [`RnsPlan::base_convert`] runs two launch rounds (pseudo-residue
    /// planes, then the cross-basis sums) and
    /// [`RnsPlan::base_convert_compiled`] one batch launch per target row,
    /// this runs **one** launch for the whole conversion: each element's raw
    /// source residues go in, every target residue comes out, and the
    /// pseudo-residues live in registers instead of an intermediate plane that
    /// is written once and re-read once per target row. The kernel itself is
    /// the fusion pass' output ([`BaseConvPlan::fused_kernel_ir`]), so every
    /// multiplication and accumulation executes as a division-free
    /// [`Op::MacReduceMod`] loop.
    ///
    /// Bit-for-bit equal to [`RnsPlan::base_convert`].
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::base_convert`] does.
    pub fn base_convert_fused(&self, bc: &BaseConvPlan, a: &RnsMatrix) -> (RnsMatrix, LaunchStats) {
        self.base_convert_fused_with(bc, a, bc.fused())
    }

    /// [`RnsPlan::base_convert_fused`] with a caller-supplied compiled all-rows
    /// kernel — the entry point for session-owned kernel caches, which compile
    /// [`BaseConvPlan::fused_kernel_ir`] once per basis pair and reuse it
    /// across plans and calls.
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::base_convert`] does, or if `compiled` does not
    /// take one parameter per source modulus and produce one output per target
    /// modulus.
    pub fn base_convert_fused_with(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        compiled: &CompiledKernel,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = bc.dst.moduli_count();
        let mut data = vec![0u64; rows * cols];
        let mut stats = self.base_convert_fused_rows(bc, a, compiled, &mut data);
        stats.allocs += usize::from(cols > 0);
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// [`RnsPlan::base_convert_fused_with`] with the output plane acquired from
    /// `pool`; `allocs` reports the pool-miss delta of the window.
    pub fn base_convert_fused_with_pool(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        compiled: &CompiledKernel,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = bc.dst.moduli_count();
        let before = pool.misses();
        let mut data = pool.acquire(rows * cols);
        let mut stats = self.base_convert_fused_rows(bc, a, compiled, &mut data);
        stats.allocs += (pool.misses() - before) as usize;
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// The shared body of the fused-conversion entry points.
    fn base_convert_fused_rows(
        &self,
        bc: &BaseConvPlan,
        a: &RnsMatrix,
        compiled: &CompiledKernel,
        data: &mut [u64],
    ) -> LaunchStats {
        bc.check_source(self);
        self.check_shape(a);
        let cols = a.len();
        let k = self.moduli_count();
        let rows = bc.dst.moduli_count();
        assert_eq!(
            (compiled.param_count(), compiled.output_count()),
            (k, rows),
            "fused conversion kernel shape must match the basis pair"
        );
        assert_eq!(data.len(), rows * cols);
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_compiled_rows(compiled, data, cols, |r, lo, lanes| {
                lanes.copy_from_slice(&a.data[r * cols + lo..r * cols + lo + lanes.len()]);
            })
        }
    }

    /// Builds the rescale tables for dropping this basis' last modulus.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale_plan(&self) -> RescalePlan {
        RescalePlan::new(self)
    }

    /// Approximate scaled rounding (the CKKS/BGV rescale): divides every
    /// element by the last basis modulus `m_k` with rounding and returns the
    /// result over the shortened basis, one launcher thread per output residue
    /// row.
    ///
    /// Residue-locally, `y_r = (x_r − c)·m_k^{-1} mod m_r` with `c` the
    /// element's last residue, plus one when `c > m_k/2` — so the result is
    /// within one of `x/m_k`, bit-for-bit equal to the
    /// [`RnsContext::scale_and_round`] oracle.
    ///
    /// # Panics
    ///
    /// Panics if `rp` was built for a different basis or `a` does not match
    /// this plan.
    pub fn scale_and_round(&self, rp: &RescalePlan, a: &RnsMatrix) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = rp.out.moduli_count();
        let mut data = vec![0u64; rows * cols];
        let mut stats = self.scale_and_round_rows(rp, a, &mut data);
        stats.allocs += usize::from(cols > 0);
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// [`RnsPlan::scale_and_round`] with the output plane acquired from `pool`;
    /// `allocs` reports the pool-miss delta of the window.
    pub fn scale_and_round_pooled(
        &self,
        rp: &RescalePlan,
        a: &RnsMatrix,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = rp.out.moduli_count();
        let before = pool.misses();
        let mut data = pool.acquire(rows * cols);
        let mut stats = self.scale_and_round_rows(rp, a, &mut data);
        stats.allocs += (pool.misses() - before) as usize;
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// The shared body of the rescale entry points: validates shapes and fills
    /// the caller-provided output plane.
    fn scale_and_round_rows(
        &self,
        rp: &RescalePlan,
        a: &RnsMatrix,
        data: &mut [u64],
    ) -> LaunchStats {
        rp.check_source(self);
        self.check_shape(a);
        let cols = a.len();
        let rows = rp.out.moduli_count();
        let last = self.ctxs[rows].q;
        let half = last / 2;
        let c_row = a.row(rows);
        assert_eq!(data.len(), rows * cols);
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_chunks(data, cols, |r, out| {
                let ctx = &rp.out.ctxs[r];
                let narrow = rp.out.narrow[r];
                let inv = rp.inv_last[r];
                for ((o, &x), &c) in out.iter_mut().zip(a.row(r)).zip(c_row) {
                    // (x_r − c)·m_k^{-1}, then the rounding increment. The
                    // dropped residue c lives in [0, m_k), possibly above this
                    // row's modulus, so fold it first. Hardware division is
                    // the measured-faster fold in this loop (~2× over the
                    // multiply-based `reduce_word` on the benched host): the
                    // otherwise-idle divider overlaps the Barrett multiply
                    // chain instead of contending with it.
                    let diff = ctx.sub_mod(x, c % ctx.q);
                    let y = mul_mod(ctx, narrow, diff, inv);
                    *o = if c > half { ctx.add_mod(y, 1) } else { y };
                }
            })
        }
    }

    /// Builds the fused rescale-and-extend tables for dropping this basis' last
    /// modulus and re-expressing the result in `dst`'s basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli, or under the
    /// [`BaseConvPlan::new`] accumulator-width conditions.
    pub fn rescale_extend_plan(&self, dst: &RnsPlan) -> RescaleExtendPlan {
        RescaleExtendPlan::new(self, dst)
    }

    /// Fused rescale-and-extend (the BEHZ `FastBConvSK` shape): divides every
    /// element by the last basis modulus `m_k` with rounding **and** re-expresses
    /// the quotient in the target basis, in one launch round per residue-row set —
    /// the pseudo-residues come straight off the source data, with no
    /// intermediate rescaled matrix ever written.
    ///
    /// Residue-locally, with `c` the element's last residue and
    /// `δ = (c > m_k/2)`: the rescaled value is `y_r = (x_r − c)·m_k^{-1} + δ`,
    /// and its pseudo-residue for the conversion is
    /// `ỹ_r = y_r·(M⁻/m_r)^{-1} = (x_r − c)·f_r + δ·(M⁻/m_r)^{-1} (mod m_r)`
    /// where `f_r = m_k^{-1}·(M⁻/m_r)^{-1} mod m_r` was folded at plan-build
    /// time. The target residues are then the usual cross-basis sums. The result
    /// is bit-for-bit the [`RnsPlan::scale_and_round`]-then-
    /// [`RnsPlan::base_convert`] chain (including the `x + αM⁻` overshoot).
    ///
    /// # Panics
    ///
    /// Panics if `p` was built for a different source basis or `a` does not
    /// match this plan.
    pub fn rescale_then_extend(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = p.bc.dst.moduli_count();
        let mut pseudo = vec![0u64; (self.moduli_count() - 1) * cols];
        let mut data = vec![0u64; rows * cols];
        let mut stats = self.rescale_then_extend_rows(p, a, &mut pseudo, &mut data);
        stats.allocs += 2 * usize::from(cols > 0);
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// [`RnsPlan::rescale_then_extend`] with both working planes acquired from
    /// `pool`; the pseudo plane is recycled before returning and `allocs`
    /// reports the pool-miss delta of the window.
    pub fn rescale_then_extend_pooled(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let cols = a.len();
        let rows = p.bc.dst.moduli_count();
        let before = pool.misses();
        let mut pseudo = pool.acquire((self.moduli_count() - 1) * cols);
        let mut data = pool.acquire(rows * cols);
        let mut stats = self.rescale_then_extend_rows(p, a, &mut pseudo, &mut data);
        pool.recycle(pseudo);
        stats.allocs += (pool.misses() - before) as usize;
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// The shared body of the fused rescale-and-extend entry points: validates
    /// shapes and fills the caller-provided pseudo-residue and output planes.
    fn rescale_then_extend_rows(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        pseudo: &mut [u64],
        data: &mut [u64],
    ) -> LaunchStats {
        p.rescale.check_source(self);
        self.check_shape(a);
        let cols = a.len();
        let km1 = self.moduli_count() - 1;
        let rows = p.bc.dst.moduli_count();
        let last = self.ctxs[km1].q;
        let half = last / 2;
        let c_row = a.row(km1);
        assert_eq!(pseudo.len(), km1 * cols);
        assert_eq!(data.len(), rows * cols);
        let mut stats = LaunchStats::default();
        if cols > 0 {
            // Round 1 — fused pseudo-residues, one thread per surviving source
            // row, reading the source data directly.
            stats.accumulate(launch_chunks(pseudo, cols, |r, out| {
                let ctx = &self.ctxs[r];
                let narrow = self.narrow[r];
                let f = p.fused[r];
                let ip = p.bc.inv_punctured[r];
                for ((o, &x), &c) in out.iter_mut().zip(a.row(r)).zip(c_row) {
                    // The dropped residue c lives in [0, m_k), possibly above
                    // this row's modulus; fold it first (see scale_and_round).
                    let diff = ctx.sub_mod(x, c % ctx.q);
                    let t = mul_mod(ctx, narrow, diff, f);
                    *o = if c > half { ctx.add_mod(t, ip) } else { t };
                }
            }));
            // Round 2 — the cross-basis accumulation, one thread per target row,
            // identical to base_convert's second stage.
            let pseudo = &*pseudo;
            stats.accumulate(launch_chunks(data, cols, |s, out| {
                let ctx = &p.bc.dst.ctxs[s];
                let cross_row = &p.bc.cross[s * km1..(s + 1) * km1];
                for (i, o) in out.iter_mut().enumerate() {
                    let mut acc = 0u128;
                    for (r, &c) in cross_row.iter().enumerate() {
                        acc = smac(acc, pseudo[r * cols + i], c);
                    }
                    *o = ctx.reduce_wide(acc);
                }
            }));
        }
        stats
    }

    /// The unfused reference chain for [`RnsPlan::rescale_then_extend`]:
    /// [`RnsPlan::scale_and_round`] into an intermediate matrix, then
    /// [`RnsPlan::base_convert`] — three launch rounds and one extra full pass
    /// over the data. Kept callable so the fused saving stays measurable and the
    /// cost model has a real alternative to price.
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::rescale_then_extend`] does.
    pub fn rescale_then_extend_two_pass(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        let (rescaled, mut stats) = self.scale_and_round(&p.rescale, a);
        let (out, round) = p.rescale.out.base_convert(&p.bc, &rescaled);
        stats.accumulate(round);
        (out, stats)
    }

    /// [`RnsPlan::rescale_then_extend_two_pass`] with every working plane —
    /// including the intermediate rescaled matrix, which is recycled before
    /// returning — routed through `pool`.
    pub fn rescale_then_extend_two_pass_pooled(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let (mut rescaled, mut stats) = self.scale_and_round_pooled(&p.rescale, a, pool);
        let (out, round) = p.rescale.out.base_convert_pooled(&p.bc, &rescaled, pool);
        pool.recycle(rescaled.take_storage());
        stats.accumulate(round);
        (out, stats)
    }

    /// The whole `mul→rescale→extend` chain — element-wise product, rounded
    /// division by the dropped modulus, re-expression in the target basis — in
    /// **one** launch through the generated fused chain kernel, instead of the
    /// three launches (and two intermediate matrices) of [`RnsPlan::mul`]
    /// followed by [`RnsPlan::rescale_then_extend`]. Bit-for-bit equal to that
    /// unfused sequence.
    ///
    /// # Panics
    ///
    /// Panics if `p` was built for a different source basis or the matrices do
    /// not match this plan.
    pub fn mul_rescale_then_extend_fused(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        b: &RnsMatrix,
    ) -> (RnsMatrix, LaunchStats) {
        self.mul_rescale_then_extend_fused_with(p, a, b, p.mul_fused())
    }

    /// [`RnsPlan::mul_rescale_then_extend_fused`] with a caller-supplied
    /// compiled chain kernel — the entry point for session-owned kernel caches,
    /// which compile [`RescaleExtendPlan::mul_fused_kernel_ir`] once per basis
    /// pair and reuse it across plans and calls.
    ///
    /// # Panics
    ///
    /// Panics as [`RnsPlan::mul_rescale_then_extend_fused`] does, or if
    /// `compiled` does not take two parameters per source modulus and produce
    /// one output per target modulus.
    pub fn mul_rescale_then_extend_fused_with(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        b: &RnsMatrix,
        compiled: &CompiledKernel,
    ) -> (RnsMatrix, LaunchStats) {
        let rows = p.bc.dst.moduli_count();
        let cols = a.cols;
        let mut data = vec![0u64; rows * cols];
        let mut stats = self.mul_rescale_then_extend_fused_rows(p, a, b, compiled, &mut data);
        stats.allocs += usize::from(cols > 0);
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// [`RnsPlan::mul_rescale_then_extend_fused_with`] with the output plane
    /// acquired from `pool`; `allocs` reports the pool-miss delta of the
    /// window.
    pub fn mul_rescale_then_extend_fused_with_pool(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        b: &RnsMatrix,
        compiled: &CompiledKernel,
        pool: &BufferPool,
    ) -> (RnsMatrix, LaunchStats) {
        let rows = p.bc.dst.moduli_count();
        let cols = a.cols;
        let before = pool.misses();
        let mut data = pool.acquire(rows * cols);
        let mut stats = self.mul_rescale_then_extend_fused_rows(p, a, b, compiled, &mut data);
        stats.allocs += (pool.misses() - before) as usize;
        (RnsMatrix { rows, cols, data }, stats)
    }

    /// The shared body of the fused `mul→rescale→extend` entry points.
    fn mul_rescale_then_extend_fused_rows(
        &self,
        p: &RescaleExtendPlan,
        a: &RnsMatrix,
        b: &RnsMatrix,
        compiled: &CompiledKernel,
        data: &mut [u64],
    ) -> LaunchStats {
        p.rescale.check_source(self);
        self.check_shape(a);
        self.check_shape(b);
        assert_eq!(a.cols, b.cols, "matrix width mismatch");
        let k = self.moduli_count();
        let rows = p.bc.dst.moduli_count();
        let cols = a.cols;
        assert_eq!(
            (compiled.param_count(), compiled.output_count()),
            (2 * k, rows),
            "fused chain kernel shape must match the basis pair"
        );
        assert_eq!(data.len(), rows * cols);
        if cols == 0 {
            LaunchStats::default()
        } else {
            launch_compiled_rows(compiled, data, cols, |p, lo, lanes| {
                let row = &if p % 2 == 0 { &a.data } else { &b.data }[p / 2 * cols..];
                lanes.copy_from_slice(&row[lo..lo + lanes.len()]);
            })
        }
    }
}

/// Precomputed tables for one rescale step: dropping the last basis modulus
/// with approximate rounding.
///
/// Built once per basis; holds the output-basis [`RnsPlan`] (the source basis
/// without its last modulus) and the dropped modulus' inverse in every
/// remaining residue ring.
#[derive(Debug, Clone)]
pub struct RescalePlan {
    /// Source basis moduli, for validating the plan pairing.
    src_moduli: Vec<u64>,
    /// The output plan (source basis without the last modulus).
    out: RnsPlan,
    /// `m_k^{-1} mod m_r` per remaining modulus.
    inv_last: Vec<u64>,
}

impl RescalePlan {
    /// Builds the rescale tables for dropping `src`'s last modulus.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than two moduli.
    pub fn new(src: &RnsPlan) -> Self {
        let moduli: Vec<u64> = src.moduli().collect();
        assert!(moduli.len() >= 2, "rescale needs at least two basis moduli");
        let last = *moduli.last().expect("non-empty basis");
        // The source plan already validated its basis; skip re-running the
        // primality checks on the surviving moduli.
        let out = RnsPlan::new(&RnsContext::from_moduli(
            moduli[..moduli.len() - 1].to_vec(),
        ));
        let inv_last = out
            .ctxs
            .iter()
            .map(|ctx| ctx.inv_mod(last % ctx.q))
            .collect();
        RescalePlan {
            src_moduli: moduli,
            out,
            inv_last,
        }
    }

    /// The plan the rescaled matrices live over.
    pub fn output_plan(&self) -> &RnsPlan {
        &self.out
    }

    /// The dropped modulus' inverses, `m_k^{-1} mod m_r` per surviving modulus
    /// — the serialization view used by session snapshots.
    pub fn inverse_table(&self) -> &[u64] {
        &self.inv_last
    }

    /// Rebuilds a rescale plan from snapshot data over an already-restored
    /// source plan and output plan. The output plan must be exactly the source
    /// basis without its last modulus, and every inverse must satisfy
    /// `inv_last[r] · m_k ≡ 1 (mod m_r)`; anything else fails closed.
    pub fn from_tables(
        src: &RnsPlan,
        out: RnsPlan,
        inv_last: Vec<u64>,
    ) -> Result<Self, ConvRestoreError> {
        let moduli: Vec<u64> = src.moduli().collect();
        if moduli.len() < 2
            || !out.moduli().eq(moduli[..moduli.len() - 1].iter().copied())
            || inv_last.len() != moduli.len() - 1
        {
            return Err(ConvRestoreError::ShapeMismatch);
        }
        let last = *moduli.last().expect("non-empty basis");
        for (index, (ctx, &inv)) in out.ctxs.iter().zip(&inv_last).enumerate() {
            if inv >= ctx.q || ctx.mul_mod(inv, last % ctx.q) != 1 {
                return Err(ConvRestoreError::BadInverse { index });
            }
        }
        Ok(RescalePlan {
            src_moduli: moduli,
            out,
            inv_last,
        })
    }

    pub(crate) fn check_source(&self, src: &RnsPlan) {
        assert!(
            src.moduli().eq(self.src_moduli.iter().copied()),
            "rescale plan was built for a different source basis"
        );
    }
}

/// Precomputed tables for the fused rescale-and-extend chain: dropping the
/// source basis' last modulus with rounding and re-expressing the quotient in a
/// target basis, in one launch round per residue-row set.
///
/// Built once per `(source, target)` basis pair; contains the unfused
/// [`RescalePlan`] and [`BaseConvPlan`] (for the two-pass reference path) plus
/// the fused per-row factors `f_r = m_k^{-1}·(M⁻/m_r)^{-1} mod m_r` that let the
/// pseudo-residues of the conversion be computed straight from the unrescaled
/// data.
#[derive(Debug, Clone)]
pub struct RescaleExtendPlan {
    /// The rescale half (also carries the output plan of the dropped basis).
    rescale: RescalePlan,
    /// The conversion half, built over the rescaled (shortened) basis.
    bc: BaseConvPlan,
    /// `f_r = m_k^{-1}·(M⁻/m_r)^{-1} mod m_r` per surviving source modulus.
    fused: Vec<u64>,
    /// The single all-rows `mul→rescale→extend` chain kernel
    /// ([`RescaleExtendPlan::mul_fused_kernel_ir`]), compiled lazily on the
    /// first [`RnsPlan::mul_rescale_then_extend_fused`] call. Session-owned
    /// caches compile the IR themselves and run
    /// [`RnsPlan::mul_rescale_then_extend_fused_with`].
    mul_kernel: OnceLock<Arc<CompiledKernel>>,
}

impl RescaleExtendPlan {
    /// Builds the fused tables for `src` (whose last modulus is dropped) into
    /// `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than two moduli, or under the
    /// [`BaseConvPlan::new`] accumulator-width conditions.
    pub fn new(src: &RnsPlan, dst: &RnsPlan) -> Self {
        let rescale = RescalePlan::new(src);
        let bc = BaseConvPlan::new(&rescale.out, dst);
        let fused = rescale
            .out
            .ctxs
            .iter()
            .zip(&rescale.inv_last)
            .zip(&bc.inv_punctured)
            .map(|((ctx, &inv_last), &ip)| ctx.mul_mod(inv_last, ip))
            .collect();
        RescaleExtendPlan {
            rescale,
            bc,
            fused,
            mul_kernel: OnceLock::new(),
        }
    }

    /// Builds the IR of the **all-rows** `mul→rescale→extend` chain kernel: one
    /// generated program whose parameters are an element's residues in *both*
    /// operand matrices (over the full source basis, dropped modulus included)
    /// and whose outputs are every target residue of
    /// `round((a·b)/m_k)` re-expressed in the target basis — the element-wise
    /// product, the rounding decision, the fused pseudo-residues, and all
    /// cross-basis sums live in the same kernel, so **one** launch replaces the
    /// three of `mul` followed by [`RnsPlan::rescale_then_extend`].
    ///
    /// Generated naively — Barrett multiplications, a comparison/select pair
    /// for the rounding increment, and one [`Op::MulAddMod`] chain per target
    /// row — then handed to [`moma_rewrite::passes::optimize`], whose fusion
    /// stage collapses every multiplication and chain into division-free
    /// [`Op::MacReduceMod`] accumulation loops.
    pub fn mul_fused_kernel_ir(&self) -> Kernel {
        moma_rewrite::passes::optimize(&self.mul_fused_kernel_ir_unfused())
    }

    /// The naive (pre-fusion) form of [`RescaleExtendPlan::mul_fused_kernel_ir`]
    /// — the literal unfused op sequence written as one program. Kept public as
    /// the interpreter oracle for fusion cross-checks.
    pub fn mul_fused_kernel_ir_unfused(&self) -> Kernel {
        let src_ctxs: Vec<SingleBarrett> = self
            .rescale
            .src_moduli
            .iter()
            .map(|&m| SingleBarrett::new(m))
            .collect();
        let k = src_ctxs.len();
        let km1 = k - 1;
        let half = src_ctxs[km1].q / 2;
        let mut kb = KernelBuilder::new("rns_mul_rescale_extend_fused");
        let params: Vec<_> = (0..k)
            .map(|r| {
                (
                    kb.param(format!("x{r}"), Ty::UInt(64)),
                    kb.param(format!("w{r}"), Ty::UInt(64)),
                )
            })
            .collect();
        let outs: Vec<_> = (0..self.bc.dst.moduli_count())
            .map(|s| kb.output(format!("y{s}"), Ty::UInt(64)))
            .collect();
        // The products of the element-wise multiply, in registers.
        let v: Vec<_> = params
            .iter()
            .zip(&src_ctxs)
            .map(|(&(x, w), ctx)| {
                let t = kb.fresh("v", Ty::UInt(64));
                kb.push(
                    vec![t],
                    Op::MulModBarrett {
                        a: x.into(),
                        b: w.into(),
                        q: Operand::Const(ctx.q),
                        mu: Operand::Const(ctx.mu),
                        mbits: ctx.mbits,
                    },
                );
                t
            })
            .collect();
        let c = v[km1];
        // The rounding decision δ = (c > m_k/2), made once per element.
        let delta = kb.fresh("delta", Ty::Flag);
        kb.push(
            vec![delta],
            Op::Lt {
                a: Operand::Const(half),
                b: c.into(),
            },
        );
        let mut pseudo = Vec::with_capacity(km1);
        for (r, ctx) in self.rescale.out.ctxs.iter().enumerate() {
            // Fold the dropped product residue into this row's ring (it lives
            // in [0, m_k), possibly above m_r); a multiply by 1 is an exact
            // modular fold on both executors.
            let cr = kb.fresh("cr", Ty::UInt(64));
            kb.push(
                vec![cr],
                Op::MulModBarrett {
                    a: c.into(),
                    b: Operand::Const(1),
                    q: Operand::Const(ctx.q),
                    mu: Operand::Const(ctx.mu),
                    mbits: ctx.mbits,
                },
            );
            let diff = kb.fresh("diff", Ty::UInt(64));
            kb.push(
                vec![diff],
                Op::SubMod {
                    a: v[r].into(),
                    b: cr.into(),
                    q: Operand::Const(ctx.q),
                },
            );
            // ỹ_r = (v_r − c)·f_r + δ·(M⁻/m_r)^{-1}: the mul→add pair below is
            // exactly the shape fusion rule 1 collapses.
            let t = kb.fresh("t", Ty::UInt(64));
            kb.push(
                vec![t],
                Op::MulModBarrett {
                    a: diff.into(),
                    b: Operand::Const(self.fused[r]),
                    q: Operand::Const(ctx.q),
                    mu: Operand::Const(ctx.mu),
                    mbits: ctx.mbits,
                },
            );
            let inc = kb.fresh("inc", Ty::UInt(64));
            kb.push(
                vec![inc],
                Op::Select {
                    cond: delta.into(),
                    if_true: Operand::Const(self.bc.inv_punctured[r]),
                    if_false: Operand::Const(0),
                },
            );
            let p = kb.fresh("ps", Ty::UInt(64));
            kb.push(
                vec![p],
                Op::AddMod {
                    a: t.into(),
                    b: inc.into(),
                    q: Operand::Const(ctx.q),
                },
            );
            pseudo.push(p);
        }
        for (s, (&out, ctx)) in outs.iter().zip(&self.bc.dst.ctxs).enumerate() {
            let cross_row = &self.bc.cross[s * km1..(s + 1) * km1];
            let mut acc = Operand::Const(0);
            for (r, (&p, &cv)) in pseudo.iter().zip(cross_row).enumerate() {
                let dst = if r + 1 == km1 {
                    out
                } else {
                    kb.fresh("acc", Ty::UInt(64))
                };
                kb.push(
                    vec![dst],
                    Op::MulAddMod {
                        a: p.into(),
                        b: Operand::Const(cv),
                        c: acc,
                        q: Operand::Const(ctx.q),
                        mu: Operand::Const(ctx.mu),
                        mbits: ctx.mbits,
                    },
                );
                acc = dst.into();
            }
        }
        kb.build()
    }

    /// Generates (on first use) and returns the compiled all-rows chain kernel.
    fn mul_fused(&self) -> &Arc<CompiledKernel> {
        self.mul_kernel.get_or_init(|| {
            Arc::new(
                CompiledKernel::compile(&self.mul_fused_kernel_ir())
                    .expect("generated fused chain kernel compiles"),
            )
        })
    }

    /// The folded per-row factors `f_r = m_k^{-1}·(M⁻/m_r)^{-1} mod m_r` — the
    /// serialization view used by session snapshots.
    pub fn fused_factors(&self) -> &[u64] {
        &self.fused
    }

    /// Rebuilds a fused rescale-and-extend plan from its already-restored
    /// halves plus the folded factor table. The conversion half must be built
    /// over the rescale half's output basis, and each folded factor must equal
    /// `inv_last[r] · inv_punctured[r] mod m_r` exactly; anything else fails
    /// closed.
    pub fn from_parts(
        rescale: RescalePlan,
        bc: BaseConvPlan,
        fused: Vec<u64>,
    ) -> Result<Self, ConvRestoreError> {
        let km1 = rescale.out.moduli_count();
        if !bc.src_moduli.iter().copied().eq(rescale.out.moduli()) || fused.len() != km1 {
            return Err(ConvRestoreError::ShapeMismatch);
        }
        for (index, (((ctx, &inv_last), &ip), &f)) in rescale
            .out
            .ctxs
            .iter()
            .zip(&rescale.inv_last)
            .zip(&bc.inv_punctured)
            .zip(&fused)
            .enumerate()
        {
            if f != ctx.mul_mod(inv_last, ip) {
                return Err(ConvRestoreError::BadFusedFactor { index });
            }
        }
        Ok(RescaleExtendPlan {
            rescale,
            bc,
            fused,
            mul_kernel: OnceLock::new(),
        })
    }

    /// The unfused rescale half (whose output plan is the shortened basis).
    pub fn rescale_plan(&self) -> &RescalePlan {
        &self.rescale
    }

    /// The unfused conversion half (over the shortened basis).
    pub fn base_conv_plan(&self) -> &BaseConvPlan {
        &self.bc
    }

    /// The target plan the chain's results live over.
    pub fn dst_plan(&self) -> &RnsPlan {
        &self.bc.dst
    }

    /// Synthetic per-element operation counts of the fused path, for the cost
    /// model: one submod + mulmod (+ the rounding addmod) per surviving source
    /// row, one fused multiply-accumulate per (target row × source row), and one
    /// wide reduction (priced as a mulmod) per target row.
    pub fn fused_counts(&self) -> OpCounts {
        let km1 = self.fused.len() as u64;
        let l = self.bc.dst.moduli_count() as u64;
        let mut c = OpCounts::new();
        c.add_mnemonic("submod", km1);
        c.add_mnemonic("mulmod", km1 + l);
        c.add_mnemonic("addmod", km1);
        c.add_mnemonic("macmod", l * km1);
        c
    }

    /// Synthetic per-element operation counts of the two-pass path: the fused
    /// mix plus one extra modular multiplication per surviving source row (the
    /// separate pseudo-residue pass the fusion folds away).
    pub fn two_pass_counts(&self) -> OpCounts {
        let km1 = self.fused.len() as u64;
        let mut c = self.fused_counts();
        c.add_mnemonic("mulmod", km1);
        c
    }

    /// Decides, from the device cost model, whether the fused path is the
    /// cheaper way to run the chain over `cols` elements — the automatic
    /// selection sessions apply. Besides the arithmetic saving, the two-pass
    /// path writes and re-reads the whole intermediate rescaled matrix, which
    /// the memory term prices.
    pub fn fused_is_faster(&self, model: &CostModel, cols: usize) -> bool {
        let k = self.fused.len() as u64 + 1;
        let l = self.bc.dst.moduli_count() as u64;
        // Per-element global-memory traffic in words: both paths read the source
        // column and write the target column plus the pseudo-residue plane; the
        // two-pass path additionally writes and re-reads the rescaled column.
        let fused_bytes = 8 * (k + 2 * (k - 1) + l);
        let two_pass_bytes = fused_bytes + 8 * 2 * (k - 1);
        let cols = cols.max(1) as u64;
        let fused = model.estimate_launch(&self.fused_counts(), cols, fused_bytes);
        let two_pass = model.estimate_launch(&self.two_pass_counts(), cols, two_pass_bytes);
        fused.total <= two_pass.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::random::random_bits;
    use moma_bignum::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates `count` distinct primes of `bits` bits from a seeded rng
    /// (through the shared deterministic basis builder).
    fn primes(seed: u64, count: usize, bits: u32) -> Vec<u64> {
        RnsContext::with_random_primes(count, bits, seed)
            .moduli()
            .to_vec()
    }

    /// A mixed basis: narrow 31-bit primes interleaved with wide 40/52-bit ones.
    fn mixed_basis(seed: u64) -> Vec<u64> {
        let narrow = primes(seed, 2, 31);
        let wide = [primes(seed ^ 1, 1, 40), primes(seed ^ 2, 1, 52)].concat();
        vec![narrow[0], wide[0], narrow[1], wide[1]]
    }

    #[test]
    fn base_convert_matches_oracle_per_element() {
        let src_ctx = RnsContext::with_capacity_bits(200);
        let src = RnsPlan::new(&src_ctx);
        let dst_ctx = RnsContext::with_moduli(&primes(0xbc, 5, 31));
        let dst = RnsPlan::new(&dst_ctx);
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(0xba5e);
        let values: Vec<BigUint> = (0..17).map(|_| random_bits(&mut rng, 190)).collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (out, stats) = src.base_convert(&bc, &a);
        assert_eq!(out.row_count(), dst.moduli_count());
        assert_eq!(out.len(), values.len());
        assert_eq!(
            stats.threads,
            src.moduli_count() + dst.moduli_count(),
            "one thread per source row plus one per target row"
        );
        for (c, v) in values.iter().enumerate() {
            let oracle = src_ctx.base_convert(&dst_ctx, &src_ctx.to_residues(v));
            assert_eq!(out.element(c), oracle, "column {c}");
        }
    }

    #[test]
    fn base_convert_overshoot_is_a_small_multiple_of_the_source_product() {
        // Choose a target basis with enough headroom that x + αM reconstructs
        // exactly; then the overshoot α must be below the source basis size.
        let src = RnsPlan::new(&RnsContext::with_moduli_count(4));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x41, 7, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<BigUint> = (0..9)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (out, _) = src.base_convert(&bc, &a);
        for (c, v) in values.iter().enumerate() {
            let reconstructed = dst.to_biguints(&out)[c].clone();
            let excess = &reconstructed - v;
            let (alpha, rem) = excess.div_rem(src.product());
            assert!(
                rem.is_zero(),
                "column {c}: overshoot must be a multiple of M"
            );
            assert!(
                alpha.to_u64().unwrap() < src.moduli_count() as u64,
                "column {c}: α = {alpha:?} out of range"
            );
        }
    }

    #[test]
    fn base_convert_on_mixed_narrow_wide_bases_matches_oracle() {
        let src_ctx = RnsContext::with_moduli(&mixed_basis(0x51));
        let dst_ctx = RnsContext::with_moduli(&mixed_basis(0x99));
        let src = RnsPlan::new(&src_ctx);
        let dst = RnsPlan::new(&dst_ctx);
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(0x1117);
        let values: Vec<BigUint> = (0..11)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (out, _) = src.base_convert(&bc, &a);
        for (c, v) in values.iter().enumerate() {
            let oracle = src_ctx.base_convert(&dst_ctx, &src_ctx.to_residues(v));
            assert_eq!(out.element(c), oracle, "column {c}");
        }
    }

    #[test]
    fn compiled_base_convert_matches_rowwise_path() {
        let src = RnsPlan::new(&RnsContext::with_capacity_bits(160));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xcc, 4, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(0xc0);
        let values: Vec<BigUint> = (0..13).map(|_| random_bits(&mut rng, 150)).collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (plain, _) = src.base_convert(&bc, &a);
        let (compiled, stats) = src.base_convert_compiled(&bc, &a);
        assert_eq!(compiled, plain);
        assert_eq!(
            stats.threads,
            src.moduli_count() + dst.moduli_count() * values.len()
        );
    }

    #[test]
    fn mac_kernel_ir_is_fused_to_one_accumulation_loop() {
        let src = RnsPlan::new(&RnsContext::with_moduli_count(4));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x1f, 3, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        for s in 0..dst.moduli_count() {
            let fused = bc.mac_kernel_ir(s);
            moma_ir::validate::validate(&fused).expect("fused kernel validates");
            let counts = CompiledKernel::compile(&fused)
                .unwrap()
                .counts_per_element()
                .clone();
            assert_eq!(
                counts.get("macreduce"),
                src.moduli_count() as u64,
                "row {s}: one accumulation term per source modulus"
            );
            assert_eq!(
                counts.get("reducewide"),
                1,
                "row {s}: one deferred reduction"
            );
            assert_eq!(
                counts.get("macmod"),
                0,
                "row {s}: no per-term Barrett reductions left"
            );
            // The unfused oracle is still the naive chain.
            let chain = CompiledKernel::compile(&bc.mac_kernel_ir_unfused(s)).unwrap();
            assert_eq!(
                chain.counts_per_element().get("macmod"),
                src.moduli_count() as u64
            );
        }
    }

    #[test]
    fn fused_kernel_collapses_the_whole_conversion() {
        let src = RnsPlan::new(&RnsContext::with_moduli_count(4));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x2e, 5, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let kernel = bc.fused_kernel_ir();
        moma_ir::validate::validate(&kernel).expect("fused conversion kernel validates");
        let (k, l) = (src.moduli_count() as u64, dst.moduli_count() as u64);
        let counts = CompiledKernel::compile(&kernel)
            .unwrap()
            .counts_per_element()
            .clone();
        // k single-term loops (the pseudo-residue multiplications) plus one
        // k-term loop per target row; nothing survives unfused.
        assert_eq!(counts.get("macreduce"), k + l * k);
        assert_eq!(counts.get("reducewide"), k + l);
        assert_eq!(counts.get("mulmod"), 0);
        assert_eq!(counts.get("macmod"), 0);
    }

    #[test]
    fn fused_base_convert_matches_direct_in_one_launch() {
        let src_ctx = RnsContext::with_moduli(&mixed_basis(0x51));
        let dst_ctx = RnsContext::with_moduli(&mixed_basis(0x99));
        let src = RnsPlan::new(&src_ctx);
        let dst = RnsPlan::new(&dst_ctx);
        let bc = BaseConvPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(0xf00d);
        let values: Vec<BigUint> = (0..23)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (direct, direct_stats) = src.base_convert(&bc, &a);
        let (fused, fused_stats) = src.base_convert_fused(&bc, &a);
        assert_eq!(fused, direct, "fusion must not change a single bit");
        assert_eq!(direct_stats.launches, 2);
        assert_eq!(
            fused_stats.launches, 1,
            "the whole conversion is one launch"
        );
        assert_eq!(fused_stats.threads, values.len(), "one thread per element");
        // And per element against the BigUint oracle.
        for (c, v) in values.iter().enumerate() {
            let oracle = src_ctx.base_convert(&dst_ctx, &src_ctx.to_residues(v));
            assert_eq!(fused.element(c), oracle, "column {c}");
        }
        // Empty batches short-circuit.
        let empty = RnsMatrix::from_biguints(&src, &[]);
        let (out, stats) = src.base_convert_fused(&bc, &empty);
        assert!(out.is_empty());
        assert_eq!(stats.launches, 0);
    }

    #[test]
    #[should_panic(expected = "kernel shape")]
    fn fused_base_convert_rejects_a_mismatched_kernel() {
        let src = RnsPlan::new(&RnsContext::with_moduli_count(3));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x7a, 3, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let wrong = CompiledKernel::compile(&bc.mac_kernel_ir(0)).unwrap();
        let a = RnsMatrix::from_biguints(&src, &[BigUint::one()]);
        src.base_convert_fused_with(&bc, &a, &wrong);
    }

    #[test]
    fn scale_and_round_matches_oracle_and_stays_within_one() {
        let ctx = RnsContext::with_moduli_count(5);
        let plan = RnsPlan::new(&ctx);
        let rp = plan.rescale_plan();
        let mut rng = StdRng::seed_from_u64(0x5ca1e);
        let values: Vec<BigUint> = (0..15)
            .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (out, stats) = plan.scale_and_round(&rp, &a);
        assert_eq!(out.row_count(), plan.moduli_count() - 1);
        assert_eq!(stats.threads, plan.moduli_count() - 1);
        let last = BigUint::from(*ctx.moduli().last().unwrap());
        for (c, v) in values.iter().enumerate() {
            let oracle = ctx.scale_and_round(&ctx.to_residues(v));
            assert_eq!(out.element(c), oracle, "column {c}");
            // Semantics: the reconstructed quotient is within one of v / m_k
            // (both sides exact integers, so compare v − y·m_k against m_k).
            let y = rp.output_plan().to_biguints(&out)[c].clone();
            let scaled = &y * &last;
            let distance = if scaled >= *v {
                &scaled - v
            } else {
                v - &scaled
            };
            assert!(distance <= last, "column {c}: |y·m_k − v| must be ≤ m_k");
        }
    }

    #[test]
    fn scale_and_round_on_mixed_basis_matches_oracle() {
        let ctx = RnsContext::with_moduli(&mixed_basis(0x77));
        let plan = RnsPlan::new(&ctx);
        let rp = plan.rescale_plan();
        let mut rng = StdRng::seed_from_u64(0x700);
        let values: Vec<BigUint> = (0..9)
            .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (out, _) = plan.scale_and_round(&rp, &a);
        for (c, v) in values.iter().enumerate() {
            assert_eq!(
                out.element(c),
                ctx.scale_and_round(&ctx.to_residues(v)),
                "column {c}"
            );
        }
    }

    #[test]
    fn rescale_then_convert_chains_across_bases() {
        // The FHE-style chain: rescale to drop a modulus, then base-extend the
        // result into a fresh basis — every intermediate checked by oracle.
        let ctx = RnsContext::with_moduli_count(4);
        let plan = RnsPlan::new(&ctx);
        let rp = plan.rescale_plan();
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xf00, 4, 31)));
        let bc = BaseConvPlan::new(rp.output_plan(), &dst);
        let mut rng = StdRng::seed_from_u64(0xc11a);
        let values: Vec<BigUint> = (0..6)
            .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (rescaled, _) = plan.scale_and_round(&rp, &a);
        let (extended, _) = rp.output_plan().base_convert(&bc, &rescaled);
        let out_ctx = ctx.without_last();
        let dst_ctx = RnsContext::with_moduli(&primes(0xf00, 4, 31));
        for (c, v) in values.iter().enumerate() {
            let oracle_rescaled = ctx.scale_and_round(&ctx.to_residues(v));
            let oracle_extended = out_ctx.base_convert(&dst_ctx, &oracle_rescaled);
            assert_eq!(extended.element(c), oracle_extended, "column {c}");
        }
    }

    #[test]
    fn fused_rescale_extend_matches_the_two_pass_chain_bit_for_bit() {
        let ctx = RnsContext::with_moduli_count(5);
        let plan = RnsPlan::new(&ctx);
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xfe, 5, 31)));
        let p = plan.rescale_extend_plan(&dst);
        let mut rng = StdRng::seed_from_u64(0xf5ed);
        let values: Vec<BigUint> = (0..21)
            .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (fused, fused_stats) = plan.rescale_then_extend(&p, &a);
        let (two_pass, two_pass_stats) = plan.rescale_then_extend_two_pass(&p, &a);
        assert_eq!(fused, two_pass, "fusion must not change a single bit");
        // The fusion saves one whole launch round (the separate rescale pass).
        assert_eq!(fused_stats.launches, 2);
        assert_eq!(two_pass_stats.launches, 3);
        assert_eq!(
            fused_stats.threads + plan.moduli_count() - 1,
            two_pass_stats.threads
        );
        // And matches the BigUint oracle chain per element.
        let out_ctx = ctx.without_last();
        let dst_ctx = RnsContext::with_moduli(&primes(0xfe, 5, 31));
        for (c, v) in values.iter().enumerate() {
            let oracle = out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(v)));
            assert_eq!(fused.element(c), oracle, "column {c}");
        }
    }

    #[test]
    fn fused_rescale_extend_on_mixed_bases_matches_oracle() {
        let ctx = RnsContext::with_moduli(&mixed_basis(0x3a));
        let plan = RnsPlan::new(&ctx);
        let dst_moduli = mixed_basis(0x2b);
        let dst = RnsPlan::new(&RnsContext::with_moduli(&dst_moduli));
        let p = plan.rescale_extend_plan(&dst);
        let mut rng = StdRng::seed_from_u64(0x31bb);
        let values: Vec<BigUint> = (0..13)
            .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&plan, &values);
        let (fused, _) = plan.rescale_then_extend(&p, &a);
        let out_ctx = ctx.without_last();
        let dst_ctx = RnsContext::with_moduli(&dst_moduli);
        for (c, v) in values.iter().enumerate() {
            let oracle = out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(v)));
            assert_eq!(fused.element(c), oracle, "column {c}");
        }
    }

    #[test]
    fn fused_mul_rescale_extend_collapses_the_whole_chain() {
        let ctx = RnsContext::with_moduli(&mixed_basis(0x47));
        let plan = RnsPlan::new(&ctx);
        let dst = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(0x58)));
        let p = plan.rescale_extend_plan(&dst);
        let kernel = p.mul_fused_kernel_ir();
        moma_ir::validate::validate(&kernel).expect("fused chain kernel validates");
        let counts = CompiledKernel::compile(&kernel)
            .unwrap()
            .counts_per_element()
            .clone();
        let (k, l) = (plan.moduli_count() as u64, dst.moduli_count() as u64);
        let km1 = k - 1;
        // k single-pair loops (the products), a single-pair fold plus a
        // two-pair pseudo-residue loop per surviving row, one (k−1)-pair loop
        // per target row; no Barrett multiplication survives unfused.
        assert_eq!(counts.get("macreduce"), k + 3 * km1 + l * km1);
        assert_eq!(counts.get("reducewide"), k + 2 * km1 + l);
        assert_eq!(counts.get("submod"), km1);
        assert_eq!(counts.get("mulmod"), 0);
        assert_eq!(counts.get("macmod"), 0);
    }

    #[test]
    fn fused_mul_rescale_extend_matches_the_unfused_chain_in_one_launch() {
        let ctx = RnsContext::with_moduli(&mixed_basis(0x47));
        let plan = RnsPlan::new(&ctx);
        let dst = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(0x58)));
        let p = plan.rescale_extend_plan(&dst);
        let mut rng = StdRng::seed_from_u64(0x90ab);
        let mut draw = |n: usize| -> Vec<BigUint> {
            (0..n)
                .map(|_| moma_bignum::random::random_below(&mut rng, plan.product()))
                .collect()
        };
        let (va, vb) = (draw(17), draw(17));
        let a = RnsMatrix::from_biguints(&plan, &va);
        let b = RnsMatrix::from_biguints(&plan, &vb);
        let prod = plan.mul(&a, &b);
        let (unfused, chain_stats) = plan.rescale_then_extend(&p, &prod);
        let (fused, stats) = plan.mul_rescale_then_extend_fused(&p, &a, &b);
        assert_eq!(fused, unfused, "fusion must not change a single bit");
        // mul (1 launch) + rescale_then_extend (2) vs the whole chain in one.
        assert_eq!(chain_stats.launches, 2);
        assert_eq!(stats.launches, 1, "the whole chain is one launch");
        assert_eq!(stats.threads, va.len(), "one thread per element");
        // Empty batches short-circuit.
        let empty = RnsMatrix::from_biguints(&plan, &[]);
        let (out, stats) = plan.mul_rescale_then_extend_fused(&p, &empty, &empty);
        assert!(out.is_empty());
        assert_eq!(stats.launches, 0);
    }

    #[test]
    fn fused_path_is_priced_cheaper_by_the_cost_model() {
        let plan = RnsPlan::new(&RnsContext::with_moduli_count(6));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x9, 6, 31)));
        let p = plan.rescale_extend_plan(&dst);
        assert!(p.fused_counts().total() < p.two_pass_counts().total());
        let model = CostModel::new(moma_gpu::DeviceSpec::H100);
        assert!(p.fused_is_faster(&model, 4096));
    }

    #[test]
    fn compiled_base_convert_accepts_external_kernels() {
        let src = RnsPlan::new(&RnsContext::with_moduli_count(4));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0x77, 3, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let kernels: Vec<Arc<CompiledKernel>> = (0..dst.moduli_count())
            .map(|s| Arc::new(CompiledKernel::compile(&bc.mac_kernel_ir(s)).unwrap()))
            .collect();
        let mut rng = StdRng::seed_from_u64(0xeeee);
        let values: Vec<BigUint> = (0..7)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        let a = RnsMatrix::from_biguints(&src, &values);
        let (internal, _) = src.base_convert_compiled(&bc, &a);
        let (external, _) = src.base_convert_compiled_with(&bc, &a, &kernels);
        assert_eq!(internal, external);
    }

    #[test]
    fn empty_matrices_are_fine() {
        let src = RnsPlan::new(&RnsContext::with_moduli_count(3));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xe, 3, 31)));
        let bc = BaseConvPlan::new(&src, &dst);
        let empty = RnsMatrix::from_biguints(&src, &[]);
        assert!(src.base_convert(&bc, &empty).0.is_empty());
        assert!(src.base_convert_compiled(&bc, &empty).0.is_empty());
        let rp = src.rescale_plan();
        assert!(src.scale_and_round(&rp, &empty).0.is_empty());
    }

    #[test]
    #[should_panic(expected = "different source basis")]
    fn base_convert_rejects_mismatched_plan_pairing() {
        let a = RnsPlan::new(&RnsContext::with_moduli_count(3));
        let b = RnsPlan::new(&RnsContext::with_moduli_count(5));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xd, 3, 31)));
        let bc = BaseConvPlan::new(&a, &dst);
        let m = RnsMatrix::from_biguints(&b, &[BigUint::one()]);
        b.base_convert(&bc, &m);
    }

    #[test]
    fn oracle_base_convert_round_trips_when_target_covers_source() {
        // Values below M that convert into a larger basis reconstruct to
        // x + αM; reducing mod M recovers x — the RnsInt-level sanity check.
        let src = RnsContext::with_moduli_count(3);
        let dst = RnsContext::with_moduli(&primes(0xab, 6, 31));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let x = moma_bignum::random::random_below(&mut rng, src.product());
            let converted = src.base_convert(&dst, &src.to_residues(&x));
            let back = dst.from_residues(&converted);
            assert_eq!(&back % src.product(), x);
        }
    }

    /// A (source, fused-chain) pair plus a batch of values under the source
    /// product, shared by the restore and pooling tests.
    fn chain_fixture() -> (RnsPlan, RescaleExtendPlan, Vec<BigUint>) {
        let src = RnsPlan::new(&RnsContext::with_moduli(&mixed_basis(0x77)));
        let dst = RnsPlan::new(&RnsContext::with_moduli(&primes(0xd0, 5, 31)));
        let p = RescaleExtendPlan::new(&src, &dst);
        let mut rng = StdRng::seed_from_u64(0xf1f7);
        let values: Vec<BigUint> = (0..13)
            .map(|_| moma_bignum::random::random_below(&mut rng, src.product()))
            .collect();
        (src, p, values)
    }

    #[test]
    fn restore_constructors_roundtrip_bit_for_bit() {
        let (src, p, values) = chain_fixture();
        let a = RnsMatrix::from_biguints(&src, &values);

        // BaseConvPlan: tables out, tables back in, identical results.
        let (ip, cross) = p.bc.conversion_tables();
        let bc2 = BaseConvPlan::from_tables(&p.rescale.out, &p.bc.dst, ip.to_vec(), cross.to_vec())
            .expect("fresh conversion tables restore");
        assert_eq!(bc2.source_moduli(), p.bc.source_moduli());
        assert_eq!(bc2.conversion_tables(), p.bc.conversion_tables());

        // RescalePlan.
        let rp2 = RescalePlan::from_tables(&src, p.rescale.out.clone(), p.rescale.inv_last.clone())
            .expect("fresh rescale tables restore");
        assert_eq!(rp2.inverse_table(), p.rescale.inverse_table());

        // RescaleExtendPlan from the two restored halves: the rebuilt chain
        // computes bit-for-bit what the freshly built one does.
        let p2 = RescaleExtendPlan::from_parts(rp2, bc2, p.fused_factors().to_vec())
            .expect("fresh fused factors restore");
        assert_eq!(p2.fused_factors(), p.fused_factors());
        let (fresh, _) = src.rescale_then_extend(&p, &a);
        let (restored, _) = src.rescale_then_extend(&p2, &a);
        assert_eq!(restored, fresh);
    }

    #[test]
    fn restore_constructors_fail_closed() {
        let (src, p, _) = chain_fixture();
        let out = &p.rescale.out;
        let dst = &p.bc.dst;
        let (ip, cross) = p.bc.conversion_tables();

        // BaseConvPlan: truncated tables, flipped pseudo factor, flipped cross word.
        assert!(matches!(
            BaseConvPlan::from_tables(out, dst, ip[1..].to_vec(), cross.to_vec()),
            Err(ConvRestoreError::ShapeMismatch)
        ));
        let mut bad_ip = ip.to_vec();
        bad_ip[2] ^= 1;
        assert!(matches!(
            BaseConvPlan::from_tables(out, dst, bad_ip, cross.to_vec()),
            Err(ConvRestoreError::BadPseudoFactor { index: 2 })
        ));
        let mut bad_cross = cross.to_vec();
        bad_cross[4] ^= 1;
        assert!(matches!(
            BaseConvPlan::from_tables(out, dst, ip.to_vec(), bad_cross),
            Err(ConvRestoreError::BadCrossTable { index: 4 })
        ));

        // RescalePlan: flipped inverse, wrong output basis, short table.
        let mut bad_inv = p.rescale.inv_last.clone();
        bad_inv[0] ^= 1;
        assert!(matches!(
            RescalePlan::from_tables(&src, out.clone(), bad_inv),
            Err(ConvRestoreError::BadInverse { index: 0 })
        ));
        assert!(matches!(
            RescalePlan::from_tables(&src, dst.clone(), p.rescale.inv_last.clone()),
            Err(ConvRestoreError::ShapeMismatch)
        ));
        assert!(matches!(
            RescalePlan::from_tables(&src, out.clone(), p.rescale.inv_last[1..].to_vec()),
            Err(ConvRestoreError::ShapeMismatch)
        ));

        // RescaleExtendPlan: flipped fused factor, conversion half over the
        // wrong basis.
        let rp = RescalePlan::new(&src);
        let bc = BaseConvPlan::new(out, dst);
        let mut bad_fused = p.fused_factors().to_vec();
        bad_fused[1] ^= 1;
        assert!(matches!(
            RescaleExtendPlan::from_parts(rp, bc, bad_fused),
            Err(ConvRestoreError::BadFusedFactor { index: 1 })
        ));
        let rp = RescalePlan::new(&src);
        let wrong_bc = BaseConvPlan::new(&src, dst);
        assert!(matches!(
            RescaleExtendPlan::from_parts(rp, wrong_bc, p.fused_factors().to_vec()),
            Err(ConvRestoreError::ShapeMismatch)
        ));
    }

    #[test]
    fn pooled_conversion_chain_matches_heap_and_goes_allocation_free() {
        let (src, p, values) = chain_fixture();
        let pool = moma_gpu::BufferPool::new();
        let a = RnsMatrix::from_biguints(&src, &values);

        // Heap references (and their advertised plane allocations).
        let (heap_sr, sr_stats) = src.scale_and_round(&p.rescale, &a);
        assert_eq!(sr_stats.allocs, 1);
        let (heap_bc, bc_stats) = p.rescale.out.base_convert(&p.bc, &heap_sr);
        assert_eq!(bc_stats.allocs, 2, "output plane plus pseudo plane");
        let (heap_fused, fused_stats) = src.rescale_then_extend(&p, &a);
        assert_eq!(fused_stats.allocs, 2);
        let (heap_two_pass, _) = src.rescale_then_extend_two_pass(&p, &a);
        assert_eq!(heap_two_pass, heap_bc);

        // Warm the pool with one cold round shaped exactly like the steady
        // state — all four results held concurrently — so the shelves end up
        // with enough resident planes for the peak demand.
        {
            let (mut sr, _) = src.scale_and_round_pooled(&p.rescale, &a, &pool);
            let (mut bc, _) = p.rescale.out.base_convert_pooled(&p.bc, &sr, &pool);
            let (mut fused, _) = src.rescale_then_extend_pooled(&p, &a, &pool);
            let (mut two, _) = src.rescale_then_extend_two_pass_pooled(&p, &a, &pool);
            pool.recycle(sr.take_storage());
            pool.recycle(bc.take_storage());
            pool.recycle(fused.take_storage());
            pool.recycle(two.take_storage());
        }

        // Steady state: bit-identical to the heap path, zero pool misses.
        for round in 0..4 {
            let before = pool.misses();
            let (mut sr, sr_stats) = src.scale_and_round_pooled(&p.rescale, &a, &pool);
            let (mut bc, bc_stats) = p.rescale.out.base_convert_pooled(&p.bc, &sr, &pool);
            let (mut fused, fused_stats) = src.rescale_then_extend_pooled(&p, &a, &pool);
            let (mut two, two_stats) = src.rescale_then_extend_two_pass_pooled(&p, &a, &pool);
            assert_eq!(sr, heap_sr, "round {round}");
            assert_eq!(bc, heap_bc, "round {round}");
            assert_eq!(fused, heap_fused, "round {round}");
            assert_eq!(two, heap_two_pass, "round {round}");
            assert_eq!(sr_stats.allocs, 0, "round {round}");
            assert_eq!(bc_stats.allocs, 0, "round {round}");
            assert_eq!(fused_stats.allocs, 0, "round {round}");
            assert_eq!(two_stats.allocs, 0, "round {round}");
            assert_eq!(pool.misses(), before, "round {round} never missed");
            pool.recycle(sr.take_storage());
            pool.recycle(bc.take_storage());
            pool.recycle(fused.take_storage());
            pool.recycle(two.take_storage());
        }
    }
}
