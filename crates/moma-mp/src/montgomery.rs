//! Multi-word Montgomery multiplication.
//!
//! The paper uses Barrett reduction for its `k − 4`-bit moduli but notes (§5.2) that the
//! infrastructure "also supports a modulus of full bit-width, employing Montgomery
//! multiplication". This module provides that path: CIOS (coarsely integrated operand
//! scanning) Montgomery multiplication for odd moduli of up to the full `64·L` bits.

use crate::MpUint;

/// Precomputed Montgomery parameters for an odd modulus `q`.
///
/// Values are kept in Montgomery form `aR mod q` with `R = 2^(64·L)`; use
/// [`MontgomeryContext::to_mont`] / [`MontgomeryContext::from_mont`] at the boundary.
///
/// # Example
///
/// ```
/// use moma_mp::{MontgomeryContext, U256};
///
/// // A full-width 255-bit modulus (2^255 - 19, the Curve25519 prime).
/// let q = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed");
/// let ctx = MontgomeryContext::new(q);
/// let a = U256::from_u64(3);
/// let b = U256::from_u64(7);
/// let am = ctx.to_mont(a);
/// let bm = ctx.to_mont(b);
/// assert_eq!(ctx.from_mont(ctx.mul_mont(am, bm)), U256::from_u64(21));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryContext<const L: usize> {
    /// The modulus `q` (odd).
    pub q: MpUint<L>,
    /// `-q^{-1} mod 2^64`, the per-limb reduction factor.
    pub n0_inv: u64,
    /// `R^2 mod q`, used to convert into Montgomery form.
    pub r2: MpUint<L>,
}

impl<const L: usize> MontgomeryContext<L> {
    /// Creates a context for the odd modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even or less than 3.
    pub fn new(q: MpUint<L>) -> Self {
        assert!(
            q.is_odd(),
            "Montgomery multiplication requires an odd modulus"
        );
        assert!(q > MpUint::from_u64(2), "modulus must be at least 3");
        let n0_inv = inv_mod_2_64(q.limbs()[0]).wrapping_neg();
        // r2 = (2^(64L))^2 mod q computed by repeated doubling: start from
        // r = 2^(64L) mod q obtained via 64L doublings of 1, then 64L more doublings.
        let mut r = mod_reduce_once(MpUint::<L>::ONE, &q);
        for _ in 0..(128 * L) {
            r = double_mod(r, &q);
        }
        MontgomeryContext { q, n0_inv, r2: r }
    }

    /// Converts into Montgomery form: `a·R mod q`.
    pub fn to_mont(&self, a: MpUint<L>) -> MpUint<L> {
        self.mul_mont(a, self.r2)
    }

    /// Converts out of Montgomery form: `a·R^{-1} mod q`.
    pub fn from_mont(&self, a: MpUint<L>) -> MpUint<L> {
        self.mul_mont(a, MpUint::ONE)
    }

    /// Montgomery product `a·b·R^{-1} mod q` (CIOS).
    #[allow(clippy::needless_range_loop)] // CIOS walks limb arrays by index, as in the literature
    pub fn mul_mont(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        let q = self.q.limbs();
        let a = a.limbs();
        let b = b.limbs();
        // Accumulator with two extra limbs.
        let mut t = vec![0u64; L + 2];
        for i in 0..L {
            // t += a[i] * b
            let mut carry = 0u64;
            for j in 0..L {
                let s = t[j] as u128 + a[i] as u128 * b[j] as u128 + carry as u128;
                t[j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[L] as u128 + carry as u128;
            t[L] = s as u64;
            t[L + 1] = (s >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64 ; t += m * q ; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * q[0] as u128;
            let mut carry = (s >> 64) as u64;
            for j in 1..L {
                let s = t[j] as u128 + m as u128 * q[j] as u128 + carry as u128;
                t[j - 1] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[L] as u128 + carry as u128;
            t[L - 1] = s as u64;
            t[L] = t[L + 1] + ((s >> 64) as u64);
            t[L + 1] = 0;
        }
        let mut out = [0u64; L];
        out.copy_from_slice(&t[..L]);
        let result = MpUint::from_limbs(out);
        // Final conditional subtraction: t < 2q at this point.
        if t[L] != 0 || result >= self.q {
            result.wrapping_sub(&self.q)
        } else {
            result
        }
    }

    /// Full modular multiplication `(a·b) mod q` for values *not* in Montgomery form
    /// (converts in, multiplies, converts out). Handy for one-off products.
    pub fn mul_mod(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(self.mul_mont(am, bm))
    }
}

/// Inverse of an odd `x` modulo 2^64 by Newton iteration.
fn inv_mod_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

/// Reduces a value already known to be `< 2q` into `[0, q)`.
fn mod_reduce_once<const L: usize>(x: MpUint<L>, q: &MpUint<L>) -> MpUint<L> {
    if x >= *q {
        x.wrapping_sub(q)
    } else {
        x
    }
}

/// Doubles a reduced value modulo `q`.
fn double_mod<const L: usize>(x: MpUint<L>, q: &MpUint<L>) -> MpUint<L> {
    let (d, carry) = x.overflowing_add(&x);
    if carry || d >= *q {
        d.wrapping_sub(q)
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{U128, U256};

    #[test]
    fn limb_inverse() {
        for x in [1u64, 3, 0xdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_mod_2_64(x)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryContext::new(U128::from_u64(100));
    }

    #[test]
    fn small_values_round_trip() {
        // Full-width 128-bit odd modulus.
        let q = U128::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryContext::new(q);
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            let x = U128::from_u64(v);
            assert_eq!(ctx.from_mont(ctx.to_mont(x)), x, "v = {v}");
        }
    }

    #[test]
    fn multiplication_matches_small_cases() {
        let q = U128::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryContext::new(q);
        let a = U128::from_u64(0xdeadbeef);
        let b = U128::from_u64(0xcafebabe);
        assert_eq!(
            ctx.mul_mod(a, b),
            U128::from_u128(0xdeadbeefu128 * 0xcafebabeu128)
        );
    }

    #[test]
    fn fermat_on_curve25519_prime() {
        let q = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed");
        let ctx = MontgomeryContext::new(q);
        // a^(q-1) = 1 via repeated Montgomery squaring.
        let a = ctx.to_mont(U256::from_hex("123456789abcdef0123456789abcdef0"));
        let exp = q.wrapping_sub(&U256::ONE);
        let mut result = ctx.to_mont(U256::ONE);
        for i in (0..exp.bits()).rev() {
            result = ctx.mul_mont(result, result);
            if exp.bit(i) {
                result = ctx.mul_mont(result, a);
            }
        }
        assert_eq!(ctx.from_mont(result), U256::ONE);
    }

    #[test]
    fn wraparound_operands() {
        let q = U128::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryContext::new(q);
        let a = q.wrapping_sub(&U128::ONE);
        // (q-1)^2 mod q = 1
        assert_eq!(ctx.mul_mod(a, a), U128::ONE);
    }
}
