//! The fixed-width multi-word unsigned integer type [`MpUint`].

use std::cmp::Ordering;
use std::fmt;

/// A fixed-width unsigned integer stored as `L` 64-bit limbs (little-endian).
///
/// This is the runtime representation of the paper's multi-word values
/// `x = [x_0^{ω0}, ..., x_{k-1}^{ω0}]` (Equation 14): for machine word width ω₀ = 64
/// a `λ`-bit input uses `L = λ / 64` limbs. The paper lists digits most-significant
/// first; we store limbs least-significant first and convert at the boundary
/// ([`MpUint::from_limbs_be`] / [`MpUint::to_limbs_be`]).
///
/// # Example
///
/// ```
/// use moma_mp::U256;
///
/// let a = U256::from_u64(1) << 200;
/// let b = U256::from_u64(12345);
/// assert_eq!((a | b).to_hex(), format!("1{}3039", "0".repeat(46)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpUint<const L: usize> {
    pub(crate) limbs: [u64; L],
}

/// 64-bit value (one limb) — the machine word itself.
pub type U64 = MpUint<1>;
/// 128-bit value (two limbs).
pub type U128 = MpUint<2>;
/// 192-bit value (three limbs).
pub type U192 = MpUint<3>;
/// 256-bit value (four limbs).
pub type U256 = MpUint<4>;
/// 320-bit value (five limbs).
pub type U320 = MpUint<5>;
/// 384-bit value (six limbs).
pub type U384 = MpUint<6>;
/// 448-bit value (seven limbs).
pub type U448 = MpUint<7>;
/// 512-bit value (eight limbs).
pub type U512 = MpUint<8>;
/// 576-bit value (nine limbs).
pub type U576 = MpUint<9>;
/// 640-bit value (ten limbs).
pub type U640 = MpUint<10>;
/// 768-bit value (twelve limbs).
pub type U768 = MpUint<12>;
/// 1,024-bit value (sixteen limbs).
pub type U1024 = MpUint<16>;

impl<const L: usize> MpUint<L> {
    /// The value zero.
    pub const ZERO: Self = MpUint { limbs: [0; L] };
    /// The value one.
    pub const ONE: Self = {
        let mut limbs = [0u64; L];
        limbs[0] = 1;
        MpUint { limbs }
    };
    /// The largest representable value, `2^(64·L) − 1`.
    pub const MAX: Self = MpUint {
        limbs: [u64::MAX; L],
    };
    /// The width of the type in bits.
    pub const BITS: u32 = 64 * L as u32;

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; L];
        limbs[0] = v;
        MpUint { limbs }
    }

    /// Creates a value from a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if `L == 1` and the value does not fit in 64 bits.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = [0u64; L];
        limbs[0] = v as u64;
        let hi = (v >> 64) as u64;
        if L > 1 {
            limbs[1] = hi;
        } else {
            assert_eq!(hi, 0, "value does not fit in 64 bits");
        }
        MpUint { limbs }
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        MpUint { limbs }
    }

    /// Creates a value from a little-endian limb slice, zero-extending.
    ///
    /// # Panics
    ///
    /// Panics if the slice has more than `L` significant limbs.
    pub fn from_limbs_le(slice: &[u64]) -> Self {
        let mut limbs = [0u64; L];
        for (i, &l) in slice.iter().enumerate() {
            if i < L {
                limbs[i] = l;
            } else {
                assert_eq!(l, 0, "value does not fit in {} limbs", L);
            }
        }
        MpUint { limbs }
    }

    /// Creates a value from big-endian limbs (the paper's notation order).
    pub fn from_limbs_be(slice: &[u64]) -> Self {
        let le: Vec<u64> = slice.iter().rev().copied().collect();
        Self::from_limbs_le(&le)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> &[u64; L] {
        &self.limbs
    }

    /// Returns the limbs in big-endian (paper) order.
    pub fn to_limbs_be(&self) -> [u64; L] {
        let mut out = self.limbs;
        out.reverse();
        out
    }

    /// Parses a hexadecimal string (no prefix).
    ///
    /// # Panics
    ///
    /// Panics if the string contains non-hex characters or does not fit in `L` limbs.
    pub fn from_hex(s: &str) -> Self {
        let mut limbs = [0u64; L];
        let bytes = s.as_bytes();
        let mut end = bytes.len();
        let mut i = 0;
        while end > 0 {
            let start = end.saturating_sub(16);
            let mut limb = 0u64;
            for c in s[start..end].chars() {
                limb = limb << 4 | c.to_digit(16).expect("invalid hex digit") as u64;
            }
            assert!(i < L || limb == 0, "hex value does not fit in {} limbs", L);
            if i < L {
                limbs[i] = limb;
            }
            i += 1;
            end = start;
        }
        MpUint { limbs }
    }

    /// Formats as a minimal-length lowercase hexadecimal string.
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        let mut started = false;
        for &l in self.limbs.iter().rev() {
            if started {
                s.push_str(&format!("{l:016x}"));
            } else if l != 0 {
                s.push_str(&format!("{l:x}"));
                started = true;
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return i as u32 * 64 + (64 - l.leading_zeros());
            }
        }
        0
    }

    /// Returns bit `i` (least significant bit is bit 0). Bits at or beyond the width
    /// read as `false`.
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= L {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Converts to `u64`, returning `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Converts to `u128`, returning `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 2 && self.limbs[2..].iter().any(|&l| l != 0) {
            None
        } else {
            let hi = if L > 1 { self.limbs[1] } else { 0 };
            Some(self.limbs[0] as u128 | (hi as u128) << 64)
        }
    }

    /// Widens into a larger limb count.
    ///
    /// # Panics
    ///
    /// Panics at compile time via `const` assertion if `M < L` semantics are violated at
    /// run time (the value must fit, which it always does when `M >= L`).
    pub fn widen<const M: usize>(&self) -> MpUint<M> {
        MpUint::<M>::from_limbs_le(&self.limbs)
    }

    /// Truncates (or zero-extends) into a different limb count, keeping the low limbs.
    pub fn resize<const M: usize>(&self) -> MpUint<M> {
        let mut limbs = [0u64; M];
        let n = M.min(L);
        limbs[..n].copy_from_slice(&self.limbs[..n]);
        MpUint { limbs }
    }
}

impl<const L: usize> Default for MpUint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> Ord for MpUint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const L: usize> PartialOrd for MpUint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> From<u64> for MpUint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl<const L: usize> fmt::Debug for MpUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MpUint<{}>(0x{})", L, self.to_hex())
    }
}

impl<const L: usize> fmt::Display for MpUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

impl<const L: usize> fmt::LowerHex for MpUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

impl<const L: usize> fmt::UpperHex for MpUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex().to_uppercase())
    }
}

impl<const L: usize> fmt::Binary for MpUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut started = false;
        for &l in self.limbs.iter().rev() {
            if started {
                s.push_str(&format!("{l:064b}"));
            } else if l != 0 {
                s.push_str(&format!("{l:b}"));
                started = true;
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_shapes() {
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ONE.to_u64(), Some(1));
        assert_eq!(U256::MAX.bits(), 256);
        assert_eq!(U128::BITS, 128);
    }

    #[test]
    fn hex_round_trip() {
        let s = "123456789abcdef0fedcba98765432100123456789abcdef";
        let x = U256::from_hex(s);
        assert_eq!(x.to_hex(), s);
        assert_eq!(U256::from_hex("0").to_hex(), "0");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_hex_overflow_panics() {
        let _ = U128::from_hex("1ffffffffffffffffffffffffffffffff");
    }

    #[test]
    fn limb_order_conversions() {
        let be = [1u64, 2, 3, 4]; // paper order: most significant first
        let x = U256::from_limbs_be(&be);
        assert_eq!(x.limbs(), &[4, 3, 2, 1]);
        assert_eq!(x.to_limbs_be(), be);
    }

    #[test]
    fn bits_and_bit() {
        let x = U256::from_u64(1) << 200;
        assert_eq!(x.bits(), 201);
        assert!(x.bit(200));
        assert!(!x.bit(199));
        assert!(!x.bit(1000));
        assert_eq!(U256::ZERO.bits(), 0);
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_u64(1) << 128;
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn conversions_to_primitives() {
        assert_eq!(U256::from_u64(7).to_u64(), Some(7));
        assert_eq!((U256::from_u64(1) << 64).to_u64(), None);
        assert_eq!(U256::from_u128(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!((U256::from_u64(1) << 128).to_u128(), None);
    }

    #[test]
    fn widen_and_resize() {
        let x = U128::from_u128(u128::MAX);
        let w: U256 = x.widen();
        assert_eq!(w.to_u128(), Some(u128::MAX));
        let t: U128 = (U256::MAX).resize();
        assert_eq!(t, U128::MAX);
    }

    #[test]
    fn formatting() {
        let x = U128::from_u64(255);
        assert_eq!(format!("{x}"), "ff");
        assert_eq!(format!("{x:#x}"), "0xff");
        assert_eq!(format!("{x:X}"), "FF");
        assert_eq!(format!("{:b}", U128::from_u64(5)), "101");
        assert_eq!(format!("{:?}", U128::ZERO), "MpUint<2>(0x0)");
    }
}
