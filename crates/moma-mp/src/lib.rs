//! Fixed-width multi-word integers and multi-word modular arithmetic.
//!
//! This crate is the *runtime library* of the reproduction: it implements, as native
//! Rust, exactly the word-level algorithms that the MoMA rewrite system generates —
//! the single-word kernels of the paper's Listing 1 ([`single`]), the multi-word
//! carry/borrow chains and schoolbook/Karatsuba products of Listings 2–3 ([`MpUint`],
//! [`karatsuba`]), and the multi-word Barrett modular multiplication of Listing 4
//! ([`BarrettContext`]), plus the Montgomery path the paper mentions for full-width
//! moduli ([`MontgomeryContext`]).
//!
//! Where the paper's tool chain emits CUDA that `nvcc` compiles for a GPU, this crate
//! is what that emitted code *computes*; the `moma-rewrite` crate generates the IR and
//! the cross-crate tests check that interpreting the generated code agrees limb-for-limb
//! with this library and with the `moma-bignum` oracle.
//!
//! # Example
//!
//! ```
//! use moma_mp::{BarrettContext, U256};
//!
//! // A 252-bit modulus (the paper's "k - 4 bits" convention for 256-bit kernels).
//! let q = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43");
//! let ctx = BarrettContext::new(q);
//! let a = ctx.reduce_full(U256::from_hex("123456789abcdef0123456789abcdef0"));
//! let b = ctx.reduce_full(U256::from_hex("fedcba9876543210fedcba9876543210"));
//! let c = ctx.mul_mod(a, b);
//! assert!(c < q);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod barrett;
pub mod karatsuba;
mod modring;
mod montgomery;
pub mod single;
mod uint;

pub use barrett::BarrettContext;
pub use modring::{ModRing, Reduction};
pub use montgomery::MontgomeryContext;
pub use uint::{MpUint, U1024, U128, U192, U256, U320, U384, U448, U512, U576, U64, U640, U768};

/// Choice of multi-word multiplication algorithm (the paper's §5.4 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MulAlgorithm {
    /// Schoolbook multiplication: 4 single-word multiplications and 6 additions per
    /// double-word product (paper Equation 8).
    #[default]
    Schoolbook,
    /// Karatsuba multiplication: 3 single-word multiplications and 12
    /// additions/subtractions per double-word product (paper Equation 9).
    Karatsuba,
}

/// Supported input bit-widths for the paper's evaluation (Figures 2–5).
pub const EVALUATED_BIT_WIDTHS: [u32; 8] = [128, 192, 256, 320, 384, 512, 768, 1024];

/// Returns the number of 64-bit limbs needed for a value of `bits` bits.
///
/// ```
/// assert_eq!(moma_mp::limbs_for_bits(128), 2);
/// assert_eq!(moma_mp::limbs_for_bits(381), 6);
/// ```
pub const fn limbs_for_bits(bits: u32) -> usize {
    bits.div_ceil(64) as usize
}
