//! Multi-word Barrett reduction — the runtime equivalent of the paper's Listing 4
//! generalized from double words to any number of limbs.
//!
//! For a modulus `q` of `m` bits (with `m ≤ 64·L − 4`, the paper's "modulus of bit-width
//! k − 4" convention), the precomputed constant is `μ = ⌊2^(2m+3) / q⌋` and
//!
//! ```text
//! t  = a·b                              (2L limbs)
//! r  = ((t >> (m−2)) · μ) >> (m+5)      (≈ ⌊t/q⌋, off by at most one)
//! c  = t − r·q                          (< 2q, one conditional subtraction)
//! ```

use crate::{MpUint, MulAlgorithm};

/// Precomputed Barrett parameters for a fixed multi-word modulus.
///
/// # Example
///
/// ```
/// use moma_mp::{BarrettContext, U256};
///
/// // A 252-bit modulus (256 − 4, as the paper uses k − 4 bit moduli for k-bit kernels).
/// let q = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43");
/// let ctx = BarrettContext::new(q);
/// let a = U256::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
/// let one = U256::ONE;
/// assert_eq!(ctx.mul_mod(a, one), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrettContext<const L: usize> {
    /// The modulus `q`.
    pub q: MpUint<L>,
    /// The Barrett constant `μ = ⌊2^(2·mbits+3) / q⌋`.
    pub mu: MpUint<L>,
    /// Significant bits of `q`.
    pub mbits: u32,
    /// Which multiplication algorithm the context uses for the three wide products.
    pub mul_algorithm: MulAlgorithm,
}

impl<const L: usize> BarrettContext<L> {
    /// Creates a context for modulus `q` using schoolbook multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q` has more than `64·L − 4` significant bits.
    pub fn new(q: MpUint<L>) -> Self {
        Self::with_algorithm(q, MulAlgorithm::Schoolbook)
    }

    /// Creates a context for modulus `q` with an explicit multiplication algorithm
    /// (the paper's Figure 5b ablation).
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q` has more than `64·L − 4` significant bits.
    pub fn with_algorithm(q: MpUint<L>, mul_algorithm: MulAlgorithm) -> Self {
        let mbits = q.bits();
        assert!(mbits >= 2, "modulus must be at least 2");
        assert!(
            mbits + 4 <= 64 * L as u32,
            "Barrett requires a modulus of at most {} bits for a {}-bit kernel (got {})",
            64 * L as u32 - 4,
            64 * L as u32,
            mbits
        );
        let mu = compute_mu(&q, mbits);
        BarrettContext {
            q,
            mu,
            mbits,
            mul_algorithm,
        }
    }

    /// `(a + b) mod q`. Inputs must already be reduced (debug-asserted).
    #[inline]
    pub fn add_mod(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        debug_assert!(a < self.q && b < self.q);
        // a + b < 2q < 2^(64L) because q has at most 64L-4 bits, so no carry-out.
        let sum = a.wrapping_add(&b);
        if sum >= self.q {
            sum.wrapping_sub(&self.q)
        } else {
            sum
        }
    }

    /// `(a - b) mod q`. Inputs must already be reduced (debug-asserted).
    #[inline]
    pub fn sub_mod(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        debug_assert!(a < self.q && b < self.q);
        let (diff, borrow) = a.overflowing_sub(&b);
        if borrow {
            diff.wrapping_add(&self.q)
        } else {
            diff
        }
    }

    /// `(a · b) mod q` via Barrett reduction. Inputs must already be reduced.
    #[inline]
    pub fn mul_mod(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        debug_assert!(a < self.q && b < self.q);
        let widening = |x: &MpUint<L>, y: &MpUint<L>| match self.mul_algorithm {
            MulAlgorithm::Schoolbook => x.widening_mul_schoolbook(y),
            MulAlgorithm::Karatsuba => x.widening_mul_karatsuba(y),
        };
        // t = a*b, as (lo, hi) limbs.
        let (t_lo, t_hi) = widening(&a, &b);
        // r1 = t >> (mbits - 2): fits in L limbs because t < q^2 < 2^(2*mbits).
        let r1 = shr_wide(&t_lo, &t_hi, self.mbits - 2);
        // r2 = (r1 * mu) >> (mbits + 5): fits in L limbs (it approximates floor(t/q) < q).
        let (p_lo, p_hi) = widening(&r1, &self.mu);
        let r2 = shr_wide(&p_lo, &p_hi, self.mbits + 5);
        // c = t - r2*q. Only the low L limbs are needed: the result is < 2q (paper's
        // "optimization given that the first half matches" in Listing 4).
        let r2q_lo = r2.wrapping_mul(&self.q);
        let mut c = t_lo.wrapping_sub(&r2q_lo);
        if c >= self.q {
            c = c.wrapping_sub(&self.q);
        }
        debug_assert!(c < self.q);
        c
    }

    /// Modular exponentiation by square-and-multiply (most significant bit first).
    pub fn pow_mod(&self, base: MpUint<L>, exp: &MpUint<L>) -> MpUint<L> {
        let mut result = MpUint::<L>::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = self.mul_mod(result, result);
            if exp.bit(i) {
                result = self.mul_mod(result, base);
            }
        }
        result
    }

    /// Modular inverse for prime `q` via Fermat's little theorem (`a^(q-2) mod q`).
    pub fn inv_mod(&self, a: MpUint<L>) -> MpUint<L> {
        let exp = self.q.wrapping_sub(&MpUint::from_u64(2));
        self.pow_mod(a, &exp)
    }

    /// Reduces an arbitrary (not necessarily reduced) value modulo `q` by repeated
    /// conditional subtraction of shifted multiples of `q` (binary long division).
    /// Used only at setup time (e.g. reducing constants), never on the hot path.
    pub fn reduce_full(&self, x: MpUint<L>) -> MpUint<L> {
        let mut x = x;
        let xbits = x.bits();
        if xbits <= self.mbits && x < self.q {
            return x;
        }
        let mut shift = xbits - self.mbits;
        loop {
            let shifted = self.q.shl_bits(shift);
            // Only subtract if the shifted modulus did not lose its top bits.
            if shifted.bits() == self.mbits + shift && shifted <= x {
                x = x.wrapping_sub(&shifted);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
        }
        debug_assert!(x < self.q);
        x
    }
}

/// Computes `μ = ⌊2^(2·mbits+3) / q⌋` using schoolbook long division on limbs.
///
/// The numerator has `2·mbits + 4` bits which can exceed `64·L`, so the division is done
/// over a `2L`-limb scratch value bit by bit (this is setup-time only).
fn compute_mu<const L: usize>(q: &MpUint<L>, mbits: u32) -> MpUint<L> {
    // Binary long division: numerator = 2^(2*mbits+3).
    let num_bits = 2 * mbits + 4; // numerator has this many bits (top bit at 2*mbits+3)
    let mut remainder = vec![0u64; 2 * L + 1];
    let mut quotient = vec![0u64; 2 * L + 1];
    for i in (0..num_bits).rev() {
        // remainder = remainder * 2 + bit_i(numerator)
        shl1_in_place(&mut remainder);
        if i == num_bits - 1 {
            remainder[0] |= 1;
        }
        // if remainder >= q { remainder -= q; quotient_bit = 1 }
        if slice_geq(&remainder, q.limbs()) {
            slice_sub(&mut remainder, q.limbs());
            let limb = (i / 64) as usize;
            quotient[limb] |= 1u64 << (i % 64);
        }
    }
    // mu must fit in L limbs: mu < 2^(mbits+4) <= 2^(64L). The only way it would not is
    // a power-of-two modulus, which is never a valid prime field modulus.
    assert!(
        quotient[L..].iter().all(|&l| l == 0),
        "Barrett constant overflows {} limbs (is the modulus a power of two?)",
        L
    );
    MpUint::from_limbs_le(&quotient[..L])
}

/// Right-shifts the 2L-limb value `(hi, lo)` by `bits` (< 128·L), keeping L limbs.
#[inline]
fn shr_wide<const L: usize>(lo: &MpUint<L>, hi: &MpUint<L>, bits: u32) -> MpUint<L> {
    let limb_shift = (bits / 64) as usize;
    let bit_shift = bits % 64;
    let get = |i: usize| -> u64 {
        if i < L {
            lo.limbs()[i]
        } else if i < 2 * L {
            hi.limbs()[i - L]
        } else {
            0
        }
    };
    let mut out = [0u64; L];
    for (i, slot) in out.iter_mut().enumerate() {
        let src = i + limb_shift;
        let mut v = get(src) >> bit_shift;
        if bit_shift > 0 {
            v |= get(src + 1) << (64 - bit_shift);
        }
        *slot = v;
    }
    MpUint::from_limbs(out)
}

fn shl1_in_place(v: &mut [u64]) {
    let mut carry = 0u64;
    for limb in v.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = *limb << 1 | carry;
        carry = new_carry;
    }
}

fn slice_geq(a: &[u64], b: &[u64]) -> bool {
    // a has at least as many limbs as b; treat missing b limbs as zero.
    for i in (0..a.len()).rev() {
        let bi = b.get(i).copied().unwrap_or(0);
        if a[i] != bi {
            return a[i] > bi;
        }
    }
    true
}

#[allow(clippy::needless_range_loop)] // borrow chain indexes two limb arrays in lockstep
fn slice_sub(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{U128, U256};

    /// The paper's 124-bit setting (Listing 4, `MBITS = 124`): q has 128 − 4 bits.
    fn q124() -> U128 {
        U128::from_hex("fffffffffffffffffffffffffffff61")
    }

    #[test]
    fn mu_matches_definition_for_small_modulus() {
        // For a single-limb-sized modulus we can cross-check mu against u128 division.
        let q = U128::from_u64(0x0fff_ffff_f000_0001);
        let ctx = BarrettContext::new(q);
        let mbits = 60;
        let expected = (1u128 << (2 * mbits + 3)) / 0x0fff_ffff_f000_0001u128;
        assert_eq!(ctx.mu.to_u128(), Some(expected));
        assert_eq!(ctx.mbits, 60);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_modulus_rejected() {
        let _ = BarrettContext::new(U128::MAX);
    }

    #[test]
    fn add_sub_mod() {
        let ctx = BarrettContext::new(q124());
        let a = ctx.reduce_full(U128::from_hex("deadbeefdeadbeefdeadbeefdeadbeef"));
        let b = ctx.reduce_full(U128::from_hex("cafebabecafebabecafebabecafebabe"));
        let s = ctx.add_mod(a, b);
        assert!(s < ctx.q);
        assert_eq!(ctx.sub_mod(s, b), a);
        assert_eq!(ctx.sub_mod(b, b), U128::ZERO);
        assert_eq!(
            ctx.sub_mod(U128::ZERO, U128::ONE),
            ctx.q.wrapping_sub(&U128::ONE)
        );
    }

    #[test]
    fn mul_mod_identity_and_zero() {
        let ctx = BarrettContext::new(q124());
        let a = ctx.reduce_full(U128::from_hex("123456789abcdef0fedcba9876543210"));
        assert_eq!(ctx.mul_mod(a, U128::ONE), a);
        assert_eq!(ctx.mul_mod(a, U128::ZERO), U128::ZERO);
    }

    #[test]
    fn mul_mod_against_u128_reference_modulus() {
        // Use a 124-bit modulus but operands small enough to verify with u128 splitting:
        // check (q-1)^2 mod q = 1.
        let ctx = BarrettContext::new(q124());
        let qm1 = ctx.q.wrapping_sub(&U128::ONE);
        assert_eq!(ctx.mul_mod(qm1, qm1), U128::ONE);
        // (q-1)*(q-2) mod q = 2
        let qm2 = ctx.q.wrapping_sub(&U128::from_u64(2));
        assert_eq!(ctx.mul_mod(qm1, qm2), U128::from_u64(2));
    }

    #[test]
    fn karatsuba_and_schoolbook_agree() {
        let q = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43");
        let sb = BarrettContext::with_algorithm(q, MulAlgorithm::Schoolbook);
        let ka = BarrettContext::with_algorithm(q, MulAlgorithm::Karatsuba);
        let mut state = 1u64;
        for _ in 0..50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let a = sb.reduce_full(U256::from_limbs([state, !state, state ^ 0xabc, state >> 3]));
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let b = sb.reduce_full(U256::from_limbs([!state, state, state ^ 0xdef, state >> 5]));
            assert_eq!(sb.mul_mod(a, b), ka.mul_mod(a, b));
        }
    }

    #[test]
    fn pow_mod_and_inverse() {
        // 2^127 - 1 is prime and has 127 = 128 - 1 bits; too wide for the k-4 rule at
        // L = 2, so use a 252-bit prime-like modulus at L = 4 instead: here we just use
        // Fermat on a known prime (2^127 - 1) embedded in U256.
        let q = U256::from_hex("7fffffffffffffffffffffffffffffff"); // 2^127 - 1
        let ctx = BarrettContext::new(q);
        let a = ctx.reduce_full(U256::from_hex("123456789abcdef0123456789abcdef"));
        let exp = q.wrapping_sub(&U256::ONE);
        assert_eq!(ctx.pow_mod(a, &exp), U256::ONE);
        let inv = ctx.inv_mod(a);
        assert_eq!(ctx.mul_mod(inv, a), U256::ONE);
    }

    #[test]
    fn reduce_full_handles_large_values() {
        let ctx = BarrettContext::new(q124());
        assert_eq!(ctx.reduce_full(U128::ZERO), U128::ZERO);
        assert_eq!(ctx.reduce_full(ctx.q), U128::ZERO);
        assert_eq!(ctx.reduce_full(ctx.q.wrapping_add(&U128::ONE)), U128::ONE);
        let x = U128::MAX;
        let r = ctx.reduce_full(x);
        assert!(r < ctx.q);
    }
}
