//! Core non-modular arithmetic on [`MpUint`]: carries, borrows, shifts, bitwise
//! operations, and widening multiplication.
//!
//! These routines are the runtime counterparts of the paper's multi-digit schoolbook
//! algorithms (Equations 6–8) with a 64-bit machine word as the digit. They are exactly
//! what the MoMA rewrite system's output computes once lowered to machine words — the
//! generated code and this library agree limb for limb, which the cross-crate
//! integration tests assert.

// Carry/borrow chains index several limb arrays in lockstep; indexed loops keep them
// shaped like the multi-digit algorithms they implement.
#![allow(clippy::needless_range_loop)]

use crate::MpUint;
use std::ops::{Add, BitAnd, BitOr, BitXor, Not, Shl, Shr, Sub};

impl<const L: usize> MpUint<L> {
    /// Adds with carry-out: returns `(self + rhs) mod 2^(64·L)` and the carry bit.
    ///
    /// This is rule (22)/(29) of the paper at runtime: a chain of 64-bit
    /// add-with-carry steps from the least significant limb upward.
    #[inline]
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in 0..L {
            let s = self.limbs[i] as u128 + rhs.limbs[i] as u128 + carry as u128;
            out[i] = s as u64;
            carry = (s >> 64) as u64;
        }
        (MpUint { limbs: out }, carry != 0)
    }

    /// Adds a carry bit (0 or 1) with carry-out.
    #[inline]
    pub fn add_carry_bit(&self, carry_in: bool) -> (Self, bool) {
        let mut out = self.limbs;
        let mut carry = carry_in as u64;
        for limb in out.iter_mut() {
            if carry == 0 {
                break;
            }
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
        }
        (MpUint { limbs: out }, carry != 0)
    }

    /// Wrapping addition (discards the final carry).
    #[inline]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Subtracts with borrow-out: returns `(self - rhs) mod 2^(64·L)` and the borrow bit.
    ///
    /// Runtime counterpart of rule (25): limb-wise subtract-with-borrow.
    #[inline]
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut borrow = 0u64;
        for i in 0..L {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (MpUint { limbs: out }, borrow != 0)
    }

    /// Wrapping subtraction (discards the final borrow).
    #[inline]
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction, `None` on underflow.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full schoolbook widening multiplication: returns `(lo, hi)` with
    /// `self · rhs = hi · 2^(64·L) + lo` (paper Equation 8 generalized to `L` digits).
    #[inline]
    pub fn widening_mul_schoolbook(&self, rhs: &Self) -> (Self, Self) {
        let mut out = [0u64; 64]; // scratch covers up to L = 32
        assert!(2 * L <= 64, "widening_mul supports at most 32 limbs");
        for i in 0..L {
            let mut carry = 0u64;
            let a = self.limbs[i];
            if a == 0 {
                continue;
            }
            for j in 0..L {
                let t = a as u128 * rhs.limbs[j] as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            out[i + L] = carry;
        }
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        lo.copy_from_slice(&out[..L]);
        hi.copy_from_slice(&out[L..2 * L]);
        (MpUint { limbs: lo }, MpUint { limbs: hi })
    }

    /// Widening multiplication using the Karatsuba algorithm (paper Equation 9) at the
    /// top level with schoolbook leaves. See [`crate::karatsuba`].
    #[inline]
    pub fn widening_mul_karatsuba(&self, rhs: &Self) -> (Self, Self) {
        let mut out = vec![0u64; 2 * L];
        crate::karatsuba::karatsuba_mul(&self.limbs, &rhs.limbs, &mut out);
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        lo.copy_from_slice(&out[..L]);
        hi.copy_from_slice(&out[L..]);
        (MpUint { limbs: lo }, MpUint { limbs: hi })
    }

    /// Widening multiplication with the default algorithm (schoolbook: at the paper's
    /// bit-widths it is the faster choice on 64-bit CPUs for up to ~6 limbs, and the
    /// cross-over is explored in the Figure 5b ablation).
    #[inline]
    pub fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        self.widening_mul_schoolbook(rhs)
    }

    /// Truncated (low half) multiplication: `(self · rhs) mod 2^(64·L)`.
    #[inline]
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            let mut carry = 0u64;
            let a = self.limbs[i];
            if a == 0 {
                continue;
            }
            for j in 0..L - i {
                let t = a as u128 * rhs.limbs[j] as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
        }
        MpUint { limbs: out }
    }

    /// Left shift by `bits` (bits shifted past the top are lost).
    pub fn shl_bits(&self, bits: u32) -> Self {
        if bits as usize >= 64 * L {
            return Self::ZERO;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = [0u64; L];
        for i in (0..L).rev() {
            if i < limb_shift {
                break;
            }
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        MpUint { limbs: out }
    }

    /// Logical right shift by `bits`.
    pub fn shr_bits(&self, bits: u32) -> Self {
        if bits as usize >= 64 * L {
            return Self::ZERO;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = [0u64; L];
        for i in 0..L {
            let src = i + limb_shift;
            if src >= L {
                break;
            }
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < L {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        MpUint { limbs: out }
    }
}

impl<const L: usize> Add for MpUint<L> {
    type Output = Self;
    /// Addition. Panics on overflow in debug builds, wraps in release builds (the same
    /// contract as the primitive integer types).
    fn add(self, rhs: Self) -> Self {
        let (v, carry) = self.overflowing_add(&rhs);
        debug_assert!(!carry, "attempt to add with overflow");
        v
    }
}

impl<const L: usize> Sub for MpUint<L> {
    type Output = Self;
    /// Subtraction. Panics on underflow in debug builds, wraps in release builds.
    fn sub(self, rhs: Self) -> Self {
        let (v, borrow) = self.overflowing_sub(&rhs);
        debug_assert!(!borrow, "attempt to subtract with overflow");
        v
    }
}

impl<const L: usize> Shl<u32> for MpUint<L> {
    type Output = Self;
    fn shl(self, rhs: u32) -> Self {
        self.shl_bits(rhs)
    }
}

impl<const L: usize> Shr<u32> for MpUint<L> {
    type Output = Self;
    fn shr(self, rhs: u32) -> Self {
        self.shr_bits(rhs)
    }
}

impl<const L: usize> BitAnd for MpUint<L> {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] & rhs.limbs[i];
        }
        MpUint { limbs: out }
    }
}

impl<const L: usize> BitOr for MpUint<L> {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] | rhs.limbs[i];
        }
        MpUint { limbs: out }
    }
}

impl<const L: usize> BitXor for MpUint<L> {
    type Output = Self;
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] ^ rhs.limbs[i];
        }
        MpUint { limbs: out }
    }
}

impl<const L: usize> Not for MpUint<L> {
    type Output = Self;
    fn not(self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = !self.limbs[i];
        }
        MpUint { limbs: out }
    }
}

#[cfg(test)]
mod tests {
    use crate::{U128, U256};

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U128::from_u128(u128::MAX);
        let (s, carry) = a.overflowing_add(&U128::ONE);
        assert!(s.is_zero());
        assert!(carry);
        let (s, carry) = a.overflowing_add(&U128::ZERO);
        assert_eq!(s, a);
        assert!(!carry);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = U128::from_u128(1u128 << 64);
        let (d, borrow) = a.overflowing_sub(&U128::ONE);
        assert_eq!(d.to_u128(), Some(u64::MAX as u128));
        assert!(!borrow);
        let (_, borrow) = U128::ZERO.overflowing_sub(&U128::ONE);
        assert!(borrow);
    }

    #[test]
    fn checked_variants() {
        assert_eq!(U128::MAX.checked_add(&U128::ONE), None);
        assert_eq!(U128::ZERO.checked_sub(&U128::ONE), None);
        assert_eq!(
            U128::from_u64(5).checked_add(&U128::from_u64(6)),
            Some(U128::from_u64(11))
        );
    }

    #[test]
    fn widening_mul_matches_u128() {
        let a = U64::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul_schoolbook(&a);
        let expected = u64::MAX as u128 * u64::MAX as u128;
        assert_eq!(lo.to_u64(), Some(expected as u64));
        assert_eq!(hi.to_u64(), Some((expected >> 64) as u64));
    }
    use crate::U64;

    #[test]
    fn widening_mul_256() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1: lo = 1, hi = 2^256 - 2 (all ones except bit 0).
        let a = U256::MAX;
        let (lo, hi) = a.widening_mul_schoolbook(&a);
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX.wrapping_sub(&U256::ONE));
        let (lo_k, hi_k) = a.widening_mul_karatsuba(&a);
        assert_eq!((lo_k, hi_k), (lo, hi));
    }

    #[test]
    fn wrapping_mul_is_low_half() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = U256::from_hex("123456789abcdef0123456789abcdef");
        let (lo, _) = a.widening_mul_schoolbook(&b);
        assert_eq!(a.wrapping_mul(&b), lo);
    }

    #[test]
    fn shifts() {
        let a = U256::from_u64(0xff);
        assert_eq!((a << 8).limbs()[0], 0xff00);
        assert_eq!((a << 64).limbs()[1], 0xff);
        assert_eq!((a << 200) >> 200, a);
        assert_eq!(a << 256, U256::ZERO);
        assert_eq!(a >> 256, U256::ZERO);
        assert_eq!((a << 65).limbs()[1], 0x1fe);
    }

    #[test]
    fn bitwise() {
        let a = U128::from_u64(0b1100);
        let b = U128::from_u64(0b1010);
        assert_eq!((a & b).to_u64(), Some(0b1000));
        assert_eq!((a | b).to_u64(), Some(0b1110));
        assert_eq!((a ^ b).to_u64(), Some(0b0110));
        assert_eq!((!U128::ZERO), U128::MAX);
    }

    #[test]
    fn add_carry_bit_propagates() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffff");
        let (s, c) = a.add_carry_bit(true);
        assert_eq!(s, U256::from_u64(1) << 128);
        assert!(!c);
        let (s, c) = U256::MAX.add_carry_bit(true);
        assert!(s.is_zero());
        assert!(c);
    }

    #[test]
    #[should_panic(expected = "add with overflow")]
    fn operator_add_overflow_panics_in_debug() {
        let _ = U128::MAX + U128::ONE;
    }
}
