//! Single-word modular arithmetic — the runtime equivalent of the paper's Listing 1.
//!
//! All inputs fit in one 64-bit machine word, intermediate results use the
//! compiler-supported double word (`u128`), and modular multiplication uses Barrett
//! reduction with the precomputed constant `μ = ⌊2^(2m+3) / q⌋` where `m` is the
//! modulus bit-width (at most 60 = 64 − 4, as in the paper's `MBITS`).

/// Precomputed single-word Barrett parameters for a modulus `q`.
///
/// # Example
///
/// ```
/// use moma_mp::single::SingleBarrett;
///
/// let q = 0x0fff_ffff_ffff_ff9Bu64; // a 60-bit modulus
/// let ctx = SingleBarrett::new(q);
/// assert_eq!(ctx.mul_mod(3, 5), 15);
/// assert_eq!(ctx.mul_mod(q - 1, q - 1), 1); // (-1)^2 = 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleBarrett {
    /// The modulus.
    pub q: u64,
    /// The Barrett constant `⌊2^(2·mbits+3) / q⌋`.
    pub mu: u64,
    /// Significant bits of the modulus.
    pub mbits: u32,
    /// The limb-radix residue `2^64 mod q`, precomputed for
    /// [`Self::reduce_wide`]'s high-word fold.
    pub radix: u64,
    /// The word reciprocal `⌊2^64 / q⌋`, precomputed so reducing a full machine
    /// word modulo `q` ([`Self::reduce_word`]) costs two multiplications and a
    /// conditional subtraction instead of a hardware division.
    pub recip: u64,
}

impl SingleBarrett {
    /// Creates the context for modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q` has more than 60 bits (the paper's `MBITS` bound,
    /// needed so that μ itself fits in a machine word).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        let mbits = 64 - q.leading_zeros();
        assert!(
            mbits <= 60,
            "single-word Barrett requires a modulus of at most 60 bits (got {mbits})"
        );
        // mu = floor(2^(2*mbits+3) / q) fits in 64 bits because q >= 2^(mbits-1).
        let mu = ((1u128 << (2 * mbits + 3)) / q as u128) as u64;
        let radix = {
            let r = (u64::MAX % q) + 1;
            if r == q {
                0
            } else {
                r
            }
        };
        // recip = floor(2^64 / q) <= 2^63 for q >= 2, so it fits a word.
        let recip = ((1u128 << 64) / q as u128) as u64;
        SingleBarrett {
            q,
            mu,
            mbits,
            radix,
            recip,
        }
    }

    /// `(a + b) mod q` (paper `_saddmod`). Inputs must already be reduced.
    #[inline]
    pub fn add_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let t = a as u128 + b as u128;
        if t >= self.q as u128 {
            (t - self.q as u128) as u64
        } else {
            t as u64
        }
    }

    /// `(a - b) mod q` (paper `_ssubmod`). Inputs must already be reduced.
    #[inline]
    pub fn sub_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let t = a.wrapping_sub(b);
        if a < b {
            t.wrapping_add(self.q)
        } else {
            t
        }
    }

    /// `(a · b) mod q` via Barrett reduction (paper `_smulmod`).
    #[inline]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let t = a as u128 * b as u128;
        // r = ((t >> (m-2)) * mu) >> (m+5)  ≈  floor(t / q), off by at most one.
        let r = (t >> (self.mbits - 2)) * self.mu as u128;
        let r = r >> (self.mbits + 5);
        let mut c = t - r * self.q as u128;
        if c >= self.q as u128 {
            c -= self.q as u128;
        }
        debug_assert!(c < self.q as u128);
        c as u64
    }

    /// Returns `true` if the modulus qualifies for the narrow fast path
    /// ([`Self::mul_mod_narrow`]): at most 32 significant bits, so the product of
    /// two reduced inputs fits one machine word.
    ///
    /// **Dispatch rule:** callers that select a multiplication routine per modulus
    /// must branch on this *once, where the routine is chosen* (e.g. when a plan
    /// is built), not rely on every call site remembering the precondition —
    /// `mul_mod_narrow` on a wide modulus silently truncates in release builds.
    /// `RnsPlan::new` in `moma-rns` is the reference caller: it records the
    /// verdict per basis modulus at construction and routes wide rows through
    /// [`Self::mul_mod`].
    #[inline]
    pub fn is_narrow(&self) -> bool {
        self.mbits <= 32
    }

    /// `(a · b) mod q` for *narrow* moduli (at most 32 bits): the same Barrett
    /// reduction as [`Self::mul_mod`], but since reduced inputs multiply to one
    /// machine word, the whole computation needs a single widening `u128`
    /// multiplication (against `μ`) instead of three. This is the hot kernel of
    /// the RNS residue planes, whose 31-bit moduli always qualify.
    ///
    /// For moduli wider than 32 bits the single-word product `a · b` wraps and
    /// the result is silently wrong in release builds — gate on
    /// [`Self::is_narrow`] where the path is selected (see its dispatch rule).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the modulus has more than 32 bits or the
    /// inputs are not reduced.
    #[inline]
    pub fn mul_mod_narrow(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.mbits <= 32, "narrow path requires a 32-bit modulus");
        debug_assert!(a < self.q && b < self.q);
        // t < 2^(2·mbits) ≤ 2^64: the full product is one word.
        let t = a * b;
        // r ≈ floor(t / q), off by at most one (same bound as `mul_mod`):
        // (t >> (mbits−2)) < 2^(mbits+2) and μ < 2^(mbits+4), so the product fits
        // comfortably in the single widening multiplication below.
        let r = (((t >> (self.mbits - 2)) as u128 * self.mu as u128) >> (self.mbits + 5)) as u64;
        let mut c = t.wrapping_sub(r.wrapping_mul(self.q));
        if c >= self.q {
            c -= self.q;
        }
        debug_assert!(c < self.q);
        c
    }

    /// Precomputes the Shoup quotient `⌊w · 2^64 / q⌋` for a fixed multiplicand
    /// `w < q`.
    ///
    /// Shoup's trick trades one division at precompute time for a much cheaper
    /// multiplication at use time: with the quotient in hand, [`Self::mul_mod_shoup`]
    /// needs one high-half `u128` multiplication and two wrapping `u64`
    /// multiplications instead of the three `u128` multiplications of Barrett
    /// reduction. It is the single-word analogue of the paper's precomputed-constant
    /// strategy (`μ` in Listing 1), applied per twiddle factor by the NTT plan.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `w >= q`.
    #[inline]
    pub fn shoup_precompute(&self, w: u64) -> u64 {
        debug_assert!(w < self.q);
        (((w as u128) << 64) / self.q as u128) as u64
    }

    /// Lazy Shoup multiplication: returns `x · w − ⌊x · w / q⌋_approx · q`, a value
    /// congruent to `x · w (mod q)` in the half-reduced range `[0, 2q)`.
    ///
    /// `w_shoup` must be [`Self::shoup_precompute`]`(w)`. The input `x` may itself be
    /// lazily reduced: any `x < 4q` is accepted (the constructor's 60-bit modulus
    /// bound guarantees `4q < 2^64`, which is what makes the error term stay below
    /// one extra `q`). Callers chaining butterflies keep values in `[0, 4q)` and
    /// normalize once at the end — the lazy-reduction discipline of the NTT hot path.
    #[inline]
    pub fn mul_mod_shoup_lazy(&self, x: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(w < self.q);
        debug_assert!((x as u128) < 4 * self.q as u128);
        let hi = ((w_shoup as u128 * x as u128) >> 64) as u64;
        w.wrapping_mul(x).wrapping_sub(hi.wrapping_mul(self.q))
    }

    /// Fully reduced Shoup multiplication: `(x · w) mod q` with `w_shoup`
    /// precomputed by [`Self::shoup_precompute`]. Accepts `x < 4q` like the lazy
    /// variant and adds the single conditional subtraction the lazy variant omits.
    #[inline]
    pub fn mul_mod_shoup(&self, x: u64, w: u64, w_shoup: u64) -> u64 {
        let r = self.mul_mod_shoup_lazy(x, w, w_shoup);
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// The residue of the limb radix: `2^64 mod q` (precomputed by
    /// [`Self::new`]).
    #[inline]
    pub fn radix_residue(&self) -> u64 {
        self.radix
    }

    /// Reduces a full machine word modulo `q`: `x mod q` for any `x`, with no
    /// hardware division — one widening multiplication against the precomputed
    /// reciprocal, one low multiplication, one conditional subtraction.
    ///
    /// With `recip = ⌊2^64/q⌋ = (2^64 − ρ)/q` (`0 ≤ ρ < q`), the quotient
    /// estimate `q̂ = ⌊x·recip/2^64⌋` satisfies `x/q − 2 < q̂ ≤ x/q`, so
    /// `x − q̂·q ∈ [0, 2q)` and a single conditional subtraction finishes.
    #[inline]
    pub fn reduce_word(&self, x: u64) -> u64 {
        let qhat = ((x as u128 * self.recip as u128) >> 64) as u64;
        let r = x.wrapping_sub(qhat.wrapping_mul(self.q));
        let r = if r >= self.q { r - self.q } else { r };
        debug_assert_eq!(r, x % self.q);
        r
    }

    /// Reduces a full double-word value modulo `q`: `t mod q` for any `t < 2^128`.
    ///
    /// This is the closing step of a widening sum-of-products reduction: callers
    /// accumulate `Σ aᵢ·bᵢ` exactly in a `u128` (see [`smac`]) and reduce once at
    /// the end, instead of performing one modular reduction per term. The high
    /// word is folded in through the precomputed radix residue `2^64 mod q`, and
    /// both word reductions go through the division-free [`Self::reduce_word`].
    #[inline]
    pub fn reduce_wide(&self, t: u128) -> u64 {
        let hi = (t >> 64) as u64;
        let lo = t as u64;
        if hi == 0 {
            return self.reduce_word(lo);
        }
        // t = hi·2^64 + lo ≡ (hi mod q)·(2^64 mod q) + (lo mod q)  (mod q).
        let folded = self.mul_mod(self.reduce_word(hi), self.radix);
        self.add_mod(folded, self.reduce_word(lo))
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn pow_mod(&self, base: u64, mut exp: u64) -> u64 {
        let mut result = 1 % self.q;
        let mut base = base % self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                result = self.mul_mod(result, base);
            }
            base = self.mul_mod(base, base);
            exp >>= 1;
        }
        result
    }

    /// Modular inverse for prime `q` via Fermat's little theorem.
    pub fn inv_mod(&self, a: u64) -> u64 {
        self.pow_mod(a, self.q - 2)
    }
}

/// Widening single-word addition (paper `_sadd`): returns the full 128-bit sum.
#[inline]
pub fn sadd(a: u64, b: u64) -> u128 {
    a as u128 + b as u128
}

/// Wrapping single-word subtraction (paper `_ssub`).
#[inline]
pub fn ssub(a: u64, b: u64) -> u64 {
    a.wrapping_sub(b)
}

/// Widening single-word multiplication (paper `_smul`): returns the full 128-bit product.
#[inline]
pub fn smul(a: u64, b: u64) -> u128 {
    a as u128 * b as u128
}

/// Widening single-word multiply-accumulate: `acc + a · b` in the full 128-bit
/// accumulator — the inner step of sum-of-products reductions (RNS base
/// extension accumulates one of these per source modulus, then reduces once via
/// [`SingleBarrett::reduce_wide`]).
///
/// The accumulator has at least 8 bits of headroom over any sum of ≤ 2^8
/// products of 60-bit values, far beyond any practical basis size; debug builds
/// panic on the (theoretical) overflow, release builds are saturation-free
/// because callers bound the term count (see `BaseConvPlan::new` in `moma-rns`).
#[inline]
pub fn smac(acc: u128, a: u64, b: u64) -> u128 {
    debug_assert!(
        acc.checked_add(a as u128 * b as u128).is_some(),
        "sum-of-products accumulator overflowed"
    );
    acc.wrapping_add(a as u128 * b as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 60-bit NTT-friendly prime: q = 0x0FFF_FFA0_0000_0001 (q ≡ 1 mod 2^32).
    const Q60: u64 = 0x0FFF_FFA0_0000_0001;

    #[test]
    fn context_construction() {
        let ctx = SingleBarrett::new(Q60);
        assert_eq!(ctx.mbits, 60);
        assert_eq!(ctx.mu, ((1u128 << 123) / Q60 as u128) as u64);
    }

    #[test]
    #[should_panic(expected = "at most 60 bits")]
    fn oversized_modulus_rejected() {
        SingleBarrett::new(u64::MAX);
    }

    #[test]
    fn add_sub_mod_inverse_each_other() {
        let ctx = SingleBarrett::new(Q60);
        let a = Q60 - 3;
        let b = Q60 - 7;
        let s = ctx.add_mod(a, b);
        assert!(s < Q60);
        assert_eq!(ctx.sub_mod(s, b), a);
        assert_eq!(ctx.sub_mod(0, 1), Q60 - 1);
    }

    #[test]
    fn mul_mod_matches_u128_reference() {
        let ctx = SingleBarrett::new(Q60);
        let cases = [
            (0u64, 0u64),
            (1, Q60 - 1),
            (Q60 - 1, Q60 - 1),
            (123456789, 987654321),
            (Q60 / 2, Q60 / 3),
        ];
        for (a, b) in cases {
            let expected = ((a as u128 * b as u128) % Q60 as u128) as u64;
            assert_eq!(ctx.mul_mod(a, b), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn mul_mod_randomized_against_reference() {
        let ctx = SingleBarrett::new(Q60);
        let mut state = 0x853c49e6748fea9bu64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state % Q60;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = state % Q60;
            let expected = ((a as u128 * b as u128) % Q60 as u128) as u64;
            assert_eq!(ctx.mul_mod(a, b), expected);
        }
    }

    #[test]
    fn narrow_mul_matches_reference() {
        for q in [3u64, 17, 65537, 2_147_483_647, 4_294_967_291] {
            let ctx = SingleBarrett::new(q);
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..2_000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = state % q;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = state % q;
                let expected = ((a as u128 * b as u128) % q as u128) as u64;
                assert_eq!(ctx.mul_mod_narrow(a, b), expected, "q={q} a={a} b={b}");
            }
            // Extremes.
            assert_eq!(ctx.mul_mod_narrow(q - 1, q - 1), ctx.mul_mod(q - 1, q - 1));
            assert_eq!(ctx.mul_mod_narrow(0, q - 1), 0);
        }
    }

    #[test]
    fn pow_and_inverse() {
        let ctx = SingleBarrett::new(Q60);
        assert_eq!(ctx.pow_mod(2, 10), 1024);
        assert_eq!(ctx.pow_mod(5, 0), 1);
        // Fermat: a^(q-1) = 1 for prime q.
        assert_eq!(ctx.pow_mod(123456789, Q60 - 1), 1);
        let inv = ctx.inv_mod(123456789);
        assert_eq!(ctx.mul_mod(inv, 123456789), 1);
    }

    #[test]
    fn shoup_matches_barrett_reference() {
        let ctx = SingleBarrett::new(Q60);
        let mut state = 0x2545f4914f6cdd1du64;
        for _ in 0..5_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = state % Q60;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = state % Q60;
            let ws = ctx.shoup_precompute(w);
            let expected = ((x as u128 * w as u128) % Q60 as u128) as u64;
            assert_eq!(ctx.mul_mod_shoup(x, w, ws), expected, "x={x} w={w}");
            let lazy = ctx.mul_mod_shoup_lazy(x, w, ws);
            assert!(lazy < 2 * Q60, "lazy result must stay below 2q");
            assert_eq!(lazy % Q60, expected, "lazy result must be congruent");
        }
    }

    #[test]
    fn shoup_accepts_lazily_reduced_inputs() {
        // Inputs anywhere in [0, 4q) must produce a congruent result below 2q.
        let ctx = SingleBarrett::new(Q60);
        let w = Q60 - 12345;
        let ws = ctx.shoup_precompute(w);
        for x in [0, 1, Q60 - 1, Q60, 2 * Q60 - 1, 3 * Q60 + 17, 4 * Q60 - 1] {
            let lazy = ctx.mul_mod_shoup_lazy(x, w, ws);
            assert!(lazy < 2 * Q60);
            let expected = ((x as u128 % Q60 as u128) * w as u128 % Q60 as u128) as u64;
            assert_eq!(lazy % Q60, expected);
            assert_eq!(ctx.mul_mod_shoup(x, w, ws), expected);
        }
    }

    #[test]
    fn widening_helpers() {
        assert_eq!(sadd(u64::MAX, u64::MAX), 2 * (u64::MAX as u128));
        assert_eq!(ssub(3, 5), 3u64.wrapping_sub(5));
        assert_eq!(smul(u64::MAX, 2), (u64::MAX as u128) * 2);
        assert_eq!(smac(10, 3, 4), 22);
        assert_eq!(
            smac(1 << 60, u64::MAX, u64::MAX),
            (1u128 << 60) + u64::MAX as u128 * u64::MAX as u128
        );
    }

    #[test]
    fn narrow_predicate_flips_at_32_bits() {
        // (2^32 − 1) has exactly 32 significant bits; 2^32 has 33.
        assert!(SingleBarrett::new((1 << 32) - 1).is_narrow());
        assert!(!SingleBarrett::new(1 << 32).is_narrow());
        assert!(!SingleBarrett::new((1 << 32) + 1).is_narrow());
        assert!(SingleBarrett::new((1 << 31) + 11).is_narrow());
        assert!(!SingleBarrett::new(Q60).is_narrow());
    }

    #[test]
    fn reduce_word_matches_hardware_division() {
        for q in [
            2u64,
            3,
            7,
            65537,
            2_147_483_647,
            4_294_967_291,
            1 << 32,
            Q60,
        ] {
            let ctx = SingleBarrett::new(q);
            for x in [0u64, 1, q - 1, q, q + 1, 2 * q + 3, u64::MAX, u64::MAX - q] {
                assert_eq!(ctx.reduce_word(x), x % q, "q={q} x={x}");
            }
            let mut state = 0xfeed_f00d_dead_beefu64;
            for _ in 0..2_000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                assert_eq!(ctx.reduce_word(state), state % q, "q={q} x={state}");
            }
        }
    }

    #[test]
    fn reduce_wide_matches_u128_reference() {
        for q in [2u64, 3, 65537, 2_147_483_647, 4_294_967_291, Q60] {
            let ctx = SingleBarrett::new(q);
            let radix_expected = ((1u128 << 64) % q as u128) as u64;
            assert_eq!(ctx.radix_residue(), radix_expected, "q={q}");
            let mut state = 0x0123_4567_89ab_cdefu64;
            for _ in 0..2_000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let hi = state;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lo = state;
                let t = (hi as u128) << 64 | lo as u128;
                assert_eq!(ctx.reduce_wide(t), (t % q as u128) as u64, "q={q} t={t}");
            }
            assert_eq!(ctx.reduce_wide(0), 0);
            assert_eq!(ctx.reduce_wide(u128::MAX), (u128::MAX % q as u128) as u64);
        }
    }

    #[test]
    fn small_moduli() {
        for q in [2u64, 3, 17, 257, 65537] {
            let ctx = SingleBarrett::new(q);
            for a in 0..q.min(50) {
                for b in 0..q.min(50) {
                    assert_eq!(ctx.mul_mod(a, b), (a * b) % q);
                    assert_eq!(ctx.add_mod(a, b), (a + b) % q);
                }
            }
        }
    }
}
