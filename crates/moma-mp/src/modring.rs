//! A unified modular-ring context over [`MpUint`] elements.
//!
//! [`ModRing`] bundles a modulus with a reduction strategy (Barrett by default,
//! Montgomery for full-width moduli) and exposes the exact operation set a
//! cryptographic kernel needs: `add`, `sub`, `mul`, `pow`, `inv`, plus element
//! sampling. The NTT and BLAS crates are generic over the limb count `L` and use this
//! context for every butterfly / element operation.

use crate::{BarrettContext, MontgomeryContext, MpUint, MulAlgorithm};
use rand::Rng;

/// Reduction strategy used by a [`ModRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Barrett reduction (paper default; modulus of at most `64·L − 4` bits).
    Barrett,
    /// Montgomery multiplication (odd modulus of up to the full width). Values are kept
    /// in standard form; conversion happens inside each multiplication.
    Montgomery,
}

/// A modular ring `Z_q` over `L`-limb elements.
///
/// # Example
///
/// ```
/// use moma_mp::{ModRing, U128};
///
/// let q = U128::from_hex("ffffffffffffffffffffffffffffff61");
/// let ring = ModRing::new_montgomery(q);
/// let a = U128::from_u64(10);
/// let b = U128::from_u64(32);
/// assert_eq!(ring.mul(a, b), U128::from_u64(320));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModRing<const L: usize> {
    reduction: ReductionImpl<L>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReductionImpl<const L: usize> {
    Barrett(BarrettContext<L>),
    Montgomery(MontgomeryContext<L>),
}

impl<const L: usize> ModRing<L> {
    /// Creates a ring with Barrett reduction and schoolbook multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the modulus has more than `64·L − 4` bits (see [`BarrettContext::new`]).
    pub fn new(q: MpUint<L>) -> Self {
        ModRing {
            reduction: ReductionImpl::Barrett(BarrettContext::new(q)),
        }
    }

    /// Creates a ring with Barrett reduction and an explicit multiplication algorithm.
    pub fn with_mul_algorithm(q: MpUint<L>, alg: MulAlgorithm) -> Self {
        ModRing {
            reduction: ReductionImpl::Barrett(BarrettContext::with_algorithm(q, alg)),
        }
    }

    /// Creates a ring with Montgomery reduction (odd modulus, full width allowed).
    pub fn new_montgomery(q: MpUint<L>) -> Self {
        ModRing {
            reduction: ReductionImpl::Montgomery(MontgomeryContext::new(q)),
        }
    }

    /// The modulus `q`.
    pub fn modulus(&self) -> MpUint<L> {
        match &self.reduction {
            ReductionImpl::Barrett(b) => b.q,
            ReductionImpl::Montgomery(m) => m.q,
        }
    }

    /// The reduction strategy in use.
    pub fn reduction(&self) -> Reduction {
        match &self.reduction {
            ReductionImpl::Barrett(_) => Reduction::Barrett,
            ReductionImpl::Montgomery(_) => Reduction::Montgomery,
        }
    }

    /// Modular addition of reduced elements.
    #[inline]
    pub fn add(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        let q = self.modulus();
        debug_assert!(a < q && b < q);
        let (sum, carry) = a.overflowing_add(&b);
        if carry || sum >= q {
            sum.wrapping_sub(&q)
        } else {
            sum
        }
    }

    /// Modular subtraction of reduced elements.
    #[inline]
    pub fn sub(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        let q = self.modulus();
        debug_assert!(a < q && b < q);
        let (diff, borrow) = a.overflowing_sub(&b);
        if borrow {
            diff.wrapping_add(&q)
        } else {
            diff
        }
    }

    /// Modular multiplication of reduced elements.
    #[inline]
    pub fn mul(&self, a: MpUint<L>, b: MpUint<L>) -> MpUint<L> {
        match &self.reduction {
            ReductionImpl::Barrett(ctx) => ctx.mul_mod(a, b),
            ReductionImpl::Montgomery(ctx) => ctx.mul_mod(a, b),
        }
    }

    /// Modular exponentiation.
    pub fn pow(&self, base: MpUint<L>, exp: &MpUint<L>) -> MpUint<L> {
        let mut result = MpUint::<L>::ONE;
        for i in (0..exp.bits()).rev() {
            result = self.mul(result, result);
            if exp.bit(i) {
                result = self.mul(result, base);
            }
        }
        result
    }

    /// Modular inverse assuming a prime modulus (Fermat).
    pub fn inv(&self, a: MpUint<L>) -> MpUint<L> {
        let exp = self.modulus().wrapping_sub(&MpUint::from_u64(2));
        self.pow(a, &exp)
    }

    /// Reduces an arbitrary value into `[0, q)` (setup-time helper).
    pub fn reduce(&self, x: MpUint<L>) -> MpUint<L> {
        let q = self.modulus();
        // Binary reduction identical to BarrettContext::reduce_full, valid for any q.
        let mut x = x;
        if x < q {
            return x;
        }
        let mbits = q.bits();
        let mut shift = x.bits() - mbits;
        loop {
            let shifted = q.shl_bits(shift);
            if shifted.bits() == mbits + shift && shifted <= x {
                x = x.wrapping_sub(&shifted);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
        }
        x
    }

    /// Samples a uniformly random reduced element.
    pub fn random_element<R: Rng + ?Sized>(&self, rng: &mut R) -> MpUint<L> {
        let q = self.modulus();
        let bits = q.bits();
        let top_mask = if bits % 64 == 0 {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        let top_limb = (bits.div_ceil(64) - 1) as usize;
        loop {
            let mut limbs = [0u64; L];
            for (i, slot) in limbs.iter_mut().enumerate().take(top_limb + 1) {
                *slot = rng.gen();
                if i == top_limb {
                    *slot &= top_mask;
                }
            }
            let candidate = MpUint::from_limbs(limbs);
            if candidate < q {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{U128, U256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn barrett_ring() -> ModRing<2> {
        ModRing::new(U128::from_hex("fffffffffffffffffffffffffffff61")) // 124-bit
    }

    #[test]
    fn add_sub_mul_consistency() {
        let ring = barrett_ring();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = ring.random_element(&mut rng);
            let b = ring.random_element(&mut rng);
            let c = ring.random_element(&mut rng);
            // (a + b) - b = a
            assert_eq!(ring.sub(ring.add(a, b), b), a);
            // a*(b + c) = a*b + a*c
            assert_eq!(
                ring.mul(a, ring.add(b, c)),
                ring.add(ring.mul(a, b), ring.mul(a, c))
            );
        }
    }

    #[test]
    fn barrett_and_montgomery_agree() {
        // Odd 124-bit modulus works for both reductions at L = 2.
        let q = U128::from_hex("fffffffffffffffffffffffffffff61");
        let barrett = ModRing::new(q);
        let mont = ModRing::new_montgomery(q);
        assert_eq!(barrett.reduction(), Reduction::Barrett);
        assert_eq!(mont.reduction(), Reduction::Montgomery);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let a = barrett.random_element(&mut rng);
            let b = barrett.random_element(&mut rng);
            assert_eq!(barrett.mul(a, b), mont.mul(a, b));
            assert_eq!(barrett.add(a, b), mont.add(a, b));
        }
    }

    #[test]
    fn pow_and_inv() {
        // 2^255 - 19 with Montgomery (full-width modulus).
        let q = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed");
        let ring = ModRing::new_montgomery(q);
        let mut rng = StdRng::seed_from_u64(13);
        let a = ring.random_element(&mut rng);
        let inv = ring.inv(a);
        assert_eq!(ring.mul(a, inv), U256::ONE);
        assert_eq!(ring.pow(a, &U256::ZERO), U256::ONE);
        assert_eq!(ring.pow(a, &U256::ONE), a);
        assert_eq!(ring.pow(a, &U256::from_u64(2)), ring.mul(a, a));
    }

    #[test]
    fn reduce_arbitrary_values() {
        let ring = barrett_ring();
        assert_eq!(ring.reduce(U128::ZERO), U128::ZERO);
        assert_eq!(ring.reduce(ring.modulus()), U128::ZERO);
        let r = ring.reduce(U128::MAX);
        assert!(r < ring.modulus());
    }

    #[test]
    fn random_elements_are_reduced_and_varied() {
        let ring = barrett_ring();
        let mut rng = StdRng::seed_from_u64(14);
        let a = ring.random_element(&mut rng);
        let b = ring.random_element(&mut rng);
        assert!(a < ring.modulus());
        assert_ne!(a, b);
    }
}
