//! Slice-based Karatsuba multiplication (paper Equation 9).
//!
//! [`karatsuba_mul`] multiplies two equal-length limb slices into a double-length
//! output. Below [`KARATSUBA_THRESHOLD`] limbs it falls back to schoolbook, mirroring
//! how the rewrite system composes the Karatsuba rule at the top recursion levels with
//! schoolbook leaves.

/// Operand size (in limbs) below which schoolbook multiplication is used.
pub const KARATSUBA_THRESHOLD: usize = 4;

/// Multiplies `a` and `b` (equal length `n`) into `out` (length `2n`), schoolbook.
pub fn schoolbook_mul(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(out.len(), 2 * a.len());
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + b.len()] = carry;
    }
}

/// Multiplies `a` and `b` (equal length `n`) into `out` (length `2n`) using Karatsuba
/// recursion with schoolbook leaves.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths or `out` is not exactly twice as long.
pub fn karatsuba_mul(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(out.len(), 2 * a.len());
    let n = a.len();
    if n < KARATSUBA_THRESHOLD || n % 2 != 0 {
        schoolbook_mul(a, b, out);
        return;
    }
    let half = n / 2;
    let (a0, a1) = a.split_at(half); // a0 = low limbs, a1 = high limbs
    let (b0, b1) = b.split_at(half);

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
    let mut z0 = vec![0u64; n];
    let mut z2 = vec![0u64; n];
    karatsuba_mul(a0, b0, &mut z0);
    karatsuba_mul(a1, b1, &mut z2);

    // Sums a0+a1 and b0+b1 can carry one extra bit; keep them as (limbs, carry).
    let (sa, ca) = add_slices(a0, a1);
    let (sb, cb) = add_slices(b0, b1);
    let mut z1 = vec![0u64; n];
    karatsuba_mul(&sa, &sb, &mut z1);
    // Add the carry cross terms: (ca·2^h + sa)(cb·2^h + sb)
    //   = z1 + ca·sb·2^h + cb·sa·2^h + ca·cb·2^(2h)
    let mut z1ext = vec![0u64; n + 2];
    z1ext[..n].copy_from_slice(&z1);
    if ca {
        add_into(&mut z1ext[half..], &sb);
    }
    if cb {
        add_into(&mut z1ext[half..], &sa);
    }
    if ca && cb {
        add_into(&mut z1ext[n..], &[1]);
    }
    // z1 := z1 - z0 - z2
    sub_from(&mut z1ext, &z0);
    sub_from(&mut z1ext, &z2);

    // out = z0 + z1·2^(64·half) + z2·2^(64·n)
    out.fill(0);
    out[..n].copy_from_slice(&z0);
    add_into(&mut out[n..], &z2);
    add_into(&mut out[half..], &z1ext);
}

/// Adds two equal-length slices, returning the sum limbs and the carry-out.
fn add_slices(a: &[u64], b: &[u64]) -> (Vec<u64>, bool) {
    let mut out = vec![0u64; a.len()];
    let mut carry = 0u64;
    for i in 0..a.len() {
        let s = a[i] as u128 + b[i] as u128 + carry as u128;
        out[i] = s as u64;
        carry = (s >> 64) as u64;
    }
    (out, carry != 0)
}

/// Adds `src` into `dst` in place (`dst` must be long enough to absorb the carry).
fn add_into(dst: &mut [u64], src: &[u64]) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < src.len() || carry != 0 {
        let s = dst[i] as u128 + src.get(i).copied().unwrap_or(0) as u128 + carry as u128;
        dst[i] = s as u64;
        carry = (s >> 64) as u64;
        i += 1;
    }
}

/// Subtracts `src` from `dst` in place (`dst >= src` must hold).
fn sub_from(dst: &mut [u64], src: &[u64]) {
    let mut borrow = 0u64;
    let mut i = 0;
    while i < src.len() || borrow != 0 {
        let (d1, b1) = dst[i].overflowing_sub(src.get(i).copied().unwrap_or(0));
        let (d2, b2) = d1.overflowing_sub(borrow);
        dst[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
        i += 1;
    }
}

/// Operation counts for one double-word multiplication under each algorithm, as stated
/// in the paper's §5.4: schoolbook uses 4 single-word multiplications and 6 additions,
/// Karatsuba 3 multiplications and 12 additions/subtractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulOpCount {
    /// Number of single-word multiplications.
    pub muls: usize,
    /// Number of single-word additions/subtractions (excluding carry propagation).
    pub adds: usize,
}

/// Returns the paper's per-double-word-multiplication operation counts (§5.4).
pub fn double_word_op_count(karatsuba: bool) -> MulOpCount {
    if karatsuba {
        MulOpCount { muls: 3, adds: 12 }
    } else {
        MulOpCount { muls: 4, adds: 6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16, 32] {
            let a = pseudo_random(n, 0xabc0 + n as u64);
            let b = pseudo_random(n, 0xdef0 + n as u64);
            let mut out_s = vec![0u64; 2 * n];
            let mut out_k = vec![0u64; 2 * n];
            schoolbook_mul(&a, &b, &mut out_s);
            karatsuba_mul(&a, &b, &mut out_k);
            assert_eq!(out_s, out_k, "n = {n}");
        }
    }

    #[test]
    fn all_ones_squares() {
        for n in [4usize, 8, 16] {
            let a = vec![u64::MAX; n];
            let mut out_s = vec![0u64; 2 * n];
            let mut out_k = vec![0u64; 2 * n];
            schoolbook_mul(&a, &a, &mut out_s);
            karatsuba_mul(&a, &a, &mut out_k);
            assert_eq!(out_s, out_k);
        }
    }

    #[test]
    fn zero_and_one_operands() {
        let a = vec![0u64; 8];
        let b = pseudo_random(8, 99);
        let mut out = vec![1u64; 16];
        karatsuba_mul(&a, &b, &mut out);
        assert!(out.iter().all(|&x| x == 0));
        let mut one = vec![0u64; 8];
        one[0] = 1;
        karatsuba_mul(&one, &b, &mut out);
        assert_eq!(&out[..8], &b[..]);
        assert!(out[8..].iter().all(|&x| x == 0));
    }

    #[test]
    fn op_counts_match_paper() {
        assert_eq!(double_word_op_count(false), MulOpCount { muls: 4, adds: 6 });
        assert_eq!(double_word_op_count(true), MulOpCount { muls: 3, adds: 12 });
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut out = vec![0u64; 6];
        karatsuba_mul(&[1, 2], &[1, 2, 3], &mut out);
    }
}
