//! Property-based cross-checks of `moma-mp` fixed-width arithmetic against the
//! `moma-bignum` arbitrary-precision oracle, at every bit-width the paper evaluates.

use moma_bignum::BigUint;
use moma_mp::single::{smac, SingleBarrett};
use moma_mp::{BarrettContext, ModRing, MontgomeryContext, MpUint, MulAlgorithm};
use proptest::prelude::*;

/// Converts a fixed-width value to the oracle type.
fn to_big<const L: usize>(x: &MpUint<L>) -> BigUint {
    BigUint::from_limbs_le(x.limbs().to_vec())
}

/// Converts an oracle value (must fit) to the fixed-width type.
fn from_big<const L: usize>(x: &BigUint) -> MpUint<L> {
    MpUint::from_limbs_le(&x.to_limbs_le(L))
}

/// Strategy producing a random L-limb value.
fn mp<const L: usize>() -> impl Strategy<Value = MpUint<L>> {
    prop::collection::vec(any::<u64>(), L).prop_map(|v| MpUint::from_limbs_le(&v))
}

/// Runs the full arithmetic cross-check for one limb count.
fn check_ring_ops<const L: usize>(a: MpUint<L>, b: MpUint<L>, q: MpUint<L>) {
    // Force the modulus into the "k-4 bits, top bit set" shape the paper uses.
    let q = {
        let mut limbs = *q.limbs();
        limbs[L - 1] |= 1 << 58; // ensure high-ish bit so q has ~64L-5..64L-4 bits
        limbs[L - 1] &= (1 << 60) - 1; // keep at most 64L-4 bits
        limbs[0] |= 1; // odd, so the Montgomery path is valid too
        MpUint::from_limbs(limbs)
    };
    let barrett = BarrettContext::new(q);
    let karatsuba = BarrettContext::with_algorithm(q, MulAlgorithm::Karatsuba);
    let montgomery = MontgomeryContext::new(q);
    let ring = ModRing::new(q);
    let q_big = to_big(&q);

    let a = barrett.reduce_full(a);
    let b = barrett.reduce_full(b);
    let (a_big, b_big) = (to_big(&a), to_big(&b));
    assert!(a_big < q_big && b_big < q_big);

    // Addition / subtraction.
    assert_eq!(
        to_big(&barrett.add_mod(a, b)),
        a_big.mod_add(&b_big, &q_big)
    );
    assert_eq!(
        to_big(&barrett.sub_mod(a, b)),
        a_big.mod_sub(&b_big, &q_big)
    );
    assert_eq!(to_big(&ring.add(a, b)), a_big.mod_add(&b_big, &q_big));

    // Multiplication, all three strategies.
    let expected_mul = a_big.mod_mul(&b_big, &q_big);
    assert_eq!(to_big(&barrett.mul_mod(a, b)), expected_mul);
    assert_eq!(to_big(&karatsuba.mul_mod(a, b)), expected_mul);
    assert_eq!(to_big(&montgomery.mul_mod(a, b)), expected_mul);

    // Widening multiplication against the oracle's full product.
    let (lo, hi) = a.widening_mul_schoolbook(&b);
    let full = &a_big * &b_big;
    assert_eq!(to_big(&lo), full.low_bits(64 * L as u32));
    assert_eq!(to_big(&hi), &full >> (64 * L as u32));
    let (lo_k, hi_k) = a.widening_mul_karatsuba(&b);
    assert_eq!((lo_k, hi_k), (lo, hi));

    // Exponentiation on a small exponent.
    let exp = MpUint::<L>::from_u64(13);
    assert_eq!(
        to_big(&barrett.pow_mod(a, &exp)),
        a_big.mod_pow(&BigUint::from(13u64), &q_big)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ops_match_oracle_128(a in mp::<2>(), b in mp::<2>(), q in mp::<2>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn ops_match_oracle_256(a in mp::<4>(), b in mp::<4>(), q in mp::<4>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn ops_match_oracle_384(a in mp::<6>(), b in mp::<6>(), q in mp::<6>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn ops_match_oracle_512(a in mp::<8>(), b in mp::<8>(), q in mp::<8>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn ops_match_oracle_768(a in mp::<12>(), b in mp::<12>(), q in mp::<12>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn ops_match_oracle_1024(a in mp::<16>(), b in mp::<16>(), q in mp::<16>()) {
        check_ring_ops(a, b, q);
    }

    #[test]
    fn add_sub_round_trip_256(a in mp::<4>(), b in mp::<4>()) {
        let (sum, carry) = a.overflowing_add(&b);
        let expected = &to_big(&a) + &to_big(&b);
        let mut reconstructed = to_big(&sum);
        if carry {
            reconstructed = reconstructed + (BigUint::from(1u64) << 256);
        }
        prop_assert_eq!(reconstructed, expected);
        let (back, borrow) = sum.overflowing_sub(&b);
        prop_assert_eq!(back, a);
        prop_assert_eq!(borrow, carry);
    }

    #[test]
    fn shifts_match_oracle_512(a in mp::<8>(), bits in 0u32..512) {
        let expected_shr = &to_big(&a) >> bits;
        prop_assert_eq!(to_big(&a.shr_bits(bits)), expected_shr);
        let expected_shl = (&to_big(&a) << bits).low_bits(512);
        prop_assert_eq!(to_big(&a.shl_bits(bits)), expected_shl);
    }

    #[test]
    fn conversion_round_trip(a in mp::<6>()) {
        prop_assert_eq!(from_big::<6>(&to_big(&a)), a);
        prop_assert_eq!(MpUint::<6>::from_hex(&a.to_hex()), a);
    }

    /// The narrow/wide dispatch boundary: for moduli drawn around 2^31..2^32 the
    /// narrow single-widening-multiplication path must agree with the general
    /// Barrett path exactly when `is_narrow()` says it applies, and `is_narrow`
    /// itself must flip precisely at 32 significant bits.
    #[test]
    fn narrow_mul_matches_general_at_the_32_bit_boundary(
        q_off in 0u64..(1 << 20),
        seed in any::<u64>(),
        wide_bits in 33u32..=60,
    ) {
        // Moduli straddling the boundary: just under 2^31, around 2^32, and a
        // genuinely wide one (where only the general path is valid).
        let near = [
            (1u64 << 31) - 1 - (q_off % ((1 << 20) - 1)),
            (1u64 << 31) + 1 + q_off,
            (1u64 << 32) - 1 - (q_off % ((1 << 20) - 1)),
            (1u64 << 32).saturating_sub(1).max(2),
        ];
        let wide = (1u64 << (wide_bits - 1)) | (q_off | 1);
        for q in near.into_iter().chain([wide]) {
            let ctx = SingleBarrett::new(q);
            prop_assert_eq!(ctx.is_narrow(), 64 - q.leading_zeros() <= 32, "q={}", q);
            let mut state = seed | 1;
            for _ in 0..32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = state % q;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = state % q;
                let expected = ((a as u128 * b as u128) % q as u128) as u64;
                prop_assert_eq!(ctx.mul_mod(a, b), expected, "general q={} a={} b={}", q, a, b);
                if ctx.is_narrow() {
                    prop_assert_eq!(
                        ctx.mul_mod_narrow(a, b), expected,
                        "narrow q={} a={} b={}", q, a, b
                    );
                }
            }
        }
    }

    /// A widening sum-of-products accumulated with `smac` and closed with
    /// `reduce_wide` equals the term-by-term modular computation.
    #[test]
    fn smac_reduce_wide_matches_term_by_term(
        terms in prop::collection::vec((any::<u64>(), any::<u64>()), 1..24),
        q_seed in any::<u64>(),
        narrow in any::<bool>(),
    ) {
        let q = if narrow {
            (q_seed % ((1 << 32) - 2)).max(2)
        } else {
            ((1 << 33) + q_seed % ((1 << 59) - (1 << 33))).max(2)
        };
        let ctx = SingleBarrett::new(q);
        let mut acc = 0u128;
        let mut expected = 0u64;
        for (a, b) in terms {
            let (a, b) = (a % q, b % q);
            acc = smac(acc, a, b);
            expected = ctx.add_mod(expected, ctx.mul_mod(a, b));
        }
        prop_assert_eq!(ctx.reduce_wide(acc), expected, "q={}", q);
    }
}
