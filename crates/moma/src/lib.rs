//! MoMA: multi-word modular arithmetic code generation for cryptographic kernels.
//!
//! This is the facade crate of the reproduction of *"Code Generation for Cryptographic
//! Kernels using Multi-word Modular Arithmetic on GPU"* (CGO 2025). It ties the
//! subsystem crates together behind one public API:
//!
//! * [`Compiler`] — generate a cryptographic kernel (modular add/sub/mul, NTT
//!   butterfly, BLAS axpy) at any input bit-width, lower it with the MoMA rewrite
//!   system, and obtain the word-level IR, emitted CUDA-like and Rust source, and
//!   operation counts;
//! * [`engine`] — run the generated kernels and their runtime-library equivalents on
//!   the simulated GPU, and estimate per-device runtimes with the analytical cost
//!   model (the machinery behind every figure of the evaluation);
//! * [`paper_data`] — the published baseline series (ICICLE, GZKP, RPU, FPMM, PipeZK,
//!   GMP, GRNS, …) digitised from the paper's figures, so each figure can be
//!   regenerated with all of its lines;
//! * re-exports of the subsystem crates ([`bignum`], [`mp`], [`ir`], [`rewrite`],
//!   [`rns`], [`gpu`], [`ntt`], [`blas`]).
//!
//! # Quickstart
//!
//! ```
//! use moma::{Compiler, KernelOp, KernelSpec};
//!
//! // Generate a 256-bit Barrett modular multiplication for a 64-bit machine word.
//! let compiler = Compiler::default();
//! let kernel = compiler.compile(&KernelSpec::new(KernelOp::ModMul, 256));
//! assert!(kernel.cuda_source.contains("__device__"));
//! assert!(kernel.op_counts.multiplications() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod engine;
pub mod paper_data;

pub use compiler::{Compiler, GeneratedKernel};
pub use moma_rewrite::{KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};

/// Re-export of the arbitrary-precision integer crate (GMP stand-in / oracle).
pub use moma_bignum as bignum;
/// Re-export of the finite-field BLAS kernels.
pub use moma_blas as blas;
/// Re-export of the GPU simulator.
pub use moma_gpu as gpu;
/// Re-export of the abstract-code IR.
pub use moma_ir as ir;
/// Re-export of the fixed-width multi-word runtime library.
pub use moma_mp as mp;
/// Re-export of the NTT crate.
pub use moma_ntt as ntt;
/// Re-export of the MoMA rewrite system.
pub use moma_rewrite as rewrite;
/// Re-export of the RNS (GRNS stand-in) crate.
pub use moma_rns as rns;

/// The input bit-widths evaluated in the paper's BLAS figures (Figure 2).
pub const BLAS_BIT_WIDTHS: [u32; 4] = [128, 256, 512, 1024];

/// The input bit-widths evaluated in the paper's NTT figures (Figure 3).
pub const NTT_BIT_WIDTHS: [u32; 4] = [128, 256, 384, 768];
