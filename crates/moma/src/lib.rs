//! MoMA: multi-word modular arithmetic code generation for cryptographic kernels.
//!
//! This is the facade crate of the reproduction of *"Code Generation for Cryptographic
//! Kernels using Multi-word Modular Arithmetic on GPU"* (CGO 2025). It ties the
//! subsystem crates together behind one public API:
//!
//! * [`Session`] — **the entry point**: owns a device, a compiled-kernel cache,
//!   and plan caches for every precompute-once object in the runtime
//!   ([`ntt::NttPlan64`] keyed by `(q, n)`, [`rns::RnsPlan`] keyed by basis,
//!   conversion/rescale/fused-chain plans keyed by basis pair), every
//!   `get_or_build` hit-counted and stampede-controlled (builds run outside the
//!   cache lock; same-key requests build exactly once, different-key requests
//!   never serialize). The session is a cheap `Clone` handle over shared state
//!   — `Send + Sync`, shareable across threads. Typed handles —
//!   [`session::RnsSpace`] / [`session::RnsVec`] with chainable ops and
//!   cost-model-selected execution paths (including the fused
//!   [`session::RnsVec::rescale_then_extend`] chain), [`session::NttSpace`]
//!   with stage-batched transforms — sit on top and are *owned*
//!   (`Send + 'static`), free to cross threads or sit in a request queue;
//! * [`Compiler`] — the stateless kernel generator underneath (modular
//!   add/sub/mul, NTT butterfly, BLAS axpy at any input bit-width, lowered with
//!   the MoMA rewrite system to word-level IR, emitted CUDA-like and Rust
//!   source, and operation counts). Prefer [`Session::compile`], which caches;
//! * [`engine`] — the figure machinery: the [`engine::Series`] type (the
//!   estimation entry points live on [`Session`]);
//! * [`paper_data`] — the published baseline series (ICICLE, GZKP, RPU, FPMM, PipeZK,
//!   GMP, GRNS, …) digitised from the paper's figures, so each figure can be
//!   regenerated with all of its lines;
//! * re-exports of the subsystem crates ([`bignum`], [`mp`], [`ir`], [`rewrite`],
//!   [`rns`], [`gpu`], [`ntt`], [`blas`]).
//!
//! # Quickstart
//!
//! ```
//! use moma::{KernelOp, KernelSpec, Session};
//!
//! let session = Session::default();
//!
//! // Generate a 256-bit Barrett modular multiplication for a 64-bit machine word.
//! let kernel = session.compile(&KernelSpec::new(KernelOp::ModMul, 256));
//! assert!(kernel.cuda_source.contains("__device__"));
//! assert!(kernel.op_counts.multiplications() > 0);
//!
//! // Compile once, execute many: the second request builds nothing.
//! let again = session.compile(&KernelSpec::new(KernelOp::ModMul, 256));
//! assert_eq!(session.stats().generated.hits, 1);
//! assert!(std::sync::Arc::ptr_eq(&kernel, &again));
//!
//! // Typed handles over the cached plans: an RNS space and a batched NTT space.
//! let space = session.rns_with_capacity(128);
//! let ntt = session.ntt_default(1024);
//! assert_eq!(ntt.n(), 1024);
//! assert!(space.moduli().len() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod engine;
pub mod paper_data;
pub mod session;
pub mod snapshot;

pub use compiler::{Compiler, GeneratedKernel};
pub use moma_rewrite::{KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
pub use session::{
    CacheStats, NttSpace, RingSpace, RingVec, RnsSpace, RnsVec, Session, SessionStats,
};
pub use snapshot::{RestoreReport, SnapshotError};

/// Re-export of the arbitrary-precision integer crate (GMP stand-in / oracle).
pub use moma_bignum as bignum;
/// Re-export of the finite-field BLAS kernels.
pub use moma_blas as blas;
/// Re-export of the GPU simulator.
pub use moma_gpu as gpu;
/// Re-export of the abstract-code IR.
pub use moma_ir as ir;
/// Re-export of the fixed-width multi-word runtime library.
pub use moma_mp as mp;
/// Re-export of the NTT crate.
pub use moma_ntt as ntt;
/// Re-export of the MoMA rewrite system.
pub use moma_rewrite as rewrite;

/// Negacyclic polynomial ring layer (ladders, ring contexts, oracles).
pub use moma_ring as ring;
/// Re-export of the RNS (GRNS stand-in) crate.
pub use moma_rns as rns;

/// The input bit-widths evaluated in the paper's BLAS figures (Figure 2).
pub const BLAS_BIT_WIDTHS: [u32; 4] = [128, 256, 512, 1024];

/// The input bit-widths evaluated in the paper's NTT figures (Figure 3).
pub const NTT_BIT_WIDTHS: [u32; 4] = [128, 256, 384, 768];
