//! Execution and estimation engine: the machinery behind every evaluation figure.
//!
//! Two kinds of numbers are produced:
//!
//! * **measured** — wall-clock times of the runtime-library kernels (`moma-mp`,
//!   `moma-bignum`, `moma-rns`) executed on the host, either sequentially or through
//!   the simulated GPU launcher; these drive the relative comparisons (MoMA vs GMP vs
//!   GRNS, schoolbook vs Karatsuba, bit-width scaling);
//! * **modelled** — analytical per-device estimates obtained by feeding the word-level
//!   operation counts of the *generated* kernels into the GPU cost model; these stand
//!   in for the paper's H100 / RTX 4090 / V100 measurements.
//!
//! The free functions of this module predate [`crate::Session`] and are kept for
//! one release as thin deprecated shims: each builds a throwaway session per
//! call, so nothing is cached between calls. Use the session methods of the same
//! names instead — they compile each kernel once and share it across devices and
//! figures.

use crate::session::Session;
use moma_gpu::DeviceSpec;
use moma_ir::cost::OpCounts;
use moma_rewrite::{KernelOp, MulAlgorithm};

/// Word-level operation counts of one generated butterfly at a given bit-width.
#[deprecated(since = "0.2.0", note = "use moma::Session::butterfly_op_counts")]
pub fn butterfly_op_counts(bits: u32, alg: MulAlgorithm) -> OpCounts {
    Session::default().butterfly_op_counts(bits, alg)
}

/// Word-level operation counts of one generated BLAS element kernel.
#[deprecated(since = "0.2.0", note = "use moma::Session::blas_op_counts")]
pub fn blas_op_counts(op: KernelOp, bits: u32, alg: MulAlgorithm) -> OpCounts {
    Session::default().blas_op_counts(op, bits, alg)
}

/// Modelled NTT runtime per butterfly (nanoseconds) on a device — the y-axis of
/// Figures 1, 3, and 4.
#[deprecated(
    since = "0.2.0",
    note = "use moma::Session::modelled_ntt_ns_per_butterfly"
)]
pub fn modelled_ntt_ns_per_butterfly(
    device: DeviceSpec,
    bits: u32,
    log2_n: u32,
    alg: MulAlgorithm,
) -> f64 {
    Session::new(device).modelled_ntt_ns_per_butterfly(device, bits, log2_n, alg)
}

/// Modelled BLAS runtime per element (nanoseconds) on a device — the y-axis of
/// Figure 2.
#[deprecated(
    since = "0.2.0",
    note = "use moma::Session::modelled_blas_ns_per_element"
)]
pub fn modelled_blas_ns_per_element(
    device: DeviceSpec,
    op: KernelOp,
    bits: u32,
    elements: u64,
) -> f64 {
    Session::new(device).modelled_blas_ns_per_element(device, op, bits, elements)
}

/// One row of a figure: system label, platform, and the series of (x, ns) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// System under test (e.g. "MoMA (modelled)", "ICICLE").
    pub system: String,
    /// Hardware platform.
    pub platform: String,
    /// Data points: x (log2 size or bit-width) and nanoseconds.
    pub points: Vec<(u32, f64)>,
}

/// Builds the modelled MoMA series for one NTT figure panel (one bit-width, a range of
/// transform sizes) across the three paper devices.
#[deprecated(since = "0.2.0", note = "use moma::Session::ntt_series")]
pub fn moma_ntt_series(bits: u32, log_sizes: &[u32], alg: MulAlgorithm) -> Vec<Series> {
    Session::default().ntt_series(bits, log_sizes, alg)
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep delegating correctly for one release
mod tests {
    use super::*;

    #[test]
    fn butterfly_counts_grow_quadratically_with_width() {
        let c128 = butterfly_op_counts(128, MulAlgorithm::Schoolbook);
        let c256 = butterfly_op_counts(256, MulAlgorithm::Schoolbook);
        let c512 = butterfly_op_counts(512, MulAlgorithm::Schoolbook);
        // Schoolbook multiplication is O(k^2) in the number of words.
        assert!(c256.multiplications() >= 3 * c128.multiplications());
        assert!(c512.multiplications() >= 3 * c256.multiplications());
    }

    #[test]
    fn karatsuba_reduces_butterfly_multiplications() {
        let sb = butterfly_op_counts(256, MulAlgorithm::Schoolbook);
        let ka = butterfly_op_counts(256, MulAlgorithm::Karatsuba);
        assert!(ka.multiplications() < sb.multiplications());
    }

    #[test]
    fn modelled_times_scale_with_width_and_device() {
        let h100_128 =
            modelled_ntt_ns_per_butterfly(DeviceSpec::H100, 128, 12, MulAlgorithm::Schoolbook);
        let h100_768 =
            modelled_ntt_ns_per_butterfly(DeviceSpec::H100, 768, 12, MulAlgorithm::Schoolbook);
        let v100_128 =
            modelled_ntt_ns_per_butterfly(DeviceSpec::V100, 128, 12, MulAlgorithm::Schoolbook);
        assert!(h100_768 > 10.0 * h100_128);
        assert!(v100_128 > h100_128);
    }

    #[test]
    fn blas_estimates_are_positive_and_mul_heavier_than_add() {
        let mul = modelled_blas_ns_per_element(DeviceSpec::RTX4090, KernelOp::ModMul, 256, 1 << 16);
        let add = modelled_blas_ns_per_element(DeviceSpec::RTX4090, KernelOp::ModAdd, 256, 1 << 16);
        assert!(mul > add);
        assert!(add > 0.0);
    }

    #[test]
    fn series_have_one_point_per_size() {
        let series = moma_ntt_series(128, &[10, 12, 14], MulAlgorithm::Schoolbook);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|s| s.points.len() == 3));
    }

    #[test]
    fn shims_agree_with_the_session_methods() {
        let session = Session::default();
        assert_eq!(
            butterfly_op_counts(256, MulAlgorithm::Schoolbook),
            session.butterfly_op_counts(256, MulAlgorithm::Schoolbook)
        );
        assert_eq!(
            modelled_ntt_ns_per_butterfly(DeviceSpec::H100, 128, 12, MulAlgorithm::Schoolbook),
            session.modelled_ntt_ns_per_butterfly(
                DeviceSpec::H100,
                128,
                12,
                MulAlgorithm::Schoolbook
            )
        );
    }
}
