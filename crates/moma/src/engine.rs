//! Execution and estimation engine: the machinery behind every evaluation figure.
//!
//! Two kinds of numbers are produced:
//!
//! * **measured** — wall-clock times of the runtime-library kernels (`moma-mp`,
//!   `moma-bignum`, `moma-rns`) executed on the host, either sequentially or through
//!   the simulated GPU launcher; these drive the relative comparisons (MoMA vs GMP vs
//!   GRNS, schoolbook vs Karatsuba, bit-width scaling);
//! * **modelled** — analytical per-device estimates obtained by feeding the word-level
//!   operation counts of the *generated* kernels into the GPU cost model; these stand
//!   in for the paper's H100 / RTX 4090 / V100 measurements.
//!
//! The estimation entry points live on [`crate::Session`]
//! ([`crate::Session::butterfly_op_counts`], [`crate::Session::blas_op_counts`],
//! [`crate::Session::modelled_ntt_ns_per_butterfly`],
//! [`crate::Session::modelled_blas_ns_per_element`],
//! [`crate::Session::ntt_series`]) — they compile each kernel once and share it
//! across devices and figures. The pre-`Session` free-function shims that used
//! to live here were deprecated for one release and have been removed. This
//! module keeps the figure data type, [`Series`].

/// One row of a figure: system label, platform, and the series of (x, ns) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// System under test (e.g. "MoMA (modelled)", "ICICLE").
    pub system: String,
    /// Hardware platform.
    pub platform: String,
    /// Data points: x (log2 size or bit-width) and nanoseconds.
    pub points: Vec<(u32, f64)>,
}

#[cfg(test)]
mod tests {
    use crate::session::Session;
    use moma_gpu::DeviceSpec;
    use moma_rewrite::{KernelOp, MulAlgorithm};

    #[test]
    fn butterfly_counts_grow_quadratically_with_width() {
        let session = Session::default();
        let c128 = session.butterfly_op_counts(128, MulAlgorithm::Schoolbook);
        let c256 = session.butterfly_op_counts(256, MulAlgorithm::Schoolbook);
        let c512 = session.butterfly_op_counts(512, MulAlgorithm::Schoolbook);
        // Schoolbook multiplication is O(k^2) in the number of words.
        assert!(c256.multiplications() >= 3 * c128.multiplications());
        assert!(c512.multiplications() >= 3 * c256.multiplications());
    }

    #[test]
    fn karatsuba_reduces_butterfly_multiplications() {
        let session = Session::default();
        let sb = session.butterfly_op_counts(256, MulAlgorithm::Schoolbook);
        let ka = session.butterfly_op_counts(256, MulAlgorithm::Karatsuba);
        assert!(ka.multiplications() < sb.multiplications());
    }

    #[test]
    fn modelled_times_scale_with_width_and_device() {
        let session = Session::default();
        let h100_128 = session.modelled_ntt_ns_per_butterfly(
            DeviceSpec::H100,
            128,
            12,
            MulAlgorithm::Schoolbook,
        );
        let h100_768 = session.modelled_ntt_ns_per_butterfly(
            DeviceSpec::H100,
            768,
            12,
            MulAlgorithm::Schoolbook,
        );
        let v100_128 = session.modelled_ntt_ns_per_butterfly(
            DeviceSpec::V100,
            128,
            12,
            MulAlgorithm::Schoolbook,
        );
        assert!(h100_768 > 10.0 * h100_128);
        assert!(v100_128 > h100_128);
    }

    #[test]
    fn blas_estimates_are_positive_and_mul_heavier_than_add() {
        let session = Session::default();
        let mul = session.modelled_blas_ns_per_element(
            DeviceSpec::RTX4090,
            KernelOp::ModMul,
            256,
            1 << 16,
        );
        let add = session.modelled_blas_ns_per_element(
            DeviceSpec::RTX4090,
            KernelOp::ModAdd,
            256,
            1 << 16,
        );
        assert!(mul > add);
        assert!(add > 0.0);
    }

    #[test]
    fn series_have_one_point_per_size() {
        let session = Session::default();
        let series = session.ntt_series(128, &[10, 12, 14], MulAlgorithm::Schoolbook);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|s| s.points.len() == 3));
    }
}
