//! Warm-start persistence: serialize a [`Session`]'s plan caches to bytes and
//! seed a fresh session from them, skipping every prime search, twiddle-table
//! build, and CRT precomputation — the *precompute once, execute many*
//! discipline extended across process restarts.
//!
//! # Format
//!
//! The format is versioned, self-describing, and hand-rolled (no serialization
//! dependency):
//!
//! ```text
//! "MOMASNAP"            8-byte magic
//! version: u32 LE       currently 2
//! toolchain: u32 LE length + UTF-8 bytes    writer toolchain id
//! build: u32 LE length + UTF-8 bytes        writer build id
//! sections              tag: u32 LE, payload_len: u64 LE, payload bytes
//! checksum: u64 LE      FNV-1a 64 over everything before it
//! ```
//!
//! The toolchain/build identity pair is the transport-hardening gate: a
//! snapshot written by a different toolchain or crate build is rejected with
//! [`SnapshotError::IncompatibleBuild`] **before any section is read** —
//! table layout subtleties between builds can then never reach the table
//! validators, let alone the caches.
//!
//! All integers are little-endian; `BigUint`s are a limb count followed by
//! little-endian 64-bit limbs; a basis is a modulus count followed by the
//! moduli. Sections may appear in any order but at most once each; an unknown
//! tag fails closed (a newer writer's snapshot is rejected, not half-read).
//!
//! | tag | section |
//! |-----|---------|
//! | 1   | capacity-bits → basis memo |
//! | 2   | single-word NTT plans: `(q, n)` + twiddle tables + `n⁻¹` |
//! | 3   | multi-word NTT plan **keys** (`limbs`, `bits`, `n`) — tables are rebuilt on restore |
//! | 4   | RNS plans: basis + product + CRT tables |
//! | 5   | base-conversion plans: basis pair + pseudo-factor and cross tables |
//! | 6   | rescale plans: basis + dropped-modulus inverses |
//! | 7   | fused rescale-and-extend plans: basis pair + all component tables |
//! | 8   | negacyclic NTT plans: `(q, n)` + twiddle tables + `n⁻¹` + `ψ` (twist tables are rebuilt) |
//! | 9   | negacyclic ring context **keys** (`n`, moduli ladder) — contexts reassemble from the seeded caches |
//!
//! # Trust model
//!
//! A snapshot is an *accelerator*, not an authority: every table is validated
//! on load against arithmetic identities that a fresh build would satisfy by
//! construction (see [`NttPlan64::from_tables`], [`RnsPlan::from_tables`],
//! [`BaseConvPlan::from_tables`], …), and all derived values — Shoup
//! quotients, Barrett contexts, narrow-path verdicts — are recomputed, never
//! deserialized. Wrong `(q, n)`, a tampered basis, a flipped table word,
//! truncated bytes, or a version bump all fail closed with a typed
//! [`SnapshotError`]; nothing is seeded from a snapshot that fails any check.
//!
//! ```
//! use moma::Session;
//!
//! let warm = Session::default();
//! let _ = warm.ntt_default(64);
//! let _ = warm.rns_with_capacity(128);
//! let bytes = warm.snapshot();
//!
//! let fresh = Session::default();
//! let report = fresh.restore(&bytes).expect("snapshot restores");
//! assert_eq!(report.ntt_plans, 1);
//! // The restored plan serves requests without rebuilding.
//! let _ = fresh.ntt_default(64);
//! assert_eq!(fresh.stats().ntt.misses, 0);
//! ```

use crate::session::Session;
use moma_bignum::BigUint;
use moma_ntt::plan::{NttPlan64, NttRestoreError};
use moma_rns::{
    BaseConvPlan, ConvRestoreError, PlanRestoreError, RescaleExtendPlan, RescalePlan, RnsPlan,
};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// 8-byte file magic.
const MAGIC: &[u8; 8] = b"MOMASNAP";
/// Current format version.
const VERSION: u32 = 2;
/// Writer toolchain identity, embedded in (and checked against) every
/// snapshot. Derived from the workspace's pinned minimum toolchain: a snapshot
/// from a binary built under a different pin is rejected up front.
const TOOLCHAIN_ID: &str = concat!("rust-", env!("CARGO_PKG_RUST_VERSION"));
/// Writer build identity (crate version), the second half of the
/// compatibility gate.
const BUILD_ID: &str = concat!("moma-", env!("CARGO_PKG_VERSION"));

const TAG_CAPACITY: u32 = 1;
const TAG_NTT64: u32 = 2;
const TAG_NTT_MW: u32 = 3;
const TAG_RNS: u32 = 4;
const TAG_BASECONV: u32 = 5;
const TAG_RESCALE: u32 = 6;
const TAG_RESCALE_EXTEND: u32 = 7;
const TAG_NTT64_NEG: u32 = 8;
const TAG_RING: u32 = 9;

/// Why a snapshot was rejected. Every variant is fail-closed: no cache is
/// seeded from a snapshot that produces one.
#[derive(Debug)]
pub enum SnapshotError {
    /// Shorter than the fixed header + checksum.
    TooShort,
    /// The first eight bytes are not the `MOMASNAP` magic.
    BadMagic,
    /// A version this reader does not speak.
    BadVersion {
        /// The version the snapshot declared.
        found: u32,
    },
    /// The snapshot was written by a different toolchain or build. Checked
    /// immediately after the version — *before* any section or table is read —
    /// so cross-build layout subtleties can never reach the validators.
    IncompatibleBuild {
        /// Which identity mismatched: `"toolchain"` or `"build"`.
        what: &'static str,
        /// The identity this binary requires.
        expected: String,
        /// The identity the snapshot declared.
        found: String,
    },
    /// The trailing FNV-1a checksum does not match the content.
    BadChecksum,
    /// A section or field runs past the end of its payload.
    Truncated,
    /// The same section appears twice.
    DuplicateSection {
        /// The repeated section tag.
        tag: u32,
    },
    /// A tag this reader does not know (a newer writer, or corruption).
    UnknownSection {
        /// The unknown tag.
        tag: u32,
    },
    /// A structurally invalid field (impossible count, unsupported limb
    /// width, a referenced basis missing from the RNS section, …).
    Malformed(&'static str),
    /// A single-word NTT plan failed table validation.
    Ntt(NttRestoreError),
    /// An RNS plan failed CRT-table validation.
    Rns(PlanRestoreError),
    /// A conversion/rescale plan failed table validation.
    Conv(ConvRestoreError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than header + checksum"),
            SnapshotError::BadMagic => write!(f, "not a MoMA snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {VERSION})"
                )
            }
            SnapshotError::IncompatibleBuild {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "incompatible snapshot {what}: written by \"{found}\", this binary is \"{expected}\""
                )
            }
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-field"),
            SnapshotError::DuplicateSection { tag } => {
                write!(f, "section {tag} appears more than once")
            }
            SnapshotError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Ntt(e) => write!(f, "NTT plan rejected: {e}"),
            SnapshotError::Rns(e) => write!(f, "RNS plan rejected: {e}"),
            SnapshotError::Conv(e) => write!(f, "conversion plan rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<NttRestoreError> for SnapshotError {
    fn from(e: NttRestoreError) -> Self {
        SnapshotError::Ntt(e)
    }
}

impl From<PlanRestoreError> for SnapshotError {
    fn from(e: PlanRestoreError) -> Self {
        SnapshotError::Rns(e)
    }
}

impl From<ConvRestoreError> for SnapshotError {
    fn from(e: ConvRestoreError) -> Self {
        SnapshotError::Conv(e)
    }
}

/// What [`Session::restore`] seeded, per cache. Entries already present in the
/// session (same key) are skipped and not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Capacity-bits → basis memo entries.
    pub capacity_entries: usize,
    /// Single-word NTT plans seeded from their tables.
    pub ntt_plans: usize,
    /// Multi-word NTT plans rebuilt from their keys.
    pub multiword_plans: usize,
    /// RNS plans seeded from their CRT tables.
    pub rns_plans: usize,
    /// Base-conversion plans seeded from their tables.
    pub baseconv_plans: usize,
    /// Rescale plans seeded from their inverse tables.
    pub rescale_plans: usize,
    /// Fused rescale-and-extend plans seeded from their component tables.
    pub rescale_extend_plans: usize,
    /// Negacyclic single-word NTT plans seeded from their tables (the `ψ`
    /// twist tables are rebuilt from the validated `ψ`, never deserialized).
    pub negacyclic_plans: usize,
    /// Negacyclic ring contexts reassembled from their `(n, ladder)` keys over
    /// the freshly seeded plan caches.
    pub ring_contexts: usize,
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

fn put_biguint(out: &mut Vec<u8>, v: &BigUint) {
    put_words(out, v.limbs());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// FNV-1a 64 over a byte slice — the integrity trailer. Not cryptographic;
/// the arithmetic validation on load is what provides the actual safety.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A bounds-checked cursor over one section payload (or the whole stream).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A count of `min_entry_bytes`-sized entries, rejected when it could not
    /// possibly fit in the remaining payload (an attacker-controlled count
    /// must not drive a huge allocation).
    fn count(&mut self, min_entry_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if (n as u128) * (min_entry_bytes as u128) > self.remaining() as u128 {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    fn words(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn biguint(&mut self) -> Result<BigUint, SnapshotError> {
        Ok(BigUint::from_limbs_le(self.words()?))
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes in section"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Section payloads (parsed form)
// ---------------------------------------------------------------------------

struct RescaleTables {
    src: Vec<u64>,
    inv_last: Vec<u64>,
}

struct BaseConvTables {
    src: Vec<u64>,
    dst: Vec<u64>,
    inv_punctured: Vec<u64>,
    cross: Vec<u64>,
}

struct RescaleExtendTables {
    src: Vec<u64>,
    dst: Vec<u64>,
    inv_last: Vec<u64>,
    inv_punctured: Vec<u64>,
    cross: Vec<u64>,
    fused: Vec<u64>,
}

/// One parsed 64-bit NTT plan section entry: `(q, n, fwd, inv, n_inv)`.
type Ntt64Tables = (u64, usize, Vec<u64>, Vec<u64>, u64);
/// One parsed negacyclic plan entry: the cyclic tables plus `ψ`.
type Ntt64NegTables = (u64, usize, Vec<u64>, Vec<u64>, u64, u64);
/// One parsed RNS plan section entry: `(moduli, product, crt)`.
type RnsTables = (Vec<u64>, BigUint, Vec<(BigUint, u64)>);
/// A validated conversion plan keyed by its `(src, dst)` basis pair.
type KeyedPlan<P> = ((Vec<u64>, Vec<u64>), Arc<P>);

#[derive(Default)]
struct Parsed {
    capacity: Vec<(u32, Vec<u64>)>,
    ntt64: Vec<Ntt64Tables>,
    ntt_mw: Vec<(u32, u32, usize)>,
    rns: Vec<RnsTables>,
    baseconv: Vec<BaseConvTables>,
    rescale: Vec<RescaleTables>,
    rescale_extend: Vec<RescaleExtendTables>,
    ntt64_neg: Vec<Ntt64NegTables>,
    ring: Vec<(usize, Vec<u64>)>,
}

fn serialize_basis(out: &mut Vec<u8>, plan: &RnsPlan) {
    put_words(out, &plan.moduli().collect::<Vec<u64>>());
}

fn serialize_rns_plan(out: &mut Vec<u8>, plan: &RnsPlan) {
    serialize_basis(out, plan);
    put_biguint(out, plan.product());
    put_u64(out, plan.crt_tables().len() as u64);
    for (mi, yi) in plan.crt_tables() {
        put_biguint(out, mi);
        put_u64(out, *yi);
    }
}

impl Session {
    /// Serializes every published plan cache entry — single- and multi-word
    /// NTT plans, RNS plans, base-conversion/rescale/fused-chain plans, and
    /// the capacity-basis memo — into the versioned snapshot format (see the
    /// [`snapshot`](crate::snapshot) module docs). Plans still mid-build when the
    /// snapshot is taken are simply omitted. The output is deterministic:
    /// entries are sorted by key.
    pub fn snapshot(&self) -> Vec<u8> {
        let state = &self.state;
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_str(&mut out, TOOLCHAIN_ID);
        put_str(&mut out, BUILD_ID);

        // Section 1: capacity memo.
        let capacity: BTreeMap<u32, Vec<u64>> =
            crate::session::lock_unpoisoned(&state.capacity_bases)
                .iter()
                .map(|(bits, moduli)| (*bits, moduli.clone()))
                .collect();
        write_section(&mut out, TAG_CAPACITY, |p| {
            put_u64(p, capacity.len() as u64);
            for (bits, moduli) in &capacity {
                put_u32(p, *bits);
                put_words(p, moduli);
            }
        });

        // Section 2: single-word NTT plans, tables and all.
        let mut ntt64 = state.ntt64.entries();
        ntt64.sort_by_key(|(key, _)| *key);
        write_section(&mut out, TAG_NTT64, |p| {
            put_u64(p, ntt64.len() as u64);
            for ((q, n), plan) in &ntt64 {
                put_u64(p, *q);
                put_u64(p, *n as u64);
                let (fwd, inv) = plan.twiddle_tables();
                put_words(p, fwd);
                put_words(p, inv);
                put_u64(p, plan.n_inv_pair().0);
            }
        });

        // Section 3: multi-word NTT plans, keys only — the tables are a pure
        // function of the key and the session's lowering configuration, and
        // type erasure (`dyn Any`) hides the limb width needed to read them
        // back generically; restore rebuilds them.
        let mut mw: Vec<(u32, u32, usize)> = state
            .ntt_mw
            .entries()
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        mw.sort_unstable();
        write_section(&mut out, TAG_NTT_MW, |p| {
            put_u64(p, mw.len() as u64);
            for (limbs, bits, n) in &mw {
                put_u32(p, *limbs);
                put_u32(p, *bits);
                put_u64(p, *n as u64);
            }
        });

        // Section 4: RNS plans. Conversion plans reference bases by value, so
        // every basis any section mentions must restore from here: include the
        // shortened output bases of rescale plans alongside the cache entries.
        let mut rns: BTreeMap<Vec<u64>, Arc<RnsPlan>> = state.rns.entries().into_iter().collect();
        for (_, rp) in state.rescale.entries() {
            let out_plan = rp.output_plan();
            rns.entry(out_plan.moduli().collect())
                .or_insert_with(|| Arc::new(out_plan.clone()));
        }
        for (_, p) in state.rescale_extend.entries() {
            let out_plan = p.rescale_plan().output_plan();
            rns.entry(out_plan.moduli().collect())
                .or_insert_with(|| Arc::new(out_plan.clone()));
            rns.entry(p.dst_plan().moduli().collect())
                .or_insert_with(|| Arc::new(p.dst_plan().clone()));
        }
        for (key, bc) in state.baseconv.entries() {
            rns.entry(key.1.clone())
                .or_insert_with(|| Arc::new(bc.dst_plan().clone()));
        }
        write_section(&mut out, TAG_RNS, |p| {
            put_u64(p, rns.len() as u64);
            for plan in rns.values() {
                serialize_rns_plan(p, plan);
            }
        });

        // Section 5: base-conversion plans.
        let mut baseconv = state.baseconv.entries();
        baseconv.sort_by(|(a, _), (b, _)| a.cmp(b));
        write_section(&mut out, TAG_BASECONV, |p| {
            put_u64(p, baseconv.len() as u64);
            for ((src, dst), bc) in &baseconv {
                put_words(p, src);
                put_words(p, dst);
                let (ip, cross) = bc.conversion_tables();
                put_words(p, ip);
                put_words(p, cross);
            }
        });

        // Section 6: rescale plans.
        let mut rescale = state.rescale.entries();
        rescale.sort_by(|(a, _), (b, _)| a.cmp(b));
        write_section(&mut out, TAG_RESCALE, |p| {
            put_u64(p, rescale.len() as u64);
            for (src, rp) in &rescale {
                put_words(p, src);
                put_words(p, rp.inverse_table());
            }
        });

        // Section 7: fused rescale-and-extend plans — the component tables of
        // both halves plus the folded factors.
        let mut rescale_extend = state.rescale_extend.entries();
        rescale_extend.sort_by(|(a, _), (b, _)| a.cmp(b));
        write_section(&mut out, TAG_RESCALE_EXTEND, |p| {
            put_u64(p, rescale_extend.len() as u64);
            for ((src, dst), plan) in &rescale_extend {
                put_words(p, src);
                put_words(p, dst);
                put_words(p, plan.rescale_plan().inverse_table());
                let (ip, cross) = plan.base_conv_plan().conversion_tables();
                put_words(p, ip);
                put_words(p, cross);
                put_words(p, plan.fused_factors());
            }
        });

        // Section 8: negacyclic NTT plans — the cyclic tables plus ψ; the
        // twist tables are a pure function of ψ and are rebuilt on restore
        // after ψ itself is validated against the tables (ψ² = ω).
        let mut neg = state.ntt64_neg.entries();
        neg.sort_by_key(|(key, _)| *key);
        write_section(&mut out, TAG_NTT64_NEG, |p| {
            put_u64(p, neg.len() as u64);
            for ((q, n), plan) in &neg {
                put_u64(p, *q);
                put_u64(p, *n as u64);
                let (fwd, inv) = plan.twiddle_tables();
                put_words(p, fwd);
                put_words(p, inv);
                put_u64(p, plan.n_inv_pair().0);
                put_u64(
                    p,
                    plan.psi().expect("negacyclic cache holds negacyclic plans"),
                );
            }
        });

        // Section 9: ring context keys only — a context holds no tables of its
        // own (everything lives in the component caches above), so restore
        // reassembles it over the freshly seeded plans.
        let mut ring: Vec<(usize, Vec<u64>)> = state
            .ring
            .entries()
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        ring.sort();
        write_section(&mut out, TAG_RING, |p| {
            put_u64(p, ring.len() as u64);
            for (n, moduli) in &ring {
                put_u64(p, *n as u64);
                put_words(p, moduli);
            }
        });

        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Validates `bytes` and seeds this session's plan caches from it. Every
    /// table is checked against the arithmetic identities a fresh build would
    /// satisfy; any failure — bad magic, version, checksum, truncation,
    /// tampered table — rejects the *whole* snapshot with a typed error and
    /// seeds nothing. Keys already present in the session keep their existing
    /// plans (restore never evicts).
    pub fn restore(&self, bytes: &[u8]) -> Result<RestoreReport, SnapshotError> {
        let parsed = parse(bytes)?;

        // Validate everything into plain values *before* touching any cache:
        // a snapshot that fails halfway must leave the session untouched.
        let mut ntt_plans: Vec<((u64, usize), Arc<NttPlan64>)> = Vec::new();
        for (q, n, fwd, inv, n_inv) in parsed.ntt64 {
            let plan = NttPlan64::from_tables(q, n, fwd, inv, n_inv)?;
            ntt_plans.push(((q, n), Arc::new(plan)));
        }

        let mut neg_plans: Vec<((u64, usize), Arc<NttPlan64>)> = Vec::new();
        for (q, n, fwd, inv, n_inv, psi) in parsed.ntt64_neg {
            let plan = NttPlan64::from_tables_negacyclic(q, n, fwd, inv, n_inv, psi)?;
            neg_plans.push(((q, n), Arc::new(plan)));
        }

        // Ring keys: validate fully here (shape, congruence, primality) so a
        // hostile key fails closed with an error instead of panicking the
        // reassembly below.
        for (n, moduli) in &parsed.ring {
            if !n.is_power_of_two() || *n < 2 || moduli.is_empty() {
                return Err(SnapshotError::Malformed("invalid ring key"));
            }
            for (i, &q) in moduli.iter().enumerate() {
                if moduli[..i].contains(&q) {
                    return Err(SnapshotError::Malformed("duplicate ring modulus"));
                }
                if !(3..1 << 60).contains(&q) || (q - 1) % (2 * *n as u64) != 0 {
                    return Err(SnapshotError::Malformed(
                        "ring modulus not ≡ 1 mod 2n in range",
                    ));
                }
                if !moma_bignum::prime::is_prime(&mut StdRng::seed_from_u64(q), &BigUint::from(q)) {
                    return Err(SnapshotError::Malformed("ring modulus not prime"));
                }
            }
        }

        let mut rns_plans: HashMap<Vec<u64>, Arc<RnsPlan>> = HashMap::new();
        for (moduli, product, crt) in parsed.rns {
            let plan = RnsPlan::from_tables(&moduli, product, crt)?;
            rns_plans.insert(moduli, Arc::new(plan));
        }
        let lookup = |basis: &[u64]| -> Result<&Arc<RnsPlan>, SnapshotError> {
            rns_plans
                .get(basis)
                .ok_or(SnapshotError::Malformed("referenced basis not in snapshot"))
        };

        let mut baseconv_plans: Vec<KeyedPlan<BaseConvPlan>> = Vec::new();
        for t in parsed.baseconv {
            let src = lookup(&t.src)?;
            let dst = lookup(&t.dst)?;
            let bc = BaseConvPlan::from_tables(src, dst, t.inv_punctured, t.cross)?;
            baseconv_plans.push(((t.src, t.dst), Arc::new(bc)));
        }

        let mut rescale_plans: Vec<(Vec<u64>, Arc<RescalePlan>)> = Vec::new();
        for t in parsed.rescale {
            let src = lookup(&t.src)?;
            if t.src.len() < 2 {
                return Err(SnapshotError::Malformed("rescale basis too small"));
            }
            let out = lookup(&t.src[..t.src.len() - 1])?;
            let rp = RescalePlan::from_tables(src, out.as_ref().clone(), t.inv_last)?;
            rescale_plans.push((t.src, Arc::new(rp)));
        }

        let mut rescale_extend_plans: Vec<KeyedPlan<RescaleExtendPlan>> = Vec::new();
        for t in parsed.rescale_extend {
            let src = lookup(&t.src)?;
            if t.src.len() < 2 {
                return Err(SnapshotError::Malformed("rescale basis too small"));
            }
            let shortened = &t.src[..t.src.len() - 1];
            let out = lookup(shortened)?;
            let dst = lookup(&t.dst)?;
            let rp = RescalePlan::from_tables(src, out.as_ref().clone(), t.inv_last)?;
            let bc = BaseConvPlan::from_tables(out, dst, t.inv_punctured, t.cross)?;
            let plan = RescaleExtendPlan::from_parts(rp, bc, t.fused)?;
            rescale_extend_plans.push(((t.src, t.dst), Arc::new(plan)));
        }

        // Multi-word keys: validate shape, then rebuild (the build is the
        // expensive part being warmed here, so rebuild only below, after all
        // fallible validation has passed).
        for &(limbs, bits, n) in &parsed.ntt_mw {
            if bits != limbs * 64 || !n.is_power_of_two() || n < 2 {
                return Err(SnapshotError::Malformed("invalid multi-word NTT key"));
            }
            if !matches!(limbs, 1 | 2 | 3 | 4 | 5 | 6 | 8 | 12 | 16) {
                return Err(SnapshotError::Malformed("unsupported multi-word width"));
            }
        }

        // All validation passed: seed.
        let state = &self.state;
        let mut report = RestoreReport::default();
        {
            let mut memo = crate::session::lock_unpoisoned(&state.capacity_bases);
            for (bits, moduli) in parsed.capacity {
                if let std::collections::hash_map::Entry::Vacant(e) = memo.entry(bits) {
                    e.insert(moduli);
                    report.capacity_entries += 1;
                }
            }
        }
        for (key, plan) in ntt_plans {
            report.ntt_plans += usize::from(state.ntt64.seed(key, plan));
        }
        for (moduli, plan) in rns_plans {
            report.rns_plans += usize::from(state.rns.seed(moduli, plan));
        }
        for (key, plan) in baseconv_plans {
            report.baseconv_plans += usize::from(state.baseconv.seed(key, plan));
        }
        for (key, plan) in rescale_plans {
            report.rescale_plans += usize::from(state.rescale.seed(key, plan));
        }
        for (key, plan) in rescale_extend_plans {
            report.rescale_extend_plans += usize::from(state.rescale_extend.seed(key, plan));
        }
        for (key, plan) in neg_plans {
            report.negacyclic_plans += usize::from(state.ntt64_neg.seed(key, plan));
        }
        for (limbs, bits, n) in parsed.ntt_mw {
            report.multiword_plans += usize::from(self.rebuild_multiword(limbs, bits, n));
        }
        // Rings last: reassembly draws on every cache seeded above, so a
        // snapshot's ring contexts come back without rebuilding a single
        // component plan.
        for (n, moduli) in parsed.ring {
            report.ring_contexts += usize::from(self.rebuild_ring(n, &moduli));
        }
        Ok(report)
    }

    /// Rebuilds one multi-word NTT plan from its key through the normal cache
    /// path, dispatching the runtime limb count onto the const-generic plan
    /// type. Returns `false` when the key was already cached.
    fn rebuild_multiword(&self, limbs: u32, bits: u32, n: usize) -> bool {
        let before = self.stats().ntt_multiword;
        match limbs {
            1 => drop(self.ntt_multiword::<1>(bits, n)),
            2 => drop(self.ntt_multiword::<2>(bits, n)),
            3 => drop(self.ntt_multiword::<3>(bits, n)),
            4 => drop(self.ntt_multiword::<4>(bits, n)),
            5 => drop(self.ntt_multiword::<5>(bits, n)),
            6 => drop(self.ntt_multiword::<6>(bits, n)),
            8 => drop(self.ntt_multiword::<8>(bits, n)),
            12 => drop(self.ntt_multiword::<12>(bits, n)),
            16 => drop(self.ntt_multiword::<16>(bits, n)),
            _ => unreachable!("limb widths validated before seeding"),
        }
        self.stats().ntt_multiword.misses > before.misses
    }

    /// Reassembles one ring context from its key through the normal cache
    /// path (its component plans were just seeded). Returns `false` when the
    /// key was already cached.
    fn rebuild_ring(&self, n: usize, moduli: &[u64]) -> bool {
        let before = self.stats().ring;
        drop(self.ring_context(n, moduli));
        self.stats().ring.misses > before.misses
    }
}

fn write_section(out: &mut Vec<u8>, tag: u32, fill: impl FnOnce(&mut Vec<u8>)) {
    put_u32(out, tag);
    let len_at = out.len();
    put_u64(out, 0); // patched below
    let start = out.len();
    fill(out);
    let len = (out.len() - start) as u64;
    out[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

/// Validates the envelope (magic, version, checksum) and parses every section
/// payload into plain tables. No arithmetic validation happens here — that is
/// the restore constructors' job.
fn parse(bytes: &[u8]) -> Result<Parsed, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::TooShort);
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(content) != declared {
        return Err(SnapshotError::BadChecksum);
    }
    let mut reader = Reader::new(content);
    if reader.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = reader.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    // Compatibility gate: toolchain and build identity, checked before any
    // section is parsed — a cross-build snapshot never reaches the table
    // validators.
    for (what, expected) in [("toolchain", TOOLCHAIN_ID), ("build", BUILD_ID)] {
        let len = reader.u32()? as usize;
        if len > 256 {
            return Err(SnapshotError::Malformed("oversized identity string"));
        }
        let found = reader.take(len)?;
        if found != expected.as_bytes() {
            return Err(SnapshotError::IncompatibleBuild {
                what,
                expected: expected.to_string(),
                found: String::from_utf8_lossy(found).into_owned(),
            });
        }
    }

    let mut parsed = Parsed::default();
    let mut seen: Vec<u32> = Vec::new();
    while reader.remaining() > 0 {
        let tag = reader.u32()?;
        let len = reader.u64()? as usize;
        let payload = reader.take(len)?;
        if seen.contains(&tag) {
            return Err(SnapshotError::DuplicateSection { tag });
        }
        seen.push(tag);
        let mut r = Reader::new(payload);
        match tag {
            TAG_CAPACITY => {
                let n = r.count(4 + 8)?;
                for _ in 0..n {
                    let bits = r.u32()?;
                    let moduli = r.words()?;
                    parsed.capacity.push((bits, moduli));
                }
            }
            TAG_NTT64 => {
                let n = r.count(8 * 5)?;
                for _ in 0..n {
                    let q = r.u64()?;
                    let size = r.u64()? as usize;
                    let fwd = r.words()?;
                    let inv = r.words()?;
                    let n_inv = r.u64()?;
                    parsed.ntt64.push((q, size, fwd, inv, n_inv));
                }
            }
            TAG_NTT_MW => {
                let n = r.count(4 + 4 + 8)?;
                for _ in 0..n {
                    let limbs = r.u32()?;
                    let bits = r.u32()?;
                    let size = r.u64()? as usize;
                    parsed.ntt_mw.push((limbs, bits, size));
                }
            }
            TAG_RNS => {
                let n = r.count(8 * 3)?;
                for _ in 0..n {
                    let moduli = r.words()?;
                    let product = r.biguint()?;
                    let entries = r.count(8 * 2)?;
                    let crt = (0..entries)
                        .map(|_| Ok((r.biguint()?, r.u64()?)))
                        .collect::<Result<Vec<_>, SnapshotError>>()?;
                    parsed.rns.push((moduli, product, crt));
                }
            }
            TAG_BASECONV => {
                let n = r.count(8 * 4)?;
                for _ in 0..n {
                    parsed.baseconv.push(BaseConvTables {
                        src: r.words()?,
                        dst: r.words()?,
                        inv_punctured: r.words()?,
                        cross: r.words()?,
                    });
                }
            }
            TAG_RESCALE => {
                let n = r.count(8 * 2)?;
                for _ in 0..n {
                    parsed.rescale.push(RescaleTables {
                        src: r.words()?,
                        inv_last: r.words()?,
                    });
                }
            }
            TAG_RESCALE_EXTEND => {
                let n = r.count(8 * 6)?;
                for _ in 0..n {
                    parsed.rescale_extend.push(RescaleExtendTables {
                        src: r.words()?,
                        dst: r.words()?,
                        inv_last: r.words()?,
                        inv_punctured: r.words()?,
                        cross: r.words()?,
                        fused: r.words()?,
                    });
                }
            }
            TAG_NTT64_NEG => {
                let n = r.count(8 * 6)?;
                for _ in 0..n {
                    let q = r.u64()?;
                    let size = r.u64()? as usize;
                    let fwd = r.words()?;
                    let inv = r.words()?;
                    let n_inv = r.u64()?;
                    let psi = r.u64()?;
                    parsed.ntt64_neg.push((q, size, fwd, inv, n_inv, psi));
                }
            }
            TAG_RING => {
                let n = r.count(8 * 2)?;
                for _ in 0..n {
                    let size = r.u64()? as usize;
                    let moduli = r.words()?;
                    parsed.ring.push((size, moduli));
                }
            }
            other => return Err(SnapshotError::UnknownSection { tag: other }),
        }
        r.finish()?;
    }
    Ok(parsed)
}
