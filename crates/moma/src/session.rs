//! `Session` — one cached, typed entry point for plans, kernels, and fused RNS
//! chains, shareable across any number of threads.
//!
//! The paper's discipline is *compile once, execute many*: kernels are generated
//! per (operation, bit-width) and reused across launches, and every runtime
//! subsystem in this reproduction has its own precompute-once object —
//! [`NttPlan64`]/[`NttPlan`], [`RnsPlan`], [`BaseConvPlan`], [`RescalePlan`],
//! [`RescaleExtendPlan`], `CompiledKernel`. Before this module, callers had to
//! hand-assemble those objects and pick among execution paths by hand. A
//! [`Session`] is the one owner of all of them:
//!
//! * it owns a device ([`DeviceSpec`]) and the [`CostModel`] derived from it,
//!   which drives automatic execution-path selection (fused vs two-pass chains,
//!   direct vs generated-kernel conversions);
//! * it owns a *generated-kernel* cache (keyed by operation, bit-width, and
//!   multiplication algorithm) and a *compiled-kernel* cache
//!   ([`moma_ir::KernelCache`], keyed by operation, width, and baked-in
//!   modulus);
//! * it owns plan caches: [`NttPlan64`] keyed by `(q, n)`, multi-word
//!   [`NttPlan`] keyed by `(limbs, bits, n)`, [`RnsPlan`] keyed by basis,
//!   [`BaseConvPlan`]/[`RescaleExtendPlan`] keyed by basis pair, and
//!   [`RescalePlan`] keyed by basis.
//!
//! Every `get_or_build` is **hit-counted** ([`Session::stats`]), so reuse is a
//! testable property, not a hope: the second request for any plan or kernel
//! builds nothing.
//!
//! # Sharing and concurrency
//!
//! `Session` is a cheap handle: [`Session::clone`] shares one cache state (the
//! expensive tables live behind an internal [`Arc`]), every method takes
//! `&self`, and the session and all of its handles are `Send + Sync + 'static`
//! (statically asserted below). A warm session can therefore be hit from any
//! number of threads, and the handles it gives out — [`NttSpace`],
//! [`RnsSpace`], [`RnsVec`] — are *owned*: they can cross threads, sit in a
//! request queue, or live inside a server for as long as they like.
//!
//! Concurrent cache access is stampede-controlled: an expensive build (say, the
//! twiddle tables of an `n = 2^14` NTT plan) runs **outside** the cache map
//! lock. Concurrent requests for the *same* key still build exactly once — the
//! first requester claims the key and later ones block on that one build
//! (counted in [`CacheStats::contended`]) — while requests for *different* keys
//! build in parallel, never serializing behind each other. A builder that
//! panics unclaims its key and wakes the waiters, so one poisoned build cannot
//! wedge a long-lived serving session.
//!
//! ```
//! use moma::Session;
//!
//! let session = Session::default();
//! let worker = session.clone(); // shares the same caches
//! std::thread::spawn(move || {
//!     let ntt = worker.ntt_default(64); // an owned, Send + 'static handle
//!     assert_eq!(ntt.n(), 64);
//! })
//! .join()
//! .unwrap();
//! // The spawned thread's build is visible here: the same plan is a cache hit.
//! let _ = session.ntt_default(64);
//! assert_eq!(session.stats().ntt.misses, 1);
//! assert_eq!(session.stats().ntt.hits, 1);
//! ```
//!
//! On top of the caches sit typed handles: [`Session::rns`] yields an
//! [`RnsSpace`] whose [`RnsVec`]s chain `add`/`mul`/`axpy`/`base_convert`/
//! `rescale`/[`RnsVec::rescale_then_extend`] (the fused BEHZ `FastBConvSK`
//! chain, selected automatically over the two-pass path by the cost model), and
//! [`Session::ntt`] yields an [`NttSpace`] whose
//! [`NttSpace::forward_batch`] runs many transforms with one launch per
//! butterfly stage (grid = batch × n/2) — the paper's batched NTT.
//!
//! # Example
//!
//! ```
//! use moma::bignum::BigUint;
//! use moma::Session;
//!
//! let session = Session::default();
//! let src = session.rns_with_capacity(128);
//! // Chain: elementwise multiply, then the fused rescale-and-extend.
//! let a = src.encode(&[BigUint::from(7u64), BigUint::from(11u64)]);
//! let b = src.encode(&[BigUint::from(5u64), BigUint::from(3u64)]);
//! let extended = a.mul(&b).rescale_then_extend(&src);
//! assert_eq!(extended.len(), 2);
//! // The second identical chain hits every cache.
//! let before = session.stats().rescale_extend.misses;
//! let _ = a.mul(&b).rescale_then_extend(&src);
//! assert_eq!(session.stats().rescale_extend.misses, before);
//! ```

use crate::compiler::{Compiler, GeneratedKernel};
use crate::engine::Series;
use moma_bignum::BigUint;
use moma_blas::BlasOp;
use moma_gpu::launch::LaunchStats;
use moma_gpu::pool::{BufferPool, PoolStats};
use moma_gpu::{CostModel, DeviceSpec};
use moma_ir::cache::{KernelCache, KernelCacheKey};
use moma_ir::compiled::CompiledKernel;
use moma_ir::cost::OpCounts;
use moma_ntt::plan::{NttPlan, NttPlan64};
use moma_rewrite::{KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
use moma_ring::{Domain, RingContext, RingElt, RingPlanSource};
use moma_rns::{BaseConvPlan, RescaleExtendPlan, RescalePlan, RnsContext, RnsMatrix, RnsPlan};
use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Hit/miss counters of one session cache (a snapshot; see [`Session::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to build.
    pub misses: u64,
    /// Requests that blocked on another thread's in-flight build of the same
    /// key (each is also counted as a hit once the build publishes). Contention
    /// on *different* keys never happens by construction — builds run outside
    /// the map lock.
    pub contended: u64,
}

/// Snapshot of every session cache's hit/miss counters.
///
/// Tests assert reuse with these: after a warm-up call, an identical request
/// must increment only `hits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Generated-kernel cache (op, bit-width, multiplication algorithm).
    pub generated: CacheStats,
    /// Compiled per-modulus kernel cache (op, width, modulus).
    pub kernels: CacheStats,
    /// Single-word NTT plans, keyed by `(q, n)`.
    pub ntt: CacheStats,
    /// Negacyclic single-word NTT plans (`ψ`-twisted), keyed by `(q, n)` —
    /// separate from `ntt` so a ladder's reuse is observable on its own
    /// counters (and the two plan shapes can never collide on a key).
    pub ntt_negacyclic: CacheStats,
    /// Multi-word NTT plans, keyed by `(limbs, bits, n)`.
    pub ntt_multiword: CacheStats,
    /// RNS plans, keyed by basis.
    pub rns: CacheStats,
    /// Base-conversion plans, keyed by basis pair.
    pub baseconv: CacheStats,
    /// Rescale plans, keyed by basis.
    pub rescale: CacheStats,
    /// Fused rescale-and-extend plans, keyed by basis pair.
    pub rescale_extend: CacheStats,
    /// Negacyclic ring contexts, keyed by `(n, moduli ladder)`. A context is
    /// assembled from the other caches, so a ring miss still reuses every
    /// shared plan underneath it.
    pub ring: CacheStats,
    /// Compiled all-rows fused chain kernels — base conversion, `mul→axpy`,
    /// `mul→rescale→extend` — keyed by basis (pair). One entry per chain
    /// *shape*: scalars and operands are kernel parameters, so a second
    /// identical chain request is all hits.
    pub fused: CacheStats,
    /// The session buffer pool's counters: once the pool is warm, a
    /// steady-state serving loop must report zero further misses — the
    /// allocation-free property tests assert.
    pub pool: PoolStats,
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Session caches only ever hold fully constructed `Arc`s, and every multi-step
/// update happens outside the lock, so the data behind a poisoned lock is
/// always valid — a panicked builder thread must not wedge a long-lived
/// serving session.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One cache slot: the in-flight or finished result of a single keyed build.
enum SlotState<V: ?Sized> {
    /// The claiming thread is running the builder outside the map lock.
    Building,
    /// The published result.
    Ready(Arc<V>),
    /// The builder panicked and unclaimed the key; waiters retry the lookup.
    Failed,
}

struct Slot<V: ?Sized> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

impl<V: ?Sized> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Building),
            ready: Condvar::new(),
        }
    }
}

/// A hit-counted `get_or_build` map with per-key stampede control.
///
/// The map lock is held only to *find or claim* a slot — never while building.
/// Concurrent requests for the same key build exactly once (later requesters
/// block on the claimant's slot); requests for different keys build fully in
/// parallel. A panicking builder unclaims its key (the slot is removed and its
/// waiters woken to retry), so no panic leaves the cache wedged.
pub(crate) struct PlanCache<K, V: ?Sized> {
    map: Mutex<HashMap<K, Arc<Slot<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

impl<K: std::hash::Hash + Eq, V: ?Sized> Default for PlanCache<K, V> {
    fn default() -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }
}

/// Removes a claimed-but-unpublished key when the builder unwinds, marking the
/// slot failed and waking its waiters so they can retry (and re-claim) instead
/// of blocking forever.
struct UnclaimOnPanic<'a, K: std::hash::Hash + Eq + Clone, V: ?Sized> {
    cache: &'a PlanCache<K, V>,
    key: &'a K,
    slot: &'a Arc<Slot<V>>,
    armed: bool,
}

impl<K: std::hash::Hash + Eq + Clone, V: ?Sized> Drop for UnclaimOnPanic<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut map = lock_unpoisoned(&self.cache.map);
        if map
            .get(self.key)
            .is_some_and(|slot| Arc::ptr_eq(slot, self.slot))
        {
            map.remove(self.key);
        }
        drop(map);
        *lock_unpoisoned(&self.slot.state) = SlotState::Failed;
        self.slot.ready.notify_all();
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: ?Sized> PlanCache<K, V> {
    pub(crate) fn get_or_build(&self, key: K, build: impl FnOnce() -> Arc<V>) -> Arc<V> {
        loop {
            // Hold the map lock only long enough to find or claim the slot.
            let claimed = {
                let mut map = lock_unpoisoned(&self.map);
                match map.entry(key.clone()) {
                    Entry::Occupied(entry) => Err(Arc::clone(entry.get())),
                    Entry::Vacant(entry) => Ok(Arc::clone(entry.insert(Arc::new(Slot::new())))),
                }
            };
            match claimed {
                Ok(slot) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let mut guard = UnclaimOnPanic {
                        cache: self,
                        key: &key,
                        slot: &slot,
                        armed: true,
                    };
                    let built = build();
                    guard.armed = false;
                    *lock_unpoisoned(&slot.state) = SlotState::Ready(Arc::clone(&built));
                    slot.ready.notify_all();
                    return built;
                }
                Err(slot) => {
                    let mut state = lock_unpoisoned(&slot.state);
                    if matches!(*state, SlotState::Building) {
                        self.contended.fetch_add(1, Ordering::Relaxed);
                        while matches!(*state, SlotState::Building) {
                            state = slot
                                .ready
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    match &*state {
                        SlotState::Ready(value) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Arc::clone(value);
                        }
                        // The builder panicked; retry (possibly claiming the
                        // key ourselves this time).
                        SlotState::Failed => continue,
                        SlotState::Building => unreachable!("woken while still building"),
                    }
                }
            }
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }

    /// Every published entry, for snapshotting. In-flight builds are skipped —
    /// a snapshot taken mid-build simply omits that plan.
    pub(crate) fn entries(&self) -> Vec<(K, Arc<V>)> {
        let map = lock_unpoisoned(&self.map);
        map.iter()
            .filter_map(|(k, slot)| match &*lock_unpoisoned(&slot.state) {
                SlotState::Ready(value) => Some((k.clone(), Arc::clone(value))),
                _ => None,
            })
            .collect()
    }

    /// Publishes a prebuilt value under `key` unless the key is already
    /// present — the warm-start seeding path of [`Session::restore`]. Seeding
    /// counts as neither hit nor miss: the counters keep measuring what this
    /// process built or reused, not what a snapshot shipped in.
    pub(crate) fn seed(&self, key: K, value: Arc<V>) -> bool {
        let mut map = lock_unpoisoned(&self.map);
        match map.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(entry) => {
                let slot = Arc::new(Slot::new());
                *lock_unpoisoned(&slot.state) = SlotState::Ready(value);
                entry.insert(slot);
                true
            }
        }
    }
}

/// Everything a session owns, shared by all of its clones. Crate-private: the
/// public surface is [`Session`], the cheap handle around it (the snapshot
/// module reaches in to serialize and seed the plan caches).
pub(crate) struct SessionState {
    device: DeviceSpec,
    compiler: Compiler,
    cost: CostModel,
    generated: PlanCache<(KernelOp, u32, MulAlgorithm), GeneratedKernel>,
    kernels: KernelCache,
    /// Compiled all-rows fused chain kernels, separate from the per-modulus
    /// `kernels` cache so chain-fusion reuse is observable on its own counters.
    fused: KernelCache,
    pub(crate) ntt64: PlanCache<(u64, usize), NttPlan64>,
    /// Negacyclic (`ψ`-twisted) single-word plans — a separate cache from
    /// `ntt64` because the same `(q, n)` key legitimately names both a cyclic
    /// and a negacyclic plan.
    pub(crate) ntt64_neg: PlanCache<(u64, usize), NttPlan64>,
    pub(crate) ntt_mw: PlanCache<(u32, u32, usize), dyn Any + Send + Sync>,
    pub(crate) rns: PlanCache<Vec<u64>, RnsPlan>,
    /// Capacity-bits → deterministic basis memo, so repeated
    /// [`Session::rns_with_capacity`] calls skip the prime search (a plain memo,
    /// not a hit-counted plan cache: it holds no built plan).
    pub(crate) capacity_bases: Mutex<HashMap<u32, Vec<u64>>>,
    pub(crate) baseconv: PlanCache<(Vec<u64>, Vec<u64>), BaseConvPlan>,
    pub(crate) rescale: PlanCache<Vec<u64>, RescalePlan>,
    pub(crate) rescale_extend: PlanCache<(Vec<u64>, Vec<u64>), RescaleExtendPlan>,
    /// Negacyclic ring contexts, keyed by `(n, moduli ladder)`; the context
    /// plans are drawn from the caches above via [`RingPlanSource`].
    pub(crate) ring: PlanCache<(usize, Vec<u64>), RingContext>,
    /// Reusable residue/twiddle planes and launcher scratch, shared by every
    /// clone and every handle: hot-path operations acquire their working
    /// buffers here and recycle them on handle drop, so a warm session's
    /// steady state allocates nothing.
    pool: BufferPool,
}

/// The cached, typed entry point to the whole MoMA runtime (see the
/// [module docs](self)).
///
/// A `Session` is a cheap, clonable handle over shared cache state:
/// [`Session::clone`] gives another handle to the *same* caches, every method
/// takes `&self`, and the session and all handles it yields are
/// `Send + Sync + 'static` — one warm session serves any number of threads.
/// Construction is cheap; everything expensive is built on first use, cached,
/// and stampede-controlled (see the module docs).
#[derive(Clone)]
pub struct Session {
    pub(crate) state: Arc<SessionState>,
}

// Compile-time proof of the sharing contract: the session and every handle it
// yields cross threads and outlive any borrow.
const _: () = {
    const fn shareable<T: Send + Sync + 'static>() {}
    shareable::<Session>();
    shareable::<SessionStats>();
    shareable::<NttSpace>();
    shareable::<RnsSpace>();
    shareable::<RnsVec>();
    shareable::<RingSpace>();
    shareable::<RingVec>();
};

impl Default for Session {
    /// A session on the paper's primary device (H100) with the default
    /// lowering configuration.
    fn default() -> Self {
        Session::new(DeviceSpec::H100)
    }
}

impl Session {
    /// Creates a session for one device with the default lowering
    /// configuration.
    pub fn new(device: DeviceSpec) -> Self {
        Session::with_config(device, LoweringConfig::default())
    }

    /// Creates a session with an explicit lowering configuration (word width,
    /// multiplication algorithm, optimization switches).
    pub fn with_config(device: DeviceSpec, config: LoweringConfig) -> Self {
        Session {
            state: Arc::new(SessionState {
                device,
                compiler: Compiler::new(config),
                cost: CostModel::new(device),
                generated: PlanCache::default(),
                kernels: KernelCache::new(),
                fused: KernelCache::new(),
                ntt64: PlanCache::default(),
                ntt64_neg: PlanCache::default(),
                ntt_mw: PlanCache::default(),
                rns: PlanCache::default(),
                capacity_bases: Mutex::new(HashMap::new()),
                baseconv: PlanCache::default(),
                rescale: PlanCache::default(),
                rescale_extend: PlanCache::default(),
                ring: PlanCache::default(),
                pool: BufferPool::new(),
            }),
        }
    }

    /// Returns `true` if `other` shares this session's cache state (i.e. one is
    /// a clone of the other).
    pub fn shares_state_with(&self, other: &Session) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// The device this session models and selects execution paths for.
    pub fn device(&self) -> DeviceSpec {
        self.state.device
    }

    /// The cost model path selection runs on.
    pub fn cost_model(&self) -> &CostModel {
        &self.state.cost
    }

    /// The session's shared buffer pool: residue planes and launcher scratch
    /// are acquired here by every hot-path operation and recycled when their
    /// owning handle drops. Servers can route their own transient buffers
    /// through it too, keeping the whole request path allocation-free once
    /// warm.
    pub fn pool(&self) -> &BufferPool {
        &self.state.pool
    }

    /// Snapshot of every cache's hit/miss counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            generated: self.state.generated.stats(),
            kernels: CacheStats {
                hits: self.state.kernels.hits(),
                misses: self.state.kernels.misses(),
                contended: 0,
            },
            ntt: self.state.ntt64.stats(),
            ntt_negacyclic: self.state.ntt64_neg.stats(),
            ntt_multiword: self.state.ntt_mw.stats(),
            rns: self.state.rns.stats(),
            baseconv: self.state.baseconv.stats(),
            rescale: self.state.rescale.stats(),
            rescale_extend: self.state.rescale_extend.stats(),
            ring: self.state.ring.stats(),
            fused: CacheStats {
                hits: self.state.fused.hits(),
                misses: self.state.fused.misses(),
                contended: 0,
            },
            pool: self.state.pool.stats(),
        }
    }

    // ------------------------------------------------------------------
    // Generated kernels and modelled estimates
    // ------------------------------------------------------------------

    /// Generates (or returns the cached) kernel for `spec` under the session's
    /// lowering configuration.
    pub fn compile(&self, spec: &KernelSpec) -> Arc<GeneratedKernel> {
        self.compile_with_algorithm(spec, self.state.compiler.config.mul_algorithm)
    }

    /// Like [`Session::compile`], with an explicit multiplication algorithm
    /// (the §5.4 ablation axis) — part of the generated-kernel cache key.
    pub fn compile_with_algorithm(
        &self,
        spec: &KernelSpec,
        alg: MulAlgorithm,
    ) -> Arc<GeneratedKernel> {
        let state = &self.state;
        state.generated.get_or_build((spec.op, spec.bits, alg), || {
            let compiler = Compiler::new(LoweringConfig {
                mul_algorithm: alg,
                ..state.compiler.config
            });
            Arc::new(compiler.compile(spec))
        })
    }

    /// Word-level operation counts of one generated butterfly at a bit-width
    /// (cached).
    pub fn butterfly_op_counts(&self, bits: u32, alg: MulAlgorithm) -> OpCounts {
        self.compile_with_algorithm(&KernelSpec::new(KernelOp::Butterfly, bits), alg)
            .op_counts
            .clone()
    }

    /// Word-level operation counts of one generated BLAS element kernel
    /// (cached).
    pub fn blas_op_counts(&self, op: KernelOp, bits: u32, alg: MulAlgorithm) -> OpCounts {
        self.compile_with_algorithm(&KernelSpec::new(op, bits), alg)
            .op_counts
            .clone()
    }

    /// Modelled NTT runtime per butterfly (nanoseconds) on a device — the
    /// y-axis of the paper's Figures 1, 3, and 4. The generated butterfly is
    /// compiled once per (bit-width, algorithm) and shared across devices.
    pub fn modelled_ntt_ns_per_butterfly(
        &self,
        device: DeviceSpec,
        bits: u32,
        log2_n: u32,
        alg: MulAlgorithm,
    ) -> f64 {
        let counts = self.butterfly_op_counts(bits, alg);
        CostModel::new(device).ntt_time_per_butterfly_ns(&counts, 1u64 << log2_n, bits)
    }

    /// Modelled BLAS runtime per element (nanoseconds) on a device — the
    /// y-axis of the paper's Figure 2.
    pub fn modelled_blas_ns_per_element(
        &self,
        device: DeviceSpec,
        op: KernelOp,
        bits: u32,
        elements: u64,
    ) -> f64 {
        let counts = self.blas_op_counts(op, bits, MulAlgorithm::Schoolbook);
        // Each element reads two operands and writes one result.
        let bytes = 3 * (bits as u64 / 8);
        let est = CostModel::new(device).estimate_launch(&counts, elements, bytes);
        est.nanos() / elements as f64
    }

    /// Builds the modelled MoMA series for one NTT figure panel (one bit-width,
    /// a range of transform sizes) across the three paper devices, off the
    /// shared generated-kernel cache.
    pub fn ntt_series(&self, bits: u32, log_sizes: &[u32], alg: MulAlgorithm) -> Vec<Series> {
        DeviceSpec::all()
            .iter()
            .map(|device| Series {
                system: "MoMA (modelled)".to_string(),
                platform: device.name.to_string(),
                points: log_sizes
                    .iter()
                    .map(|&log_n| {
                        (
                            log_n,
                            self.modelled_ntt_ns_per_butterfly(*device, bits, log_n, alg),
                        )
                    })
                    .collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // NTT spaces
    // ------------------------------------------------------------------

    /// The `n`-point single-word NTT space over the prime modulus `q`,
    /// building (or reusing) the `(q, n)`-keyed [`NttPlan64`]. The returned
    /// handle is owned (`Send + 'static`): it can cross threads or sit in a
    /// queue, and keeps the session's caches alive.
    ///
    /// # Panics
    ///
    /// Panics under the [`moma_ntt::Ntt64::with_modulus`] conditions (n not a
    /// power of two, q not an NTT-friendly prime below `2^60`). A concurrent
    /// request that loses the build race to a panicking builder retries and
    /// panics the same way.
    pub fn ntt(&self, q: u64, n: usize) -> NttSpace {
        NttSpace {
            session: self.clone(),
            plan: self
                .state
                .ntt64
                .get_or_build((q, n), || Arc::new(NttPlan64::with_modulus(q, n))),
        }
    }

    /// The `n`-point *negacyclic* NTT space over `q` (the `X^n + 1` transform:
    /// `ψ`-twist folded into both directions), building (or reusing) the
    /// `(q, n)`-keyed plan in its own cache. The handle's batched entry points
    /// work unchanged — the twist lives entirely inside the plan.
    ///
    /// # Panics
    ///
    /// Panics under the [`NttPlan64::negacyclic`] conditions (n not a power of
    /// two, q not a prime `≡ 1 (mod 2n)` below `2^60`).
    pub fn ntt_negacyclic(&self, q: u64, n: usize) -> NttSpace {
        NttSpace {
            session: self.clone(),
            plan: self.negacyclic_plan_for(q, n),
        }
    }

    fn negacyclic_plan_for(&self, q: u64, n: usize) -> Arc<NttPlan64> {
        self.state
            .ntt64_neg
            .get_or_build((q, n), || Arc::new(NttPlan64::negacyclic(q, n)))
    }

    /// The `n`-point NTT space over the paper's 60-bit evaluation modulus.
    pub fn ntt_default(&self, n: usize) -> NttSpace {
        let q = moma_ntt::params::paper_modulus(64)
            .to_u64()
            .expect("60-bit modulus");
        self.ntt(q, n)
    }

    /// The cached `n`-point multi-word NTT plan for `bits`-bit kernels over
    /// `L` limbs, keyed by `(L, bits, n)`.
    ///
    /// # Panics
    ///
    /// Panics under the [`moma_ntt::NttParams::for_paper_modulus`] conditions.
    pub fn ntt_multiword<const L: usize>(&self, bits: u32, n: usize) -> Arc<NttPlan<L>> {
        let alg = match self.state.compiler.config.mul_algorithm {
            MulAlgorithm::Schoolbook => moma_mp::MulAlgorithm::Schoolbook,
            MulAlgorithm::Karatsuba => moma_mp::MulAlgorithm::Karatsuba,
        };
        let plan = self.state.ntt_mw.get_or_build((L as u32, bits, n), || {
            Arc::new(NttPlan::<L>::for_paper_modulus(n, bits, alg))
        });
        plan.downcast::<NttPlan<L>>()
            .unwrap_or_else(|_| unreachable!("multi-word plan cache key includes the limb count"))
    }

    // ------------------------------------------------------------------
    // RNS spaces and chain plans
    // ------------------------------------------------------------------

    /// The RNS space over an explicit basis of distinct word-sized primes,
    /// building (or reusing) the basis-keyed [`RnsPlan`]. The returned handle
    /// is owned (`Send + 'static`), like every session handle.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsContext::with_moduli`] conditions (composite,
    /// duplicate, or oversized moduli).
    pub fn rns(&self, moduli: &[u64]) -> RnsSpace {
        RnsSpace {
            plan: self.rns_plan(moduli),
            session: self.clone(),
        }
    }

    /// The RNS space over the deterministic basis covering at least `bits`
    /// bits of dynamic range (same basis as [`RnsContext::with_capacity_bits`]).
    pub fn rns_with_capacity(&self, bits: u32) -> RnsSpace {
        // Memoize capacity → basis so repeated requests skip the deterministic
        // prime search entirely; the plan itself then comes from (or seeds) the
        // basis-keyed cache.
        let mut built_ctx = None;
        let moduli = {
            let mut memo = lock_unpoisoned(&self.state.capacity_bases);
            memo.entry(bits)
                .or_insert_with(|| {
                    let ctx = RnsContext::with_capacity_bits(bits);
                    let moduli = ctx.moduli().to_vec();
                    built_ctx = Some(ctx);
                    moduli
                })
                .clone()
        };
        RnsSpace {
            plan: self.state.rns.get_or_build(moduli, || {
                let ctx = built_ctx.unwrap_or_else(|| RnsContext::with_capacity_bits(bits));
                Arc::new(RnsPlan::new(&ctx))
            }),
            session: self.clone(),
        }
    }

    fn rns_plan(&self, moduli: &[u64]) -> Arc<RnsPlan> {
        self.state.rns.get_or_build(moduli.to_vec(), || {
            Arc::new(RnsPlan::new(&RnsContext::with_moduli(moduli)))
        })
    }

    // ------------------------------------------------------------------
    // Negacyclic rings
    // ------------------------------------------------------------------

    /// The negacyclic ring `R_Q = Z_Q[X]/(X^n + 1)` over the moduli ladder
    /// `Q = q₀·…·q_L`, building (or reusing) the `(n, ladder)`-keyed
    /// [`RingContext`]. The context is assembled through the session's plan
    /// caches ([`RingPlanSource`]), so its negacyclic NTT plans, per-level RNS
    /// plans, and fused rescale steps are all shared with any other ring — or
    /// direct space — over the same parameters.
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::with_source`] conditions (n not a power
    /// of two, a modulus not prime or not `≡ 1 (mod 2n)`).
    pub fn ring(&self, n: usize, moduli: &[u64]) -> RingSpace {
        RingSpace {
            ring: self.ring_context(n, moduli),
            session: self.clone(),
        }
    }

    pub(crate) fn ring_context(&self, n: usize, moduli: &[u64]) -> Arc<RingContext> {
        self.state.ring.get_or_build((n, moduli.to_vec()), || {
            Arc::new(RingContext::with_source(n, moduli, self))
        })
    }

    fn baseconv_plan(&self, src: &Arc<RnsPlan>, dst: &Arc<RnsPlan>) -> Arc<BaseConvPlan> {
        let key = (src.moduli().collect(), dst.moduli().collect());
        self.state
            .baseconv
            .get_or_build(key, || Arc::new(BaseConvPlan::new(src, dst)))
    }

    fn rescale_plan_for(&self, src: &Arc<RnsPlan>) -> Arc<RescalePlan> {
        self.state
            .rescale
            .get_or_build(src.moduli().collect(), || Arc::new(src.rescale_plan()))
    }

    fn rescale_extend_plan_for(
        &self,
        src: &Arc<RnsPlan>,
        dst: &Arc<RnsPlan>,
    ) -> Arc<RescaleExtendPlan> {
        let key = (src.moduli().collect(), dst.moduli().collect());
        self.state
            .rescale_extend
            .get_or_build(key, || Arc::new(src.rescale_extend_plan(dst)))
    }

    /// The compiled per-target-modulus MAC kernels of a conversion plan, served
    /// from the session kernel cache under
    /// `("baseconv_mac[<source basis>]", 64, m'_s)` keys — so every conversion
    /// over the same basis pair, from any plan object, shares one compilation.
    fn baseconv_mac_kernels(&self, bc: &BaseConvPlan, src: &RnsPlan) -> Vec<Arc<CompiledKernel>> {
        // The kernel constants depend on the source basis (cross-row tables),
        // not just the target modulus; the key carries the source moduli
        // verbatim — two bases must never share a key, a hash could collide.
        let op = format!("baseconv_mac[{}]", basis_key(src));
        bc.dst_plan()
            .moduli()
            .enumerate()
            .map(|(s, m)| {
                self.state
                    .kernels
                    .get_or_compile(KernelCacheKey::new(op.clone(), 64, m), || {
                        bc.mac_kernel_ir(s)
                    })
                    .expect("generated baseconv kernels compile")
            })
            .collect()
    }

    /// The compiled all-rows fused conversion kernel of `bc`
    /// ([`BaseConvPlan::fused_kernel_ir`]), served from the session's
    /// fused-chain kernel cache under a basis-pair key.
    fn baseconv_fused_kernel(&self, bc: &BaseConvPlan, src: &RnsPlan) -> Arc<CompiledKernel> {
        let op = format!(
            "baseconv_fused[{}->{}]",
            basis_key(src),
            basis_key(bc.dst_plan())
        );
        self.state
            .fused
            .get_or_compile(KernelCacheKey::new(op, 64, 0), || bc.fused_kernel_ir())
            .expect("generated fused conversion kernel compiles")
    }

    /// The compiled all-rows `mul→axpy` chain kernel of a basis
    /// ([`RnsPlan::mul_axpy_kernel_ir`]). The scalar is a kernel *parameter*,
    /// so one cache entry serves every scalar over the basis.
    fn mul_axpy_kernel(&self, plan: &RnsPlan) -> Arc<CompiledKernel> {
        let op = format!("mul_axpy_fused[{}]", basis_key(plan));
        self.state
            .fused
            .get_or_compile(KernelCacheKey::new(op, 64, 0), || plan.mul_axpy_kernel_ir())
            .expect("generated fused chain kernel compiles")
    }

    /// The compiled all-rows `mul→rescale→extend` chain kernel of a basis pair
    /// ([`RescaleExtendPlan::mul_fused_kernel_ir`]).
    fn mul_rescale_extend_kernel(
        &self,
        p: &RescaleExtendPlan,
        src: &RnsPlan,
    ) -> Arc<CompiledKernel> {
        let op = format!(
            "mul_rescale_extend_fused[{}->{}]",
            basis_key(src),
            basis_key(p.dst_plan())
        );
        self.state
            .fused
            .get_or_compile(KernelCacheKey::new(op, 64, 0), || p.mul_fused_kernel_ir())
            .expect("generated fused chain kernel compiles")
    }

    /// Prices the direct (widening-accumulate) conversion path against the
    /// all-rows fused generated kernel for `k` source and `l` target moduli,
    /// and returns `true` when the generated path is cheaper on the session
    /// device. The direct path runs **two** launches — the pseudo-residue
    /// planes, then the cross-basis sums — writing and re-reading the whole
    /// pseudo plane in between; the fused kernel runs the entire conversion as
    /// division-free accumulation loops in **one** launch with the
    /// pseudo-residues held in registers.
    fn compiled_convert_is_faster(&self, k: u64, l: u64, cols: usize) -> bool {
        let cols = cols.max(1) as u64;
        let cost = &self.state.cost;
        // Both paths execute the same algebra per element: one Barrett
        // multiply per source row, then a widening accumulation with one wide
        // reduction per target row. Price that shared mix identically on both
        // sides — what actually differs is the second launch and the
        // pseudo-residue plane the direct path writes and re-reads through
        // memory (the fused kernel holds it in registers).
        let mut alg = OpCounts::new();
        alg.add_mnemonic("mulmod", k);
        alg.add_mnemonic("macreduce", l * k);
        alg.add_mnemonic("reducewide", l);
        let direct = cost.estimate_launch(&alg, cols, 8 * 2 * k).total
            + cost
                .estimate_launch(&OpCounts::new(), cols, 8 * (k + l))
                .total;
        let fused_est = cost.estimate_launch(&alg, cols, 8 * (k + l)).total;
        fused_est < direct
    }

    /// Prices the unfused `mul` then `axpy` sequence (two launches and a full
    /// intermediate product matrix) against the all-rows fused chain kernel
    /// (one launch, product in registers) over a `k`-modulus basis, and
    /// returns `true` when the fused kernel is cheaper on the session device.
    fn fused_mul_axpy_is_faster(&self, k: u64, cols: usize) -> bool {
        let cols = cols.max(1) as u64;
        let cost = &self.state.cost;
        // Same algebra on both sides — k modular multiplies, then k
        // multiply-accumulate steps — priced identically; the unfused
        // sequence pays a second launch and routes the product through a full
        // intermediate matrix instead of registers.
        let mut alg = OpCounts::new();
        alg.add_mnemonic("mulmod", k);
        alg.add_mnemonic("macmod", k);
        let unfused = cost.estimate_launch(&alg, cols, 8 * 3 * k).total
            + cost
                .estimate_launch(&OpCounts::new(), cols, 8 * 3 * k)
                .total;
        let fused_est = cost.estimate_launch(&alg, cols, 8 * 4 * k).total;
        fused_est < unfused
    }

    /// Prices the unfused `mul` then rescale-and-extend sequence against the
    /// all-rows `mul→rescale→extend` chain kernel (one launch, every
    /// intermediate in registers), and returns `true` when the chain kernel is
    /// cheaper on the session device. `k` is the source basis size (dropped
    /// modulus included).
    fn fused_mul_rescale_extend_is_faster(
        &self,
        p: &RescaleExtendPlan,
        k: u64,
        cols: usize,
    ) -> bool {
        let cols = cols.max(1) as u64;
        let l = p.dst_plan().moduli_count() as u64;
        let cost = &self.state.cost;
        // The chain kernel runs the same algebra as `mul` followed by the
        // fused rescale-and-extend kernel; price that shared mix identically
        // on both sides. The unfused sequence pays the second launch and the
        // product-matrix round trip the chain keeps in registers.
        let mut alg = p.fused_counts();
        alg.add_mnemonic("mulmod", k);
        let unfused = cost.estimate_launch(&alg, cols, 8 * 3 * k).total
            + cost
                .estimate_launch(&OpCounts::new(), cols, 8 * (k + l))
                .total;
        let fused_est = cost.estimate_launch(&alg, cols, 8 * (2 * k + l)).total;
        fused_est < unfused
    }
}

/// Hex-joined basis moduli — the verbatim basis component of fused-kernel
/// cache keys (two bases must never share a key; a hash could collide).
fn basis_key(plan: &RnsPlan) -> String {
    plan.moduli()
        .map(|m| format!("{m:x}"))
        .collect::<Vec<_>>()
        .join(",")
}

// ----------------------------------------------------------------------
// Typed handles
// ----------------------------------------------------------------------

/// An `n`-point single-word NTT space handed out by [`Session::ntt`] — a cached
/// [`NttPlan64`] plus the batched launcher entry points.
///
/// The handle is owned (`Send + Sync + 'static`): it holds its own [`Session`]
/// clone, so it can cross threads or sit in a request queue for as long as it
/// likes.
#[derive(Clone)]
pub struct NttSpace {
    session: Session,
    plan: Arc<NttPlan64>,
}

impl NttSpace {
    /// The session this space was handed out by (shares its caches).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying cached plan (for launcher-level access).
    pub fn plan(&self) -> &NttPlan64 {
        &self.plan
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.plan.n
    }

    /// The modulus of the coefficient ring.
    pub fn modulus(&self) -> u64 {
        self.plan.ctx.q
    }

    /// In-place forward transform on the inline hot path (Shoup multiplication,
    /// lazy reduction). Inputs must be reduced; outputs are reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u64]) {
        self.plan.forward(data);
    }

    /// In-place inverse transform (with `1/n` scaling) on the inline hot path.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u64]) {
        self.plan.inverse(data);
    }

    /// Forward-transforms `data.len() / n` transforms in place with one
    /// launch per butterfly stage across the whole batch (grid = batch × n/2) —
    /// the launch count of the returned statistics is `log2 n + 1` however
    /// large the batch is. The stage-crossing working plane comes from the
    /// session pool, so a warm space transforms without heap allocation
    /// (`allocs == 0` in the returned statistics).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n()`.
    pub fn forward_batch(&self, data: &mut [u64]) -> LaunchStats {
        self.plan
            .forward_batch_on_launcher_pooled(data, &self.session.state.pool)
    }

    /// Inverse counterpart of [`NttSpace::forward_batch`] (with `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n()`.
    pub fn inverse_batch(&self, data: &mut [u64]) -> LaunchStats {
        self.plan
            .inverse_batch_on_launcher_pooled(data, &self.session.state.pool)
    }
}

/// An RNS space (a basis of word-sized primes) handed out by [`Session::rns`]:
/// the factory for [`RnsVec`]s over the session's cached [`RnsPlan`].
///
/// Owned like every session handle: `Send + Sync + 'static`, cheap to clone.
#[derive(Clone)]
pub struct RnsSpace {
    session: Session,
    plan: Arc<RnsPlan>,
}

impl RnsSpace {
    /// The session this space was handed out by (shares its caches).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying cached plan.
    pub fn plan(&self) -> &RnsPlan {
        &self.plan
    }

    /// The basis moduli, in basis order.
    pub fn moduli(&self) -> Vec<u64> {
        self.plan.moduli().collect()
    }

    /// The basis product (the dynamic range).
    pub fn product(&self) -> &BigUint {
        self.plan.product()
    }

    /// Encodes positional integers into a residue vector over this space. The
    /// residue plane comes from the session pool and flows back into it when
    /// the vector drops.
    ///
    /// # Panics
    ///
    /// Panics if any value is not below the dynamic range.
    pub fn encode(&self, values: &[BigUint]) -> RnsVec {
        RnsVec {
            matrix: RnsMatrix::from_biguints_pooled(&self.plan, values, &self.session.state.pool),
            session: self.session.clone(),
            plan: Arc::clone(&self.plan),
        }
    }

    /// The session-cached conversion plan from this space's basis into `dst`'s
    /// (for launcher-level measurement; [`RnsVec::base_convert`] uses it
    /// implicitly).
    pub fn conversion_to(&self, dst: &RnsSpace) -> Arc<BaseConvPlan> {
        self.session.baseconv_plan(&self.plan, &dst.plan)
    }

    /// The session-cached rescale plan for this space's basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale_plan(&self) -> Arc<RescalePlan> {
        self.session.rescale_plan_for(&self.plan)
    }

    /// The session-cached fused rescale-and-extend plan into `dst`'s basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale_extend_to(&self, dst: &RnsSpace) -> Arc<RescaleExtendPlan> {
        self.session.rescale_extend_plan_for(&self.plan, &dst.plan)
    }

    /// The compiled per-target-modulus MAC kernels of `bc`, served from the
    /// session kernel cache (compiled on first request, shared after).
    pub fn conversion_kernels(&self, bc: &BaseConvPlan) -> Vec<Arc<CompiledKernel>> {
        self.session.baseconv_mac_kernels(bc, &self.plan)
    }

    /// Wraps an existing residue matrix (over this space's basis) in a vector
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the basis.
    pub fn wrap(&self, matrix: RnsMatrix) -> RnsVec {
        assert_eq!(
            matrix.row_count(),
            self.plan.moduli_count(),
            "matrix basis mismatch"
        );
        RnsVec {
            session: self.session.clone(),
            plan: Arc::clone(&self.plan),
            matrix,
        }
    }
}

/// A vector of big integers in residue form over a session-cached basis, with
/// chainable operations. Every operation routes through the session's plan and
/// kernel caches and — where more than one execution path exists — picks the
/// path the session cost model prices cheaper.
///
/// Owned like every session handle: a vector encoded on one thread can be
/// moved to (or shared with) another and operated on there.
///
/// The residue plane lives on the session [`BufferPool`]: it was acquired
/// there (by `encode` or by the operation that produced this vector) and
/// [`Drop`] recycles it, so chained operations on a warm session allocate
/// nothing. `Clone` copies into another pooled plane.
pub struct RnsVec {
    session: Session,
    plan: Arc<RnsPlan>,
    matrix: RnsMatrix,
}

impl Clone for RnsVec {
    fn clone(&self) -> Self {
        RnsVec {
            matrix: self.matrix.clone_with_pool(&self.session.state.pool),
            session: self.session.clone(),
            plan: Arc::clone(&self.plan),
        }
    }
}

impl Drop for RnsVec {
    /// Hands the residue plane back to the session pool instead of the
    /// allocator — the recycle half of the pooled lifecycle.
    fn drop(&mut self) {
        self.session.state.pool.recycle(self.matrix.take_storage());
    }
}

impl RnsVec {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The underlying residue matrix.
    pub fn matrix(&self) -> &RnsMatrix {
        &self.matrix
    }

    /// The space this vector lives over.
    pub fn space(&self) -> RnsSpace {
        RnsSpace {
            session: self.session.clone(),
            plan: Arc::clone(&self.plan),
        }
    }

    /// Decodes the vector back to positional integers (CRT per column).
    pub fn to_biguints(&self) -> Vec<BigUint> {
        self.plan.to_biguints(&self.matrix)
    }

    fn wrap(&self, matrix: RnsMatrix) -> RnsVec {
        RnsVec {
            session: self.session.clone(),
            plan: Arc::clone(&self.plan),
            matrix,
        }
    }

    /// The session pool this vector's planes cycle through.
    fn pool(&self) -> &BufferPool {
        &self.session.state.pool
    }

    /// Element-wise `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn add(&self, other: &RnsVec) -> RnsVec {
        let (matrix, _) = self.plan.apply_pooled(
            BlasOp::VecAdd,
            None,
            &self.matrix,
            &other.matrix,
            self.pool(),
        );
        self.wrap(matrix)
    }

    /// Element-wise `self - other` (well-defined modulo the basis product).
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn sub(&self, other: &RnsVec) -> RnsVec {
        let (matrix, _) = self.plan.apply_pooled(
            BlasOp::VecSub,
            None,
            &self.matrix,
            &other.matrix,
            self.pool(),
        );
        self.wrap(matrix)
    }

    /// Element-wise `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn mul(&self, other: &RnsVec) -> RnsVec {
        self.mul_with_stats(other).0
    }

    /// Like [`RnsVec::mul`], also returning the launch statistics — the
    /// observability surface batching services aggregate launches-per-op from.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn mul_with_stats(&self, other: &RnsVec) -> (RnsVec, LaunchStats) {
        let (matrix, stats) = self.plan.apply_pooled(
            BlasOp::VecMul,
            None,
            &self.matrix,
            &other.matrix,
            self.pool(),
        );
        (self.wrap(matrix), stats)
    }

    /// `a·self + y` with a positional scalar `a`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch, or if `a` exceeds the dynamic range.
    pub fn axpy(&self, a: &BigUint, y: &RnsVec) -> RnsVec {
        let scalar = self.plan.to_residues(a);
        let (matrix, _) = self.plan.apply_pooled(
            BlasOp::Axpy,
            Some(&scalar),
            &self.matrix,
            &y.matrix,
            self.pool(),
        );
        self.wrap(matrix)
    }

    /// Fast base extension into `dst`'s basis (the approximate `x + αM`
    /// conversion), through the session-cached [`BaseConvPlan`].
    ///
    /// The execution path is picked by the session cost model: the direct
    /// widening-accumulate rounds, or the *generated* all-rows fused kernel
    /// served from the session's fused-kernel cache (one launch for the whole
    /// conversion) — callers no longer choose between two methods.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsPlan::base_convert`] conditions.
    pub fn base_convert(&self, dst: &RnsSpace) -> RnsVec {
        let bc = self.session.baseconv_plan(&self.plan, &dst.plan);
        let k = self.plan.moduli_count() as u64;
        let l = dst.plan.moduli_count() as u64;
        let (matrix, _) = if self.session.compiled_convert_is_faster(k, l, self.len()) {
            let kernel = self.session.baseconv_fused_kernel(&bc, &self.plan);
            self.plan
                .base_convert_fused_with_pool(&bc, &self.matrix, &kernel, self.pool())
        } else {
            self.plan
                .base_convert_pooled(&bc, &self.matrix, self.pool())
        };
        RnsVec {
            matrix,
            session: self.session.clone(),
            plan: Arc::clone(&dst.plan),
        }
    }

    /// `a·(self ∘ other) + y` — the multiply-then-axpy chain — with a
    /// positional scalar `a`.
    ///
    /// The session cost model picks between the unfused two-launch sequence
    /// ([`RnsVec::mul`] then [`RnsVec::axpy`]) and the all-rows fused chain
    /// kernel served from the session's fused-kernel cache: one launch, with
    /// the intermediate product held in registers instead of a full matrix.
    /// Both paths compute bit-for-bit the same result.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch, or if `a` exceeds the dynamic range.
    pub fn mul_axpy(&self, other: &RnsVec, a: &BigUint, y: &RnsVec) -> RnsVec {
        self.mul_axpy_with_stats(other, a, y).0
    }

    /// Like [`RnsVec::mul_axpy`], also returning the launch statistics of the
    /// selected path.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsVec::mul_axpy`] conditions.
    pub fn mul_axpy_with_stats(
        &self,
        other: &RnsVec,
        a: &BigUint,
        y: &RnsVec,
    ) -> (RnsVec, LaunchStats) {
        let scalar = self.plan.to_residues(a);
        let k = self.plan.moduli_count() as u64;
        let (matrix, stats) = if self.session.fused_mul_axpy_is_faster(k, self.len()) {
            let kernel = self.session.mul_axpy_kernel(&self.plan);
            self.plan.mul_axpy_fused_with_pool(
                &self.matrix,
                &other.matrix,
                &scalar,
                &y.matrix,
                &kernel,
                self.pool(),
            )
        } else {
            let (mut prod, mut stats) = self.plan.apply_pooled(
                BlasOp::VecMul,
                None,
                &self.matrix,
                &other.matrix,
                self.pool(),
            );
            let (out, round) =
                self.plan
                    .apply_pooled(BlasOp::Axpy, Some(&scalar), &prod, &y.matrix, self.pool());
            self.pool().recycle(prod.take_storage());
            stats.accumulate(round);
            (out, stats)
        };
        (self.wrap(matrix), stats)
    }

    /// The whole `mul→rescale→extend` chain: element-wise product with
    /// `other`, rounded division by the dropped modulus, re-expression in
    /// `dst`'s basis.
    ///
    /// The session cost model picks between the unfused sequence
    /// ([`RnsVec::mul`] then [`RnsVec::rescale_then_extend`]) and the all-rows
    /// fused chain kernel served from the session's fused-kernel cache: one
    /// launch, every intermediate in registers. Both paths compute bit-for-bit
    /// the same result.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch, if the basis has fewer than two
    /// moduli, or under the [`RnsPlan::base_convert`] accumulator conditions.
    pub fn mul_rescale_then_extend(&self, other: &RnsVec, dst: &RnsSpace) -> RnsVec {
        self.mul_rescale_then_extend_with_stats(other, dst).0
    }

    /// Like [`RnsVec::mul_rescale_then_extend`], also returning the launch
    /// statistics of the selected path.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsVec::mul_rescale_then_extend`] conditions.
    pub fn mul_rescale_then_extend_with_stats(
        &self,
        other: &RnsVec,
        dst: &RnsSpace,
    ) -> (RnsVec, LaunchStats) {
        let p = self.session.rescale_extend_plan_for(&self.plan, &dst.plan);
        let k = self.plan.moduli_count() as u64;
        let fused_chain = self
            .session
            .fused_mul_rescale_extend_is_faster(&p, k, self.len());
        let (matrix, stats) = if fused_chain {
            let kernel = self.session.mul_rescale_extend_kernel(&p, &self.plan);
            self.plan.mul_rescale_then_extend_fused_with_pool(
                &p,
                &self.matrix,
                &other.matrix,
                &kernel,
                self.pool(),
            )
        } else {
            let (mut prod, mut stats) = self.plan.apply_pooled(
                BlasOp::VecMul,
                None,
                &self.matrix,
                &other.matrix,
                self.pool(),
            );
            let (out, round) = if p.fused_is_faster(&self.session.state.cost, self.len()) {
                self.plan.rescale_then_extend_pooled(&p, &prod, self.pool())
            } else {
                self.plan
                    .rescale_then_extend_two_pass_pooled(&p, &prod, self.pool())
            };
            self.pool().recycle(prod.take_storage());
            stats.accumulate(round);
            (out, stats)
        };
        (
            RnsVec {
                matrix,
                session: self.session.clone(),
                plan: Arc::clone(&dst.plan),
            },
            stats,
        )
    }

    /// Approximate scaled rounding (the CKKS/BGV rescale): divides every
    /// element by the last basis modulus with rounding and returns the vector
    /// over the shortened basis, through the session-cached [`RescalePlan`].
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale(&self) -> RnsVec {
        let rp = self.session.rescale_plan_for(&self.plan);
        let (matrix, _) = self
            .plan
            .scale_and_round_pooled(&rp, &self.matrix, self.pool());
        let out_moduli: Vec<u64> = rp.output_plan().moduli().collect();
        // The rescale plan already carries a fully built plan for the shortened
        // basis; seed the basis cache with it rather than rebuilding one (the
        // rebuild would redo primality validation and all precomputed tables).
        let plan = self
            .session
            .state
            .rns
            .get_or_build(out_moduli, || Arc::new(rp.output_plan().clone()));
        RnsVec {
            matrix,
            session: self.session.clone(),
            plan,
        }
    }

    /// The fused rescale-and-extend chain (BEHZ `FastBConvSK`): drops the last
    /// basis modulus with rounding **and** re-expresses the quotient in `dst`'s
    /// basis, through the session-cached [`RescaleExtendPlan`]. The fused
    /// single-sweep kernel and the two-pass rescale→extend chain compute
    /// bit-for-bit the same result; the session cost model picks whichever it
    /// prices cheaper for this vector's length
    /// ([`RescaleExtendPlan::fused_is_faster`]).
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli, or under the
    /// [`RnsPlan::base_convert`] accumulator conditions.
    pub fn rescale_then_extend(&self, dst: &RnsSpace) -> RnsVec {
        self.rescale_then_extend_with_stats(dst).0
    }

    /// Like [`RnsVec::rescale_then_extend`], also returning the launch
    /// statistics of the selected path.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsVec::rescale_then_extend`] conditions.
    pub fn rescale_then_extend_with_stats(&self, dst: &RnsSpace) -> (RnsVec, LaunchStats) {
        let p = self.session.rescale_extend_plan_for(&self.plan, &dst.plan);
        let (matrix, stats) = if p.fused_is_faster(&self.session.state.cost, self.len()) {
            self.plan
                .rescale_then_extend_pooled(&p, &self.matrix, self.pool())
        } else {
            self.plan
                .rescale_then_extend_two_pass_pooled(&p, &self.matrix, self.pool())
        };
        (
            RnsVec {
                matrix,
                session: self.session.clone(),
                plan: Arc::clone(&dst.plan),
            },
            stats,
        )
    }
}

// ----------------------------------------------------------------------
// Negacyclic ring handles
// ----------------------------------------------------------------------

/// The session is the plan provider for every ring context it hands out:
/// contexts assemble themselves from the stampede-controlled caches, so two
/// rings over overlapping ladders share their negacyclic plans, per-level RNS
/// plans, and fused rescale steps.
impl RingPlanSource for Session {
    fn negacyclic_plan(&self, q: u64, n: usize) -> Arc<NttPlan64> {
        self.negacyclic_plan_for(q, n)
    }

    fn rns_plan(&self, moduli: &[u64]) -> Arc<RnsPlan> {
        Session::rns_plan(self, moduli)
    }

    fn rescale_extend_plan(
        &self,
        src: &Arc<RnsPlan>,
        dst: &Arc<RnsPlan>,
    ) -> Arc<RescaleExtendPlan> {
        self.rescale_extend_plan_for(src, dst)
    }
}

/// A negacyclic ring over a moduli ladder, handed out by [`Session::ring`] —
/// a cached [`RingContext`] plus the session pool, so every operation is
/// allocation-free once warm.
///
/// Owned like every session handle: `Send + Sync + 'static`, cheap to clone.
#[derive(Clone)]
pub struct RingSpace {
    session: Session,
    ring: Arc<RingContext>,
}

impl RingSpace {
    /// The session this space was handed out by (shares its caches).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying cached ring context.
    pub fn context(&self) -> &RingContext {
        &self.ring
    }

    /// The ring degree `n`.
    pub fn n(&self) -> usize {
        self.ring.n()
    }

    /// The full moduli ladder, widest basis first.
    pub fn moduli(&self) -> &[u64] {
        self.ring.moduli()
    }

    /// Number of rescale steps the ladder supports.
    pub fn steps(&self) -> usize {
        self.ring.steps()
    }

    /// The dynamic range `Q` at `level`.
    pub fn product(&self, level: usize) -> &BigUint {
        self.ring.product(level)
    }

    /// Encodes `n` coefficients into a coefficient-domain ring element at
    /// `level`, its residue plane drawn from the session pool.
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::encode`] conditions.
    pub fn encode(&self, level: usize, values: &[BigUint]) -> RingVec {
        self.wrap(self.ring.encode(level, values, self.session.pool()))
    }

    /// Decodes a coefficient-domain element back to `BigUint` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `v` is in the evaluation domain.
    pub fn decode(&self, v: &RingVec) -> Vec<BigUint> {
        self.ring.decode(v.elt())
    }

    /// Raises `v` into the evaluation domain in place (batched negacyclic
    /// forward transforms, one per residue row).
    ///
    /// # Panics
    ///
    /// Panics if `v` is already raised.
    pub fn forward_ntt(&self, v: &mut RingVec) -> LaunchStats {
        self.ring
            .forward_ntt(v.elt.as_mut().expect("live element"), self.session.pool())
    }

    /// Lowers `v` back to the coefficient domain in place.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already lowered.
    pub fn inverse_ntt(&self, v: &mut RingVec) -> LaunchStats {
        self.ring
            .inverse_ntt(v.elt.as_mut().expect("live element"), self.session.pool())
    }

    /// Pointwise ring multiply (both operands raised, same level).
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::mul`] conditions.
    pub fn mul(&self, a: &RingVec, b: &RingVec) -> (RingVec, LaunchStats) {
        let (elt, stats) = self.ring.mul(a.elt(), b.elt(), self.session.pool());
        (self.wrap(elt), stats)
    }

    /// Coefficient-wise addition (matching levels and domains).
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::add`] conditions.
    pub fn add(&self, a: &RingVec, b: &RingVec) -> (RingVec, LaunchStats) {
        let (elt, stats) = self.ring.add(a.elt(), b.elt(), self.session.pool());
        (self.wrap(elt), stats)
    }

    /// Drops the level's last modulus through the session-cached fused
    /// rescale-then-extend chain.
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::rescale_to_next_level`] conditions.
    pub fn rescale_to_next_level(&self, v: &RingVec) -> (RingVec, LaunchStats) {
        let (elt, stats) = self
            .ring
            .rescale_to_next_level(v.elt(), self.session.pool());
        (self.wrap(elt), stats)
    }

    /// One full ladder level: raise → pointwise multiply → inverse → rescale
    /// onto the next level's basis. Passing the same vector for `a` and `b`
    /// squares it with a single raise.
    ///
    /// # Panics
    ///
    /// Panics under the [`RingContext::ladder_step`] conditions.
    pub fn ladder_step(&self, a: &RingVec, b: &RingVec) -> (RingVec, LaunchStats) {
        // Preserve `ladder_step`'s pointer-based squaring detection across the
        // handle indirection.
        let (elt, stats) = if std::ptr::eq(a, b) || std::ptr::eq(a.elt(), b.elt()) {
            let e = a.elt();
            self.ring.ladder_step(e, e, self.session.pool())
        } else {
            self.ring.ladder_step(a.elt(), b.elt(), self.session.pool())
        };
        (self.wrap(elt), stats)
    }

    fn wrap(&self, elt: RingElt) -> RingVec {
        RingVec {
            session: self.session.clone(),
            elt: Some(elt),
        }
    }
}

/// One ring element handed out by a [`RingSpace`]: level- and domain-aware,
/// with its residue plane recycled into the session pool on drop (the same
/// pooled lifecycle as [`RnsVec`]).
pub struct RingVec {
    session: Session,
    /// `Some` for the whole life of the handle; `Option` only so `Drop` can
    /// move the element out to recycle its plane.
    elt: Option<RingElt>,
}

impl Clone for RingVec {
    fn clone(&self) -> Self {
        RingVec {
            session: self.session.clone(),
            elt: Some(self.elt().clone_with_pool(self.session.pool())),
        }
    }
}

impl Drop for RingVec {
    /// Hands the residue plane back to the session pool.
    fn drop(&mut self) {
        if let Some(elt) = self.elt.take() {
            elt.recycle(self.session.pool());
        }
    }
}

impl RingVec {
    /// The element's ladder level.
    pub fn level(&self) -> usize {
        self.elt().level()
    }

    /// The element's current domain.
    pub fn domain(&self) -> Domain {
        self.elt().domain()
    }

    /// The underlying ring element.
    pub fn elt(&self) -> &RingElt {
        self.elt.as_ref().expect("live element")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::random::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn generated_kernels_are_cached_per_spec_and_algorithm() {
        let session = Session::default();
        let spec = KernelSpec::new(KernelOp::ModMul, 256);
        let first = session.compile(&spec);
        let second = session.compile(&spec);
        assert!(Arc::ptr_eq(&first, &second));
        let karatsuba = session.compile_with_algorithm(&spec, MulAlgorithm::Karatsuba);
        assert!(!Arc::ptr_eq(&first, &karatsuba));
        let stats = session.stats();
        assert_eq!(stats.generated.hits, 1);
        assert_eq!(stats.generated.misses, 2);
    }

    #[test]
    fn ntt_plans_are_cached_by_modulus_and_size() {
        let session = Session::default();
        let a = session.ntt_default(64);
        let b = session.ntt_default(64);
        assert!(Arc::ptr_eq(&a.plan, &b.plan));
        let c = session.ntt_default(128);
        assert!(!Arc::ptr_eq(&a.plan, &c.plan));
        assert_eq!(
            session.stats().ntt,
            CacheStats {
                hits: 1,
                misses: 2,
                contended: 0
            }
        );
        // Round trip through the handle.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..64)
            .map(|_| {
                random_below(&mut rng, &BigUint::from(a.modulus()))
                    .to_u64()
                    .unwrap()
            })
            .collect();
        let mut work = data.clone();
        a.forward(&mut work);
        a.inverse(&mut work);
        assert_eq!(work, data);
    }

    #[test]
    fn multiword_ntt_plans_are_cached_per_limb_count() {
        let session = Session::default();
        let a = session.ntt_multiword::<2>(128, 32);
        let b = session.ntt_multiword::<2>(128, 32);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = session.stats();
        assert_eq!(
            stats.ntt_multiword,
            CacheStats {
                hits: 1,
                misses: 1,
                contended: 0
            }
        );
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<_> = (0..32).map(|_| a.ring.random_element(&mut rng)).collect();
        let mut work = data.clone();
        a.forward(&mut work);
        a.inverse(&mut work);
        assert_eq!(work, data);
    }

    #[test]
    fn clones_share_cache_state() {
        let session = Session::default();
        let clone = session.clone();
        assert!(session.shares_state_with(&clone));
        assert!(!session.shares_state_with(&Session::default()));
        let _ = clone.ntt_default(64);
        // The clone's build is the original's cache hit.
        let _ = session.ntt_default(64);
        let stats = session.stats();
        assert_eq!((stats.ntt.misses, stats.ntt.hits), (1, 1));
    }

    #[test]
    fn plan_cache_stampede_builds_once_for_one_key() {
        let cache: PlanCache<u32, u64> = PlanCache::default();
        let builds = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        thread::scope(|s| {
            for _ in 0..8 {
                let builds = Arc::clone(&builds);
                let barrier = Arc::clone(&barrier);
                let cache = &cache;
                s.spawn(move || {
                    barrier.wait();
                    let v = cache.get_or_build(7, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really do contend.
                        thread::sleep(std::time::Duration::from_millis(20));
                        Arc::new(42u64)
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 7));
    }

    #[test]
    fn plan_cache_different_keys_build_in_parallel() {
        // Key 1's builder blocks until key 2's build has *completed*. If builds
        // for different keys serialized behind one lock, this would deadlock.
        let cache: Arc<PlanCache<u32, u64>> = Arc::new(PlanCache::default());
        let (unblock_tx, unblock_rx) = mpsc::channel::<()>();
        let slow = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                cache.get_or_build(1, move || {
                    unblock_rx.recv().expect("key 2 completes while we build");
                    Arc::new(100u64)
                })
            })
        };
        // Runs while key 1 is mid-build.
        let fast = cache.get_or_build(2, || Arc::new(200u64));
        assert_eq!(*fast, 200);
        unblock_tx.send(()).unwrap();
        assert_eq!(*slow.join().unwrap(), 100);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits, stats.contended), (2, 0, 0));
    }

    #[test]
    fn plan_cache_waiters_are_counted_as_contended_hits() {
        let cache: Arc<PlanCache<u32, u64>> = Arc::new(PlanCache::default());
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (unblock_tx, unblock_rx) = mpsc::channel::<()>();
        let builder = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                cache.get_or_build(5, move || {
                    entered_tx.send(()).unwrap();
                    unblock_rx.recv().unwrap();
                    Arc::new(55u64)
                })
            })
        };
        entered_rx.recv().unwrap(); // the build is provably in flight
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.get_or_build(5, || unreachable!("key already claimed")))
        };
        // Give the waiter time to reach the condvar, then publish.
        while cache.stats().contended == 0 {
            thread::yield_now();
        }
        unblock_tx.send(()).unwrap();
        assert_eq!(*builder.join().unwrap(), 55);
        assert_eq!(*waiter.join().unwrap(), 55);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits, stats.contended), (1, 1, 1));
    }

    #[test]
    fn plan_cache_recovers_from_a_panicking_builder() {
        let cache: Arc<PlanCache<u32, u64>> = Arc::new(PlanCache::default());
        let panicked = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.get_or_build(9, || panic!("builder died")))
        };
        assert!(panicked.join().is_err());
        // The key was unclaimed: the next request simply builds.
        let v = cache.get_or_build(9, || Arc::new(99u64));
        assert_eq!(*v, 99);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "the failed claim and the successful one");
    }

    #[test]
    fn session_survives_a_panicking_plan_builder() {
        let session = Session::default();
        let poisoner = session.clone();
        // q = 6 is composite: the NttPlan64 builder panics inside the cache.
        let result = thread::spawn(move || poisoner.ntt(6, 8)).join();
        assert!(result.is_err());
        // The session is not wedged: a valid request still builds and caches.
        let space = session.ntt_default(8);
        assert_eq!(space.n(), 8);
        let _ = session.ntt_default(8);
        let stats = session.stats();
        assert_eq!(stats.ntt.hits, 1);
    }

    #[test]
    fn rns_chain_matches_the_oracle_and_reuses_every_plan() {
        let session = Session::default();
        let src = session.rns_with_capacity(160);
        let src_moduli = src.moduli();
        let dst = session.rns(&src_moduli[..4]);
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<BigUint> = (0..9)
            .map(|_| random_below(&mut rng, src.product()))
            .collect();
        let v = src.encode(&values);
        let out = v.mul(&v).rescale_then_extend(&dst);
        // Oracle: square, rescale, extend — element by element.
        let ctx = RnsContext::with_moduli(&src.moduli());
        let dst_ctx = RnsContext::with_moduli(&dst.moduli());
        let out_ctx = ctx.without_last();
        for (c, x) in values.iter().enumerate() {
            let sq = (x * x) % src.product();
            let oracle =
                out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&sq)));
            assert_eq!(out.matrix().element(c), oracle, "column {c}");
        }
        let miss_baseline = session.stats();
        // The second identical chain builds nothing anywhere.
        let again = src.encode(&values).mul(&v).rescale_then_extend(&dst);
        assert_eq!(again.to_biguints(), out.to_biguints());
        let after = session.stats();
        assert_eq!(after.rns.misses, miss_baseline.rns.misses);
        assert_eq!(
            after.rescale_extend.misses,
            miss_baseline.rescale_extend.misses
        );
        assert_eq!(after.kernels.misses, miss_baseline.kernels.misses);
        assert!(after.rescale_extend.hits > miss_baseline.rescale_extend.hits);
    }

    #[test]
    fn rns_vec_ops_match_plan_results() {
        let session = Session::default();
        let space = session.rns_with_capacity(96);
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<BigUint> = (0..6)
            .map(|_| random_below(&mut rng, space.product()))
            .collect();
        let b: Vec<BigUint> = (0..6)
            .map(|_| random_below(&mut rng, space.product()))
            .collect();
        let va = space.encode(&a);
        let vb = space.encode(&b);
        let scalar = BigUint::from(0x1234_5678u64);
        for (c, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                va.add(&vb).to_biguints()[c],
                (x + y) % space.product(),
                "add {c}"
            );
            assert_eq!(
                va.mul(&vb).to_biguints()[c],
                (x * y) % space.product(),
                "mul {c}"
            );
            assert_eq!(
                va.axpy(&scalar, &vb).to_biguints()[c],
                (&(&scalar * x) + y) % space.product(),
                "axpy {c}"
            );
        }
        // rescale matches the oracle.
        let ctx = RnsContext::with_moduli(&space.moduli());
        let rescaled = va.rescale();
        for (c, x) in a.iter().enumerate() {
            assert_eq!(
                rescaled.matrix().element(c),
                ctx.scale_and_round(&ctx.to_residues(x)),
                "rescale {c}"
            );
        }
    }

    #[test]
    fn base_convert_handle_matches_the_direct_path() {
        let session = Session::default();
        let src = session.rns_with_capacity(128);
        let src_moduli = src.moduli();
        let dst = session.rns(&src_moduli[..5]);
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<BigUint> = (0..7)
            .map(|_| random_below(&mut rng, src.product()))
            .collect();
        let converted = src.encode(&values).base_convert(&dst);
        let ctx = RnsContext::with_moduli(&src.moduli());
        let dst_ctx = RnsContext::with_moduli(&dst.moduli());
        for (c, v) in values.iter().enumerate() {
            assert_eq!(
                converted.matrix().element(c),
                ctx.base_convert(&dst_ctx, &ctx.to_residues(v)),
                "column {c}"
            );
        }
    }

    #[test]
    fn batched_ntt_space_amortizes_stage_launches() {
        let session = Session::default();
        let space = session.ntt_default(64);
        let mut rng = StdRng::seed_from_u64(6);
        let q = BigUint::from(space.modulus());
        let data: Vec<u64> = (0..8 * 64)
            .map(|_| random_below(&mut rng, &q).to_u64().unwrap())
            .collect();
        let mut batched = data.clone();
        let stats = space.forward_batch(&mut batched);
        assert_eq!(stats.launches, 6 + 1, "log2(64) stages + normalize");
        let inv = space.inverse_batch(&mut batched);
        assert_eq!(inv.launches, 6 + 1);
        assert_eq!(batched, data);
    }

    #[test]
    fn ring_contexts_are_cached_and_share_component_plans() {
        let session = Session::default();
        let n = 16;
        let moduli = moma_ring::ladder_primes(n, &[50, 30, 45]);
        let ring = session.ring(n, &moduli);
        let after_build = session.stats();
        assert_eq!(after_build.ring.misses, 1);
        assert_eq!(after_build.ntt_negacyclic.misses, moduli.len() as u64);
        // Same key: pure cache hit, nothing rebuilt underneath.
        let again = session.ring(n, &moduli);
        assert!(ring.context().moduli() == again.context().moduli());
        let stats = session.stats();
        assert_eq!(
            stats.ring,
            CacheStats {
                hits: 1,
                ..after_build.ring
            }
        );
        assert_eq!(
            stats.ntt_negacyclic.misses,
            after_build.ntt_negacyclic.misses
        );
        // A direct negacyclic space over a ladder modulus reuses the ring's plan.
        let _ = session.ntt_negacyclic(moduli[0], n);
        assert_eq!(session.stats().ntt_negacyclic.hits, 1);
        // The cyclic cache is untouched: the two plan shapes never collide.
        assert_eq!(session.stats().ntt.misses, 0);
    }

    #[test]
    fn ring_handles_run_the_ladder_against_the_oracle() {
        let session = Session::default();
        let n = 8;
        let moduli = moma_ring::ladder_primes(n, &[50, 30, 40]);
        let ring = session.ring(n, &moduli);
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<BigUint> = (0..n)
            .map(|_| random_below(&mut rng, ring.product(0)))
            .collect();
        let b: Vec<BigUint> = (0..n)
            .map(|_| random_below(&mut rng, ring.product(0)))
            .collect();
        let ea = ring.encode(0, &a);
        let eb = ring.encode(0, &b);
        let (mut cur, _) = ring.ladder_step(&ea, &eb);
        for _ in 1..ring.steps() {
            let (next, _) = ring.ladder_step(&cur, &cur);
            cur = next;
        }
        assert_eq!(cur.level(), ring.steps());
        assert_eq!(
            ring.decode(&cur),
            moma_ring::oracle::ladder_replay(&moduli, &a, &b, ring.steps())
        );
    }

    #[test]
    fn warm_session_ladder_is_allocation_free() {
        let session = Session::default();
        let n = 32;
        let moduli = moma_ring::ladder_primes(n, &[50, 30, 45, 30]);
        let ring = session.ring(n, &moduli);
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<BigUint> = (0..n)
            .map(|_| random_below(&mut rng, ring.product(0)))
            .collect();
        let run = || {
            let ea = ring.encode(0, &a);
            let mut allocs = 0;
            let (mut cur, s) = ring.ladder_step(&ea, &ea);
            allocs += s.allocs;
            for _ in 1..ring.steps() {
                let (next, s) = ring.ladder_step(&cur, &cur);
                allocs += s.allocs;
                cur = next;
            }
            allocs
        };
        let cold = run();
        assert!(cold > 0, "cold run must miss the empty pool");
        assert_eq!(run(), 0, "warm ladder must be allocation-free");
    }
}
