//! `Session` — one cached, typed entry point for plans, kernels, and fused RNS
//! chains.
//!
//! The paper's discipline is *compile once, execute many*: kernels are generated
//! per (operation, bit-width) and reused across launches, and every runtime
//! subsystem in this reproduction has its own precompute-once object —
//! [`NttPlan64`]/[`NttPlan`], [`RnsPlan`], [`BaseConvPlan`], [`RescalePlan`],
//! [`RescaleExtendPlan`], `CompiledKernel`. Before this module, callers had to
//! hand-assemble those objects and pick among execution paths by hand. A
//! [`Session`] is the one owner of all of them:
//!
//! * it owns a device ([`DeviceSpec`]) and the [`CostModel`] derived from it,
//!   which drives automatic execution-path selection (fused vs two-pass chains,
//!   direct vs generated-kernel conversions);
//! * it owns a *generated-kernel* cache (keyed by operation, bit-width, and
//!   multiplication algorithm) and a *compiled-kernel* cache
//!   ([`moma_ir::KernelCache`], keyed by operation, width, and baked-in
//!   modulus);
//! * it owns plan caches: [`NttPlan64`] keyed by `(q, n)`, multi-word
//!   [`NttPlan`] keyed by `(limbs, bits, n)`, [`RnsPlan`] keyed by basis,
//!   [`BaseConvPlan`]/[`RescaleExtendPlan`] keyed by basis pair, and
//!   [`RescalePlan`] keyed by basis.
//!
//! Every `get_or_build` is **hit-counted** ([`Session::stats`]), so reuse is a
//! testable property, not a hope: the second request for any plan or kernel
//! builds nothing.
//!
//! On top of the caches sit typed handles: [`Session::rns`] yields an
//! [`RnsSpace`] whose [`RnsVec`]s chain `add`/`mul`/`axpy`/`base_convert`/
//! `rescale`/[`RnsVec::rescale_then_extend`] (the fused BEHZ `FastBConvSK`
//! chain, selected automatically over the two-pass path by the cost model), and
//! [`Session::ntt`] yields an [`NttSpace`] whose
//! [`NttSpace::forward_batch`] runs many transforms with one launch per
//! butterfly stage (grid = batch × n/2) — the paper's batched NTT.
//!
//! # Example
//!
//! ```
//! use moma::bignum::BigUint;
//! use moma::Session;
//!
//! let session = Session::default();
//! let src = session.rns_with_capacity(128);
//! // Chain: elementwise multiply, then the fused rescale-and-extend.
//! let a = src.encode(&[BigUint::from(7u64), BigUint::from(11u64)]);
//! let b = src.encode(&[BigUint::from(5u64), BigUint::from(3u64)]);
//! let extended = a.mul(&b).rescale_then_extend(&src);
//! assert_eq!(extended.len(), 2);
//! // The second identical chain hits every cache.
//! let before = session.stats().rescale_extend.misses;
//! let _ = a.mul(&b).rescale_then_extend(&src);
//! assert_eq!(session.stats().rescale_extend.misses, before);
//! ```

use crate::compiler::{Compiler, GeneratedKernel};
use crate::engine::Series;
use moma_bignum::BigUint;
use moma_gpu::launch::LaunchStats;
use moma_gpu::{CostModel, DeviceSpec};
use moma_ir::cache::{KernelCache, KernelCacheKey};
use moma_ir::compiled::CompiledKernel;
use moma_ir::cost::OpCounts;
use moma_ntt::plan::{NttPlan, NttPlan64};
use moma_rewrite::{KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
use moma_rns::{BaseConvPlan, RescaleExtendPlan, RescalePlan, RnsContext, RnsMatrix, RnsPlan};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of one session cache (a snapshot; see [`Session::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to build.
    pub misses: u64,
}

/// Snapshot of every session cache's hit/miss counters.
///
/// Tests assert reuse with these: after a warm-up call, an identical request
/// must increment only `hits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Generated-kernel cache (op, bit-width, multiplication algorithm).
    pub generated: CacheStats,
    /// Compiled per-modulus kernel cache (op, width, modulus).
    pub kernels: CacheStats,
    /// Single-word NTT plans, keyed by `(q, n)`.
    pub ntt: CacheStats,
    /// Multi-word NTT plans, keyed by `(limbs, bits, n)`.
    pub ntt_multiword: CacheStats,
    /// RNS plans, keyed by basis.
    pub rns: CacheStats,
    /// Base-conversion plans, keyed by basis pair.
    pub baseconv: CacheStats,
    /// Rescale plans, keyed by basis.
    pub rescale: CacheStats,
    /// Fused rescale-and-extend plans, keyed by basis pair.
    pub rescale_extend: CacheStats,
}

/// A hit-counted `get_or_build` map. The builder runs under the lock, so
/// concurrent requests for the same key build exactly once.
struct PlanCache<K, V: ?Sized> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: std::hash::Hash + Eq, V: ?Sized> Default for PlanCache<K, V> {
    fn default() -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K: std::hash::Hash + Eq, V: ?Sized> PlanCache<K, V> {
    fn get_or_build(&self, key: K, build: impl FnOnce() -> Arc<V>) -> Arc<V> {
        let mut map = self.map.lock().expect("plan cache poisoned");
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = build();
        map.insert(key, Arc::clone(&built));
        built
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The cached, typed entry point to the whole MoMA runtime (see the
/// [module docs](self)).
///
/// A `Session` is `Sync`; handles borrow it, so one session can serve any
/// number of spaces, vectors, and launches. Construction is cheap — everything
/// expensive is built on first use and cached.
pub struct Session {
    device: DeviceSpec,
    compiler: Compiler,
    cost: CostModel,
    generated: PlanCache<(KernelOp, u32, MulAlgorithm), GeneratedKernel>,
    kernels: KernelCache,
    ntt64: PlanCache<(u64, usize), NttPlan64>,
    ntt_mw: PlanCache<(u32, u32, usize), dyn Any + Send + Sync>,
    rns: PlanCache<Vec<u64>, RnsPlan>,
    /// Capacity-bits → deterministic basis memo, so repeated
    /// [`Session::rns_with_capacity`] calls skip the prime search (a plain memo,
    /// not a hit-counted plan cache: it holds no built plan).
    capacity_bases: Mutex<HashMap<u32, Vec<u64>>>,
    baseconv: PlanCache<(Vec<u64>, Vec<u64>), BaseConvPlan>,
    rescale: PlanCache<Vec<u64>, RescalePlan>,
    rescale_extend: PlanCache<(Vec<u64>, Vec<u64>), RescaleExtendPlan>,
}

impl Default for Session {
    /// A session on the paper's primary device (H100) with the default
    /// lowering configuration.
    fn default() -> Self {
        Session::new(DeviceSpec::H100)
    }
}

impl Session {
    /// Creates a session for one device with the default lowering
    /// configuration.
    pub fn new(device: DeviceSpec) -> Self {
        Session::with_config(device, LoweringConfig::default())
    }

    /// Creates a session with an explicit lowering configuration (word width,
    /// multiplication algorithm, optimization switches).
    pub fn with_config(device: DeviceSpec, config: LoweringConfig) -> Self {
        Session {
            device,
            compiler: Compiler::new(config),
            cost: CostModel::new(device),
            generated: PlanCache::default(),
            kernels: KernelCache::new(),
            ntt64: PlanCache::default(),
            ntt_mw: PlanCache::default(),
            rns: PlanCache::default(),
            capacity_bases: Mutex::new(HashMap::new()),
            baseconv: PlanCache::default(),
            rescale: PlanCache::default(),
            rescale_extend: PlanCache::default(),
        }
    }

    /// The device this session models and selects execution paths for.
    pub fn device(&self) -> DeviceSpec {
        self.device
    }

    /// The cost model path selection runs on.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of every cache's hit/miss counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            generated: self.generated.stats(),
            kernels: CacheStats {
                hits: self.kernels.hits(),
                misses: self.kernels.misses(),
            },
            ntt: self.ntt64.stats(),
            ntt_multiword: self.ntt_mw.stats(),
            rns: self.rns.stats(),
            baseconv: self.baseconv.stats(),
            rescale: self.rescale.stats(),
            rescale_extend: self.rescale_extend.stats(),
        }
    }

    // ------------------------------------------------------------------
    // Generated kernels and modelled estimates
    // ------------------------------------------------------------------

    /// Generates (or returns the cached) kernel for `spec` under the session's
    /// lowering configuration.
    pub fn compile(&self, spec: &KernelSpec) -> Arc<GeneratedKernel> {
        self.compile_with_algorithm(spec, self.compiler.config.mul_algorithm)
    }

    /// Like [`Session::compile`], with an explicit multiplication algorithm
    /// (the §5.4 ablation axis) — part of the generated-kernel cache key.
    pub fn compile_with_algorithm(
        &self,
        spec: &KernelSpec,
        alg: MulAlgorithm,
    ) -> Arc<GeneratedKernel> {
        self.generated.get_or_build((spec.op, spec.bits, alg), || {
            let compiler = Compiler::new(LoweringConfig {
                mul_algorithm: alg,
                ..self.compiler.config
            });
            Arc::new(compiler.compile(spec))
        })
    }

    /// Word-level operation counts of one generated butterfly at a bit-width
    /// (cached).
    pub fn butterfly_op_counts(&self, bits: u32, alg: MulAlgorithm) -> OpCounts {
        self.compile_with_algorithm(&KernelSpec::new(KernelOp::Butterfly, bits), alg)
            .op_counts
            .clone()
    }

    /// Word-level operation counts of one generated BLAS element kernel
    /// (cached).
    pub fn blas_op_counts(&self, op: KernelOp, bits: u32, alg: MulAlgorithm) -> OpCounts {
        self.compile_with_algorithm(&KernelSpec::new(op, bits), alg)
            .op_counts
            .clone()
    }

    /// Modelled NTT runtime per butterfly (nanoseconds) on a device — the
    /// y-axis of the paper's Figures 1, 3, and 4. The generated butterfly is
    /// compiled once per (bit-width, algorithm) and shared across devices.
    pub fn modelled_ntt_ns_per_butterfly(
        &self,
        device: DeviceSpec,
        bits: u32,
        log2_n: u32,
        alg: MulAlgorithm,
    ) -> f64 {
        let counts = self.butterfly_op_counts(bits, alg);
        CostModel::new(device).ntt_time_per_butterfly_ns(&counts, 1u64 << log2_n, bits)
    }

    /// Modelled BLAS runtime per element (nanoseconds) on a device — the
    /// y-axis of the paper's Figure 2.
    pub fn modelled_blas_ns_per_element(
        &self,
        device: DeviceSpec,
        op: KernelOp,
        bits: u32,
        elements: u64,
    ) -> f64 {
        let counts = self.blas_op_counts(op, bits, MulAlgorithm::Schoolbook);
        // Each element reads two operands and writes one result.
        let bytes = 3 * (bits as u64 / 8);
        let est = CostModel::new(device).estimate_launch(&counts, elements, bytes);
        est.nanos() / elements as f64
    }

    /// Builds the modelled MoMA series for one NTT figure panel (one bit-width,
    /// a range of transform sizes) across the three paper devices, off the
    /// shared generated-kernel cache.
    pub fn ntt_series(&self, bits: u32, log_sizes: &[u32], alg: MulAlgorithm) -> Vec<Series> {
        DeviceSpec::all()
            .iter()
            .map(|device| Series {
                system: "MoMA (modelled)".to_string(),
                platform: device.name.to_string(),
                points: log_sizes
                    .iter()
                    .map(|&log_n| {
                        (
                            log_n,
                            self.modelled_ntt_ns_per_butterfly(*device, bits, log_n, alg),
                        )
                    })
                    .collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // NTT spaces
    // ------------------------------------------------------------------

    /// The `n`-point single-word NTT space over the prime modulus `q`,
    /// building (or reusing) the `(q, n)`-keyed [`NttPlan64`].
    ///
    /// # Panics
    ///
    /// Panics under the [`moma_ntt::Ntt64::with_modulus`] conditions (n not a
    /// power of two, q not an NTT-friendly prime below `2^60`).
    pub fn ntt(&self, q: u64, n: usize) -> NttSpace<'_> {
        NttSpace {
            plan: self
                .ntt64
                .get_or_build((q, n), || Arc::new(NttPlan64::with_modulus(q, n))),
            _session: std::marker::PhantomData,
        }
    }

    /// The `n`-point NTT space over the paper's 60-bit evaluation modulus.
    pub fn ntt_default(&self, n: usize) -> NttSpace<'_> {
        let q = moma_ntt::params::paper_modulus(64)
            .to_u64()
            .expect("60-bit modulus");
        self.ntt(q, n)
    }

    /// The cached `n`-point multi-word NTT plan for `bits`-bit kernels over
    /// `L` limbs, keyed by `(L, bits, n)`.
    ///
    /// # Panics
    ///
    /// Panics under the [`moma_ntt::NttParams::for_paper_modulus`] conditions.
    pub fn ntt_multiword<const L: usize>(&self, bits: u32, n: usize) -> Arc<NttPlan<L>> {
        let alg = match self.compiler.config.mul_algorithm {
            MulAlgorithm::Schoolbook => moma_mp::MulAlgorithm::Schoolbook,
            MulAlgorithm::Karatsuba => moma_mp::MulAlgorithm::Karatsuba,
        };
        let plan = self.ntt_mw.get_or_build((L as u32, bits, n), || {
            Arc::new(NttPlan::<L>::for_paper_modulus(n, bits, alg))
        });
        plan.downcast::<NttPlan<L>>()
            .unwrap_or_else(|_| unreachable!("multi-word plan cache key includes the limb count"))
    }

    // ------------------------------------------------------------------
    // RNS spaces and chain plans
    // ------------------------------------------------------------------

    /// The RNS space over an explicit basis of distinct word-sized primes,
    /// building (or reusing) the basis-keyed [`RnsPlan`].
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsContext::with_moduli`] conditions (composite,
    /// duplicate, or oversized moduli).
    pub fn rns(&self, moduli: &[u64]) -> RnsSpace<'_> {
        RnsSpace {
            session: self,
            plan: self.rns_plan(moduli),
        }
    }

    /// The RNS space over the deterministic basis covering at least `bits`
    /// bits of dynamic range (same basis as [`RnsContext::with_capacity_bits`]).
    pub fn rns_with_capacity(&self, bits: u32) -> RnsSpace<'_> {
        // Memoize capacity → basis so repeated requests skip the deterministic
        // prime search entirely; the plan itself then comes from (or seeds) the
        // basis-keyed cache.
        let mut built_ctx = None;
        let moduli = {
            let mut memo = self.capacity_bases.lock().expect("capacity memo poisoned");
            memo.entry(bits)
                .or_insert_with(|| {
                    let ctx = RnsContext::with_capacity_bits(bits);
                    let moduli = ctx.moduli().to_vec();
                    built_ctx = Some(ctx);
                    moduli
                })
                .clone()
        };
        RnsSpace {
            session: self,
            plan: self.rns.get_or_build(moduli, || {
                let ctx = built_ctx.unwrap_or_else(|| RnsContext::with_capacity_bits(bits));
                Arc::new(RnsPlan::new(&ctx))
            }),
        }
    }

    fn rns_plan(&self, moduli: &[u64]) -> Arc<RnsPlan> {
        self.rns.get_or_build(moduli.to_vec(), || {
            Arc::new(RnsPlan::new(&RnsContext::with_moduli(moduli)))
        })
    }

    fn baseconv_plan(&self, src: &Arc<RnsPlan>, dst: &Arc<RnsPlan>) -> Arc<BaseConvPlan> {
        let key = (src.moduli().collect(), dst.moduli().collect());
        self.baseconv
            .get_or_build(key, || Arc::new(BaseConvPlan::new(src, dst)))
    }

    fn rescale_plan_for(&self, src: &Arc<RnsPlan>) -> Arc<RescalePlan> {
        self.rescale
            .get_or_build(src.moduli().collect(), || Arc::new(src.rescale_plan()))
    }

    fn rescale_extend_plan_for(
        &self,
        src: &Arc<RnsPlan>,
        dst: &Arc<RnsPlan>,
    ) -> Arc<RescaleExtendPlan> {
        let key = (src.moduli().collect(), dst.moduli().collect());
        self.rescale_extend
            .get_or_build(key, || Arc::new(src.rescale_extend_plan(dst)))
    }

    /// The compiled per-target-modulus MAC kernels of a conversion plan, served
    /// from the session kernel cache under
    /// `("baseconv_mac[<source basis>]", 64, m'_s)` keys — so every conversion
    /// over the same basis pair, from any plan object, shares one compilation.
    fn baseconv_mac_kernels(&self, bc: &BaseConvPlan, src: &RnsPlan) -> Vec<Arc<CompiledKernel>> {
        // The kernel constants depend on the source basis (cross-row tables),
        // not just the target modulus; the key carries the source moduli
        // verbatim — two bases must never share a key, a hash could collide.
        let op = format!(
            "baseconv_mac[{}]",
            src.moduli()
                .map(|m| format!("{m:x}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        bc.dst_plan()
            .moduli()
            .enumerate()
            .map(|(s, m)| {
                self.kernels
                    .get_or_compile(KernelCacheKey::new(op.clone(), 64, m), || {
                        bc.mac_kernel_ir(s)
                    })
                    .expect("generated baseconv kernels compile")
            })
            .collect()
    }

    /// Prices the direct (widening-accumulate) conversion path against the
    /// generated-kernel path for `k` source and `l` target moduli, and returns
    /// `true` when the generated path is cheaper on the session device. The
    /// direct path accumulates raw widening multiply-adds and reduces once per
    /// element; the generated path executes one fused modular
    /// multiply-accumulate per term plus a per-term fold of the pseudo-residues
    /// into the target ring.
    fn compiled_convert_is_faster(&self, k: u64, l: u64, cols: usize) -> bool {
        let mut direct = OpCounts::new();
        direct.add_mnemonic("mulmod", k + l); // pseudo-residues + final reductions
        direct.add_mnemonic("mulwide", l * k); // smac products
        direct.add_mnemonic("add", l * k); // smac accumulations
        let mut compiled = OpCounts::new();
        compiled.add_mnemonic("mulmod", k + l * k); // pseudo-residues + folds
        compiled.add_mnemonic("macmod", l * k);
        let cols = cols.max(1) as u64;
        let bytes = 8 * (k + l);
        let direct_est = self.cost.estimate_launch(&direct, cols, bytes);
        let compiled_est = self.cost.estimate_launch(&compiled, cols, bytes);
        compiled_est.total < direct_est.total
    }
}

// ----------------------------------------------------------------------
// Typed handles
// ----------------------------------------------------------------------

/// An `n`-point single-word NTT space handed out by [`Session::ntt`] — a cached
/// [`NttPlan64`] plus the batched launcher entry points.
#[derive(Clone)]
pub struct NttSpace<'s> {
    plan: Arc<NttPlan64>,
    // Spaces are session-scoped handles; the lifetime keeps the API uniform
    // with `RnsSpace` without holding data the space does not use yet.
    _session: std::marker::PhantomData<&'s Session>,
}

impl NttSpace<'_> {
    /// The underlying cached plan (for launcher-level access).
    pub fn plan(&self) -> &NttPlan64 {
        &self.plan
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.plan.n
    }

    /// The modulus of the coefficient ring.
    pub fn modulus(&self) -> u64 {
        self.plan.ctx.q
    }

    /// In-place forward transform on the inline hot path (Shoup multiplication,
    /// lazy reduction). Inputs must be reduced; outputs are reduced.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u64]) {
        self.plan.forward(data);
    }

    /// In-place inverse transform (with `1/n` scaling) on the inline hot path.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u64]) {
        self.plan.inverse(data);
    }

    /// Forward-transforms `data.len() / n` transforms in place with one
    /// launch per butterfly stage across the whole batch (grid = batch × n/2) —
    /// the launch count of the returned statistics is `log2 n + 1` however
    /// large the batch is.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n()`.
    pub fn forward_batch(&self, data: &mut [u64]) -> LaunchStats {
        self.plan.forward_batch_on_launcher(data)
    }

    /// Inverse counterpart of [`NttSpace::forward_batch`] (with `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a non-zero multiple of `self.n()`.
    pub fn inverse_batch(&self, data: &mut [u64]) -> LaunchStats {
        self.plan.inverse_batch_on_launcher(data)
    }
}

/// An RNS space (a basis of word-sized primes) handed out by [`Session::rns`]:
/// the factory for [`RnsVec`]s over the session's cached [`RnsPlan`].
#[derive(Clone)]
pub struct RnsSpace<'s> {
    session: &'s Session,
    plan: Arc<RnsPlan>,
}

impl<'s> RnsSpace<'s> {
    /// The underlying cached plan.
    pub fn plan(&self) -> &RnsPlan {
        &self.plan
    }

    /// The basis moduli, in basis order.
    pub fn moduli(&self) -> Vec<u64> {
        self.plan.moduli().collect()
    }

    /// The basis product (the dynamic range).
    pub fn product(&self) -> &BigUint {
        self.plan.product()
    }

    /// Encodes positional integers into a residue vector over this space.
    ///
    /// # Panics
    ///
    /// Panics if any value is not below the dynamic range.
    pub fn encode(&self, values: &[BigUint]) -> RnsVec<'s> {
        RnsVec {
            session: self.session,
            plan: Arc::clone(&self.plan),
            matrix: RnsMatrix::from_biguints(&self.plan, values),
        }
    }

    /// The session-cached conversion plan from this space's basis into `dst`'s
    /// (for launcher-level measurement; [`RnsVec::base_convert`] uses it
    /// implicitly).
    pub fn conversion_to(&self, dst: &RnsSpace<'_>) -> Arc<BaseConvPlan> {
        self.session.baseconv_plan(&self.plan, &dst.plan)
    }

    /// The session-cached rescale plan for this space's basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale_plan(&self) -> Arc<RescalePlan> {
        self.session.rescale_plan_for(&self.plan)
    }

    /// The session-cached fused rescale-and-extend plan into `dst`'s basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale_extend_to(&self, dst: &RnsSpace<'_>) -> Arc<RescaleExtendPlan> {
        self.session.rescale_extend_plan_for(&self.plan, &dst.plan)
    }

    /// The compiled per-target-modulus MAC kernels of `bc`, served from the
    /// session kernel cache (compiled on first request, shared after).
    pub fn conversion_kernels(&self, bc: &BaseConvPlan) -> Vec<Arc<CompiledKernel>> {
        self.session.baseconv_mac_kernels(bc, &self.plan)
    }

    /// Wraps an existing residue matrix (over this space's basis) in a vector
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the basis.
    pub fn wrap(&self, matrix: RnsMatrix) -> RnsVec<'s> {
        assert_eq!(
            matrix.row_count(),
            self.plan.moduli_count(),
            "matrix basis mismatch"
        );
        RnsVec {
            session: self.session,
            plan: Arc::clone(&self.plan),
            matrix,
        }
    }
}

/// A vector of big integers in residue form over a session-cached basis, with
/// chainable operations. Every operation routes through the session's plan and
/// kernel caches and — where more than one execution path exists — picks the
/// path the session cost model prices cheaper.
#[derive(Clone)]
pub struct RnsVec<'s> {
    session: &'s Session,
    plan: Arc<RnsPlan>,
    matrix: RnsMatrix,
}

impl<'s> RnsVec<'s> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The underlying residue matrix.
    pub fn matrix(&self) -> &RnsMatrix {
        &self.matrix
    }

    /// The space this vector lives over.
    pub fn space(&self) -> RnsSpace<'s> {
        RnsSpace {
            session: self.session,
            plan: Arc::clone(&self.plan),
        }
    }

    /// Decodes the vector back to positional integers (CRT per column).
    pub fn to_biguints(&self) -> Vec<BigUint> {
        self.plan.to_biguints(&self.matrix)
    }

    fn wrap(&self, matrix: RnsMatrix) -> RnsVec<'s> {
        RnsVec {
            session: self.session,
            plan: Arc::clone(&self.plan),
            matrix,
        }
    }

    /// Element-wise `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn add(&self, other: &RnsVec<'_>) -> RnsVec<'s> {
        self.wrap(self.plan.add(&self.matrix, &other.matrix))
    }

    /// Element-wise `self - other` (well-defined modulo the basis product).
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn sub(&self, other: &RnsVec<'_>) -> RnsVec<'s> {
        self.wrap(self.plan.sub(&self.matrix, &other.matrix))
    }

    /// Element-wise `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch.
    pub fn mul(&self, other: &RnsVec<'_>) -> RnsVec<'s> {
        self.wrap(self.plan.mul(&self.matrix, &other.matrix))
    }

    /// `a·self + y` with a positional scalar `a`.
    ///
    /// # Panics
    ///
    /// Panics on basis or length mismatch, or if `a` exceeds the dynamic range.
    pub fn axpy(&self, a: &BigUint, y: &RnsVec<'_>) -> RnsVec<'s> {
        let scalar = self.plan.to_residues(a);
        self.wrap(self.plan.axpy(&scalar, &self.matrix, &y.matrix))
    }

    /// Fast base extension into `dst`'s basis (the approximate `x + αM`
    /// conversion), through the session-cached [`BaseConvPlan`].
    ///
    /// The execution path is picked by the session cost model: the direct
    /// widening-accumulate kernels, or the *generated* fused multiply-accumulate
    /// kernels served from the session kernel cache — callers no longer choose
    /// between two methods.
    ///
    /// # Panics
    ///
    /// Panics under the [`RnsPlan::base_convert`] conditions.
    pub fn base_convert(&self, dst: &RnsSpace<'s>) -> RnsVec<'s> {
        let bc = self.session.baseconv_plan(&self.plan, &dst.plan);
        let k = self.plan.moduli_count() as u64;
        let l = dst.plan.moduli_count() as u64;
        let (matrix, _) = if self.session.compiled_convert_is_faster(k, l, self.len()) {
            let kernels = self.session.baseconv_mac_kernels(&bc, &self.plan);
            self.plan
                .base_convert_compiled_with(&bc, &self.matrix, &kernels)
        } else {
            self.plan.base_convert(&bc, &self.matrix)
        };
        RnsVec {
            session: self.session,
            plan: Arc::clone(&dst.plan),
            matrix,
        }
    }

    /// Approximate scaled rounding (the CKKS/BGV rescale): divides every
    /// element by the last basis modulus with rounding and returns the vector
    /// over the shortened basis, through the session-cached [`RescalePlan`].
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli.
    pub fn rescale(&self) -> RnsVec<'s> {
        let rp = self.session.rescale_plan_for(&self.plan);
        let (matrix, _) = self.plan.scale_and_round(&rp, &self.matrix);
        let out_moduli: Vec<u64> = rp.output_plan().moduli().collect();
        // The rescale plan already carries a fully built plan for the shortened
        // basis; seed the basis cache with it rather than rebuilding one (the
        // rebuild would redo primality validation and all precomputed tables).
        let plan = self
            .session
            .rns
            .get_or_build(out_moduli, || Arc::new(rp.output_plan().clone()));
        RnsVec {
            session: self.session,
            plan,
            matrix,
        }
    }

    /// The fused rescale-and-extend chain (BEHZ `FastBConvSK`): drops the last
    /// basis modulus with rounding **and** re-expresses the quotient in `dst`'s
    /// basis, through the session-cached [`RescaleExtendPlan`]. The fused
    /// single-sweep kernel and the two-pass rescale→extend chain compute
    /// bit-for-bit the same result; the session cost model picks whichever it
    /// prices cheaper for this vector's length
    /// ([`RescaleExtendPlan::fused_is_faster`]).
    ///
    /// # Panics
    ///
    /// Panics if the basis has fewer than two moduli, or under the
    /// [`RnsPlan::base_convert`] accumulator conditions.
    pub fn rescale_then_extend(&self, dst: &RnsSpace<'s>) -> RnsVec<'s> {
        let p = self.session.rescale_extend_plan_for(&self.plan, &dst.plan);
        let (matrix, _) = if p.fused_is_faster(&self.session.cost, self.len()) {
            self.plan.rescale_then_extend(&p, &self.matrix)
        } else {
            self.plan.rescale_then_extend_two_pass(&p, &self.matrix)
        };
        RnsVec {
            session: self.session,
            plan: Arc::clone(&dst.plan),
            matrix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_bignum::random::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_kernels_are_cached_per_spec_and_algorithm() {
        let session = Session::default();
        let spec = KernelSpec::new(KernelOp::ModMul, 256);
        let first = session.compile(&spec);
        let second = session.compile(&spec);
        assert!(Arc::ptr_eq(&first, &second));
        let karatsuba = session.compile_with_algorithm(&spec, MulAlgorithm::Karatsuba);
        assert!(!Arc::ptr_eq(&first, &karatsuba));
        let stats = session.stats();
        assert_eq!(stats.generated.hits, 1);
        assert_eq!(stats.generated.misses, 2);
    }

    #[test]
    fn ntt_plans_are_cached_by_modulus_and_size() {
        let session = Session::default();
        let a = session.ntt_default(64);
        let b = session.ntt_default(64);
        assert!(Arc::ptr_eq(&a.plan, &b.plan));
        let c = session.ntt_default(128);
        assert!(!Arc::ptr_eq(&a.plan, &c.plan));
        assert_eq!(session.stats().ntt, CacheStats { hits: 1, misses: 2 });
        // Round trip through the handle.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..64)
            .map(|_| {
                random_below(&mut rng, &BigUint::from(a.modulus()))
                    .to_u64()
                    .unwrap()
            })
            .collect();
        let mut work = data.clone();
        a.forward(&mut work);
        a.inverse(&mut work);
        assert_eq!(work, data);
    }

    #[test]
    fn multiword_ntt_plans_are_cached_per_limb_count() {
        let session = Session::default();
        let a = session.ntt_multiword::<2>(128, 32);
        let b = session.ntt_multiword::<2>(128, 32);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = session.stats();
        assert_eq!(stats.ntt_multiword, CacheStats { hits: 1, misses: 1 });
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<_> = (0..32).map(|_| a.ring.random_element(&mut rng)).collect();
        let mut work = data.clone();
        a.forward(&mut work);
        a.inverse(&mut work);
        assert_eq!(work, data);
    }

    #[test]
    fn rns_chain_matches_the_oracle_and_reuses_every_plan() {
        let session = Session::default();
        let src = session.rns_with_capacity(160);
        let src_moduli = src.moduli();
        let dst = session.rns(&src_moduli[..4]);
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<BigUint> = (0..9)
            .map(|_| random_below(&mut rng, src.product()))
            .collect();
        let v = src.encode(&values);
        let out = v.mul(&v).rescale_then_extend(&dst);
        // Oracle: square, rescale, extend — element by element.
        let ctx = RnsContext::with_moduli(&src.moduli());
        let dst_ctx = RnsContext::with_moduli(&dst.moduli());
        let out_ctx = ctx.without_last();
        for (c, x) in values.iter().enumerate() {
            let sq = (x * x) % src.product();
            let oracle =
                out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&sq)));
            assert_eq!(out.matrix().element(c), oracle, "column {c}");
        }
        let miss_baseline = session.stats();
        // The second identical chain builds nothing anywhere.
        let again = src.encode(&values).mul(&v).rescale_then_extend(&dst);
        assert_eq!(again.to_biguints(), out.to_biguints());
        let after = session.stats();
        assert_eq!(after.rns.misses, miss_baseline.rns.misses);
        assert_eq!(
            after.rescale_extend.misses,
            miss_baseline.rescale_extend.misses
        );
        assert_eq!(after.kernels.misses, miss_baseline.kernels.misses);
        assert!(after.rescale_extend.hits > miss_baseline.rescale_extend.hits);
    }

    #[test]
    fn rns_vec_ops_match_plan_results() {
        let session = Session::default();
        let space = session.rns_with_capacity(96);
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<BigUint> = (0..6)
            .map(|_| random_below(&mut rng, space.product()))
            .collect();
        let b: Vec<BigUint> = (0..6)
            .map(|_| random_below(&mut rng, space.product()))
            .collect();
        let va = space.encode(&a);
        let vb = space.encode(&b);
        let scalar = BigUint::from(0x1234_5678u64);
        for (c, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                va.add(&vb).to_biguints()[c],
                (x + y) % space.product(),
                "add {c}"
            );
            assert_eq!(
                va.mul(&vb).to_biguints()[c],
                (x * y) % space.product(),
                "mul {c}"
            );
            assert_eq!(
                va.axpy(&scalar, &vb).to_biguints()[c],
                (&(&scalar * x) + y) % space.product(),
                "axpy {c}"
            );
        }
        // rescale matches the oracle.
        let ctx = RnsContext::with_moduli(&space.moduli());
        let rescaled = va.rescale();
        for (c, x) in a.iter().enumerate() {
            assert_eq!(
                rescaled.matrix().element(c),
                ctx.scale_and_round(&ctx.to_residues(x)),
                "rescale {c}"
            );
        }
    }

    #[test]
    fn base_convert_handle_matches_the_direct_path() {
        let session = Session::default();
        let src = session.rns_with_capacity(128);
        let src_moduli = src.moduli();
        let dst = session.rns(&src_moduli[..5]);
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<BigUint> = (0..7)
            .map(|_| random_below(&mut rng, src.product()))
            .collect();
        let converted = src.encode(&values).base_convert(&dst);
        let ctx = RnsContext::with_moduli(&src.moduli());
        let dst_ctx = RnsContext::with_moduli(&dst.moduli());
        for (c, v) in values.iter().enumerate() {
            assert_eq!(
                converted.matrix().element(c),
                ctx.base_convert(&dst_ctx, &ctx.to_residues(v)),
                "column {c}"
            );
        }
    }

    #[test]
    fn batched_ntt_space_amortizes_stage_launches() {
        let session = Session::default();
        let space = session.ntt_default(64);
        let mut rng = StdRng::seed_from_u64(6);
        let q = BigUint::from(space.modulus());
        let data: Vec<u64> = (0..8 * 64)
            .map(|_| random_below(&mut rng, &q).to_u64().unwrap())
            .collect();
        let mut batched = data.clone();
        let stats = space.forward_batch(&mut batched);
        assert_eq!(stats.launches, 6 + 1, "log2(64) stages + normalize");
        let inv = space.inverse_batch(&mut batched);
        assert_eq!(inv.launches, 6 + 1);
        assert_eq!(batched, data);
    }
}
