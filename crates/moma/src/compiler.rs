//! The compiler facade: spec in, generated kernel out.

use moma_ir::cost::OpCounts;
use moma_ir::emit::{emit_cuda, emit_rust};
use moma_ir::{interp, Kernel};
use moma_rewrite::{builders, lower, lower_with_trace, KernelSpec, Lowered, LoweringConfig};

/// A generated, fully lowered cryptographic kernel.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// The spec the kernel was generated from.
    pub spec: KernelSpec,
    /// The machine-level kernel IR.
    pub kernel: Kernel,
    /// Per-stage lowering statistics.
    pub lowered: Lowered,
    /// Emitted CUDA-like C source (what the paper's tool chain hands to nvcc).
    pub cuda_source: String,
    /// Emitted Rust source (for inspection and documentation).
    pub rust_source: String,
    /// Static word-level operation counts (the cost model input).
    pub op_counts: OpCounts,
}

impl GeneratedKernel {
    /// Executes the generated kernel once on the given machine words (one `u64` per
    /// surviving parameter, in signature order) by interpretation.
    ///
    /// # Errors
    ///
    /// Returns the interpreter error if the inputs do not match the kernel signature.
    pub fn run(&self, inputs: &[u64]) -> Result<Vec<u64>, interp::InterpError> {
        interp::run(&self.kernel, inputs).map(|r| r.outputs)
    }

    /// Number of machine words per original value (padded width / word width).
    pub fn words_per_value(&self) -> usize {
        (self.spec.padded_bits() / self.lowered.word_bits) as usize
    }
}

/// The compiler: a [`LoweringConfig`] plus convenience entry points.
///
/// # Example
///
/// ```
/// use moma::{Compiler, KernelOp, KernelSpec, MulAlgorithm};
///
/// let compiler = Compiler::new(moma::LoweringConfig {
///     mul_algorithm: MulAlgorithm::Karatsuba,
///     ..Default::default()
/// });
/// let butterfly = compiler.compile(&KernelSpec::new(KernelOp::Butterfly, 384));
/// assert!(butterfly.kernel.is_machine_level(64));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Compiler {
    /// The lowering configuration used for every kernel.
    pub config: LoweringConfig,
}

impl Compiler {
    /// Creates a compiler with an explicit configuration.
    pub fn new(config: LoweringConfig) -> Self {
        Compiler { config }
    }

    /// Generates, lowers, and emits one kernel.
    ///
    /// # Panics
    ///
    /// Panics if emission fails, which would indicate an incomplete lowering (a bug).
    pub fn compile(&self, spec: &KernelSpec) -> GeneratedKernel {
        let hl = builders::build(spec);
        let lowered = lower(&hl, &self.config);
        let cuda_source = emit_cuda(&lowered.kernel).expect("lowered kernels are emittable");
        let rust_source = emit_rust(&lowered.kernel).expect("lowered kernels are emittable");
        GeneratedKernel {
            spec: *spec,
            kernel: lowered.kernel.clone(),
            op_counts: lowered.op_counts(),
            cuda_source,
            rust_source,
            lowered,
        }
    }

    /// Like [`Compiler::compile`], but also returns the per-stage rewrite trace
    /// (the §4 worked example as the tool performs it).
    pub fn compile_with_trace(
        &self,
        spec: &KernelSpec,
    ) -> (GeneratedKernel, Vec<(String, String)>) {
        let hl = builders::build(spec);
        let (lowered, trace) = lower_with_trace(&hl, &self.config);
        let cuda_source = emit_cuda(&lowered.kernel).expect("lowered kernels are emittable");
        let rust_source = emit_rust(&lowered.kernel).expect("lowered kernels are emittable");
        (
            GeneratedKernel {
                spec: *spec,
                kernel: lowered.kernel.clone(),
                op_counts: lowered.op_counts(),
                cuda_source,
                rust_source,
                lowered,
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_rewrite::KernelOp;

    #[test]
    fn compile_produces_all_artifacts() {
        let compiler = Compiler::default();
        let k = compiler.compile(&KernelSpec::new(KernelOp::ModMul, 256));
        assert!(k.kernel.is_machine_level(64));
        assert!(k.cuda_source.contains("moma_modmul_256"));
        assert!(k.rust_source.contains("pub fn moma_modmul_256"));
        assert!(k.op_counts.multiplications() >= 16);
        assert_eq!(k.words_per_value(), 4);
    }

    #[test]
    fn generated_modadd_runs_correctly() {
        let compiler = Compiler::default();
        let k = compiler.compile(&KernelSpec::new(KernelOp::ModAdd, 128));
        // Params: a_hi, a_lo, b_hi, b_lo, q_hi, q_lo. Compute (3 + 5) mod 7 = 1.
        let out = k.run(&[0, 3, 0, 5, 0, 7]).unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn trace_is_returned() {
        let compiler = Compiler::default();
        let (_, trace) = compiler.compile_with_trace(&KernelSpec::new(KernelOp::ModAdd, 128));
        assert!(trace.len() >= 3);
    }
}
