//! Published baseline numbers digitised from the paper's figures.
//!
//! The paper compares against closed-source libraries (ICICLE, GZKP, Libsnark, GMP,
//! GRNS, OpenFHE, AVX-NTT) and ASICs (RPU, FPMM, PipeZK) whose results cannot be
//! re-measured here. To regenerate every figure with all of its lines, this module
//! records the values *as reported by the paper* (read off the published log-scale
//! plots, so they are approximate to within ~20%). All values are nanoseconds per
//! butterfly for NTT figures and nanoseconds per element for BLAS figures.

/// One published reference series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reference {
    /// System name as used in the paper's legends.
    pub system: &'static str,
    /// Platform (GPU model, CPU, or "ASIC").
    pub platform: &'static str,
    /// Input bit-width the series belongs to.
    pub bits: u32,
    /// Points `(log2 n, ns per butterfly)` for NTT series.
    pub points: &'static [(u32, f64)],
}

/// Figure 1 / Figure 3b — 256-bit NTT baselines.
pub const NTT_256_BASELINES: [Reference; 4] = [
    Reference {
        system: "ICICLE",
        platform: "H100",
        bits: 256,
        points: &[
            (10, 30.0),
            (12, 16.0),
            (14, 12.0),
            (16, 10.0),
            (18, 9.0),
            (20, 9.0),
            (22, 9.5),
        ],
    },
    Reference {
        system: "GZKP",
        platform: "V100",
        bits: 256,
        points: &[(16, 1.6), (18, 1.2), (20, 1.0), (22, 0.9)],
    },
    Reference {
        system: "PipeZK",
        platform: "ASIC",
        bits: 256,
        points: &[(16, 2.8), (18, 2.8), (20, 2.8)],
    },
    Reference {
        system: "FPMM",
        platform: "ASIC",
        bits: 256,
        points: &[(12, 1.4), (16, 1.4)],
    },
];

/// Figure 3a — 128-bit NTT baselines.
pub const NTT_128_BASELINES: [Reference; 4] = [
    Reference {
        system: "OpenFHE",
        platform: "CPU",
        bits: 128,
        points: &[(10, 60.0), (12, 55.0), (14, 52.0), (16, 50.0)],
    },
    Reference {
        system: "AVX-NTT",
        platform: "CPU",
        bits: 128,
        points: &[(10, 18.0), (12, 16.0), (14, 15.0), (16, 14.0)],
    },
    Reference {
        system: "RPU",
        platform: "ASIC",
        bits: 128,
        points: &[(10, 0.75), (12, 0.75), (14, 0.75), (16, 0.75)],
    },
    Reference {
        system: "FPMM",
        platform: "ASIC",
        bits: 128,
        points: &[(12, 0.95), (16, 0.95)],
    },
];

/// Figure 3c — 384-bit NTT baselines.
pub const NTT_384_BASELINES: [Reference; 2] = [
    Reference {
        system: "ICICLE",
        platform: "H100",
        bits: 384,
        points: &[
            (10, 40.0),
            (12, 25.0),
            (14, 20.0),
            (16, 17.0),
            (18, 16.0),
            (20, 16.0),
        ],
    },
    Reference {
        system: "FPMM",
        platform: "ASIC",
        bits: 384,
        points: &[(12, 2.1), (16, 2.1)],
    },
];

/// Figure 3d — 768-bit NTT baselines.
pub const NTT_768_BASELINES: [Reference; 3] = [
    Reference {
        system: "PipeZK",
        platform: "ASIC",
        bits: 768,
        points: &[(14, 22.0), (16, 22.0), (18, 22.0), (20, 22.0)],
    },
    Reference {
        system: "GZKP",
        platform: "V100",
        bits: 768,
        points: &[(16, 7.0), (18, 6.0), (20, 5.5)],
    },
    Reference {
        system: "Libsnark",
        platform: "CPU",
        bits: 768,
        points: &[(14, 250.0), (16, 240.0), (18, 230.0), (20, 230.0)],
    },
];

/// One BLAS baseline value: `(bits, ns per element)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlasReference {
    /// System name.
    pub system: &'static str,
    /// Platform.
    pub platform: &'static str,
    /// BLAS operation name (paper labels: "vector multiplication", "vector addition",
    /// "vector subtraction", "axpy").
    pub op: &'static str,
    /// Points `(bit-width, ns per element)`.
    pub points: &'static [(u32, f64)],
}

/// Figure 2 — GMP (CPU, OpenMP over all cores) per-element times.
pub const BLAS_GMP: [BlasReference; 4] = [
    BlasReference {
        system: "GMP",
        platform: "Xeon Gold 6248",
        op: "vector multiplication",
        points: &[(128, 60.0), (256, 90.0), (512, 55.0), (1024, 45.0)],
    },
    BlasReference {
        system: "GMP",
        platform: "Xeon Gold 6248",
        op: "vector addition",
        points: &[(128, 55.0), (256, 60.0), (512, 45.0), (1024, 40.0)],
    },
    BlasReference {
        system: "GMP",
        platform: "Xeon Gold 6248",
        op: "vector subtraction",
        points: &[(128, 55.0), (256, 60.0), (512, 45.0), (1024, 40.0)],
    },
    BlasReference {
        system: "GMP",
        platform: "Xeon Gold 6248",
        op: "axpy",
        points: &[(128, 110.0), (256, 140.0), (512, 95.0), (1024, 85.0)],
    },
];

/// Figure 2 — GRNS (V100) per-element times.
pub const BLAS_GRNS: [BlasReference; 4] = [
    BlasReference {
        system: "GRNS",
        platform: "V100",
        op: "vector multiplication",
        points: &[(128, 4.0), (256, 6.0), (512, 10.0), (1024, 20.0)],
    },
    BlasReference {
        system: "GRNS",
        platform: "V100",
        op: "vector addition",
        points: &[(128, 3.0), (256, 4.0), (512, 6.0), (1024, 10.0)],
    },
    BlasReference {
        system: "GRNS",
        platform: "V100",
        op: "vector subtraction",
        points: &[(128, 3.0), (256, 4.0), (512, 6.0), (1024, 10.0)],
    },
    BlasReference {
        system: "GRNS",
        platform: "V100",
        op: "axpy",
        points: &[(128, 7.0), (256, 10.0), (512, 16.0), (1024, 30.0)],
    },
];

/// Headline speedup claims from the paper's abstract and §5, used by the experiment
/// report to check whether the reproduction preserves the qualitative result.
pub mod claims {
    /// MoMA vs ICICLE, 256-bit NTT, average over all sizes (×).
    pub const NTT_256_VS_ICICLE: f64 = 13.0;
    /// MoMA vs ICICLE, 384-bit NTT, average over all sizes (×).
    pub const NTT_384_VS_ICICLE: f64 = 4.8;
    /// Minimum MoMA speedup over GMP/GRNS across all BLAS ops and widths (×).
    pub const BLAS_MIN_SPEEDUP: f64 = 13.0;
    /// Minimum MoMA speedup over GRNS for addition/subtraction (×).
    pub const BLAS_ADDSUB_VS_GRNS: f64 = 31.0;
    /// Minimum MoMA speedup over GMP for addition/subtraction (×).
    pub const BLAS_ADDSUB_VS_GMP: f64 = 527.0;
    /// Karatsuba vs schoolbook at 128 bits (×, Figure 5b).
    pub const KARATSUBA_128_SPEEDUP: f64 = 2.1;
    /// Schoolbook vs Karatsuba at 768 bits (×, Figure 5b).
    pub const SCHOOLBOOK_768_SPEEDUP: f64 = 1.6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_series_are_well_formed() {
        for r in NTT_256_BASELINES
            .iter()
            .chain(NTT_128_BASELINES.iter())
            .chain(NTT_384_BASELINES.iter())
            .chain(NTT_768_BASELINES.iter())
        {
            assert!(!r.points.is_empty(), "{} has points", r.system);
            assert!(r.points.iter().all(|(_, ns)| *ns > 0.0));
            assert!(
                r.points.windows(2).all(|w| w[0].0 < w[1].0),
                "{} sizes sorted",
                r.system
            );
        }
    }

    #[test]
    fn blas_references_cover_all_widths() {
        for r in BLAS_GMP.iter().chain(BLAS_GRNS.iter()) {
            let widths: Vec<u32> = r.points.iter().map(|(b, _)| *b).collect();
            assert_eq!(widths, vec![128, 256, 512, 1024]);
        }
    }

    #[test]
    fn claims_are_the_published_numbers() {
        assert_eq!(claims::NTT_256_VS_ICICLE, 13.0);
        assert_eq!(claims::BLAS_ADDSUB_VS_GMP, 527.0);
    }
}
