//! Memory-lifecycle properties of the session runtime: allocation-free
//! steady-state serving off the shared buffer pool, and warm-start
//! snapshot/restore of every plan cache with fail-closed validation.

use moma::bignum::BigUint;
use moma::{Session, SnapshotError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_values(rng: &mut StdRng, below: &BigUint, n: usize) -> Vec<BigUint> {
    (0..n)
        .map(|_| moma::bignum::random::random_below(rng, below))
        .collect()
}

/// The acceptance property of the pooled memory lifecycle: a warm session
/// drives a long mixed workload — batched NTTs and full RNS chains — without
/// a single further pool miss, i.e. without one heap plane allocation.
#[test]
fn steady_state_serving_is_allocation_free_after_warmup() {
    let session = Session::default();
    let ntt = session.ntt_default(64);
    let src = session.rns_with_capacity(160);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let mut rng = StdRng::seed_from_u64(0x57ea_d57a);
    let q = BigUint::from(ntt.modulus());

    // Warm-up: one round of every request shape the loop below issues, so
    // every plan is built and the pool holds planes for the peak concurrent
    // demand of a single request.
    let warm_values = random_values(&mut rng, src.product(), 16);
    let scalar = BigUint::from(0x5eed_f00du64);
    {
        let a = src.encode(&warm_values);
        let b = src.encode(&warm_values);
        let _ = a.mul(&b).rescale_then_extend(&dst);
        let _ = a.mul_rescale_then_extend(&b, &dst);
        let _ = a.mul_axpy(&b, &scalar, &b);
        let _ = a.add(&b).sub(&b);
        let _ = a.base_convert(&dst);
        let _ = a.rescale();
        let mut data: Vec<u64> = (0..4 * 64)
            .map(|_| {
                moma::bignum::random::random_below(&mut rng, &q)
                    .to_u64()
                    .unwrap()
            })
            .collect();
        let _ = ntt.forward_batch(&mut data);
        let _ = ntt.inverse_batch(&mut data);
    }

    // Steady state: >= 100 mixed requests, zero pool misses, zero plan-cache
    // misses, and `allocs == 0` on every stats-returning path.
    let warm = session.stats();
    for round in 0..110 {
        match round % 5 {
            0 => {
                let mut data: Vec<u64> = (0..4 * 64)
                    .map(|_| {
                        moma::bignum::random::random_below(&mut rng, &q)
                            .to_u64()
                            .unwrap()
                    })
                    .collect();
                let fwd = ntt.forward_batch(&mut data);
                assert_eq!(fwd.allocs, 0, "round {round}: NTT batch allocated");
                let inv = ntt.inverse_batch(&mut data);
                assert_eq!(inv.allocs, 0, "round {round}: NTT inverse allocated");
            }
            1 => {
                let values = random_values(&mut rng, src.product(), 16);
                let a = src.encode(&values);
                let b = a.clone();
                let (out, stats) = a.mul_with_stats(&b);
                assert_eq!(stats.allocs, 0, "round {round}: mul allocated");
                let (_, stats) = out.rescale_then_extend_with_stats(&dst);
                assert_eq!(stats.allocs, 0, "round {round}: rescale chain allocated");
            }
            2 => {
                let values = random_values(&mut rng, src.product(), 16);
                let a = src.encode(&values);
                let b = src.encode(&values);
                let (_, stats) = a.mul_rescale_then_extend_with_stats(&b, &dst);
                assert_eq!(stats.allocs, 0, "round {round}: fused chain allocated");
            }
            3 => {
                let values = random_values(&mut rng, src.product(), 16);
                let a = src.encode(&values);
                let b = src.encode(&values);
                let (_, stats) = a.mul_axpy_with_stats(&b, &scalar, &b);
                assert_eq!(stats.allocs, 0, "round {round}: mul_axpy allocated");
                let _ = a.add(&b).sub(&b);
                let _ = a.rescale();
            }
            _ => {
                let values = random_values(&mut rng, src.product(), 16);
                let a = src.encode(&values);
                let _ = a.base_convert(&dst);
            }
        }
    }
    let after = session.stats();
    assert_eq!(
        after.pool.misses, warm.pool.misses,
        "steady state must never miss the pool (i.e. never heap-allocate a plane)"
    );
    assert_eq!(after.ntt.misses, warm.ntt.misses, "no plan rebuilds");
    assert_eq!(after.rns.misses, warm.rns.misses);
    assert_eq!(after.rescale_extend.misses, warm.rescale_extend.misses);
    assert!(
        after.pool.hits > warm.pool.hits,
        "the loop did use the pool"
    );
}

/// Builds a session with every plan cache populated, returning it and a
/// workload to crosscheck restored plans against.
fn warm_session() -> (Session, Vec<BigUint>) {
    let session = Session::default();
    let _ = session.ntt_default(64);
    let _ = session.ntt(12289, 16);
    let _ = session.ntt_multiword::<2>(128, 32);
    let src = session.rns_with_capacity(160);
    let src_moduli = src.moduli();
    let dst = session.rns(&src_moduli[..4]);
    let mut rng = StdRng::seed_from_u64(0x5a47);
    let values = random_values(&mut rng, src.product(), 9);
    let v = src.encode(&values);
    // Touch every chain so conversion, rescale, and fused plans all exist.
    let _ = v.mul(&v).rescale_then_extend(&dst);
    let _ = v.base_convert(&dst);
    let _ = v.rescale();
    // And a negacyclic ring ladder, so the negacyclic-plan and ring-context
    // caches (snapshot sections 8 and 9) are populated too.
    let _ = session.ring(16, &ring_ladder());
    (session, values)
}

/// The ladder the lifecycle tests put through the ring caches.
fn ring_ladder() -> Vec<u64> {
    moma::ring::default_ladder(16, 3)
}

#[test]
fn snapshot_restores_every_plan_cache_bit_for_bit() {
    let (warm, values) = warm_session();
    let bytes = warm.snapshot();

    let fresh = Session::default();
    let report = fresh.restore(&bytes).expect("snapshot restores");
    assert_eq!(report.ntt_plans, 2);
    assert_eq!(report.multiword_plans, 1);
    assert!(report.rns_plans >= 2, "source and target bases at least");
    assert!(report.baseconv_plans >= 1);
    assert!(report.rescale_plans >= 1);
    // The explicit fused chain plus one per ladder step of the ring context.
    assert_eq!(report.rescale_extend_plans, 1 + (ring_ladder().len() - 1));
    assert_eq!(report.negacyclic_plans, ring_ladder().len());
    assert_eq!(report.ring_contexts, 1);
    assert!(report.capacity_entries >= 1);

    // Every request the warm session served is now a pure cache hit: no
    // single-word NTT or RNS-family plan is rebuilt.
    let src = fresh.rns_with_capacity(160);
    let src_moduli = src.moduli();
    let dst = fresh.rns(&src_moduli[..4]);
    let v = fresh_encode_crosscheck(&warm, &fresh, &values, &src);
    let _ = v.mul(&v).rescale_then_extend(&dst);
    let _ = v.base_convert(&dst);
    let _ = fresh.ntt_default(64);
    let stats = fresh.stats();
    assert_eq!(stats.ntt.misses, 0, "restored NTT plans serve all requests");
    assert_eq!(stats.rns.misses, 0, "restored RNS plans serve all requests");
    assert_eq!(stats.baseconv.misses, 0);
    assert_eq!(stats.rescale_extend.misses, 0);

    // The ring caches round-trip too: re-requesting the warm ladder is a pure
    // hit (the one recorded miss is restore's own reassembly), and the
    // restored context computes bit-for-bit what the original does.
    let misses_after_restore = (stats.ring.misses, stats.ntt_negacyclic.misses);
    let ladder = ring_ladder();
    let warm_ring = warm.ring(16, &ladder);
    let fresh_ring = fresh.ring(16, &ladder);
    let after = fresh.stats();
    assert_eq!(
        (after.ring.misses, after.ntt_negacyclic.misses),
        misses_after_restore,
        "restored ring caches serve requests without rebuilding"
    );
    let coeffs: Vec<BigUint> = (0..16u64).map(|i| BigUint::from(i * i + 3)).collect();
    let wa = warm_ring.encode(0, &coeffs);
    let fa = fresh_ring.encode(0, &coeffs);
    let (wp, _) = warm_ring.ladder_step(&wa, &wa);
    let (fp, _) = fresh_ring.ladder_step(&fa, &fa);
    assert_eq!(
        warm_ring.decode(&wp),
        fresh_ring.decode(&fp),
        "ring ladder crosscheck"
    );

    // Restoring the same snapshot again seeds nothing (keys all present).
    let again = fresh.restore(&bytes).expect("idempotent restore");
    assert_eq!(again.ntt_plans, 0);
    assert_eq!(again.rns_plans, 0);
    assert_eq!(again.rescale_extend_plans, 0);
    assert_eq!(again.negacyclic_plans, 0);
    assert_eq!(again.ring_contexts, 0);
}

/// Encodes the same values on both sessions and asserts the restored plans
/// compute bit-for-bit what the originals do — the crosscheck that restored
/// tables are the same tables, not merely compatible ones.
fn fresh_encode_crosscheck(
    warm: &Session,
    fresh: &Session,
    values: &[BigUint],
    fresh_src: &moma::RnsSpace,
) -> moma::RnsVec {
    let warm_src = warm.rns_with_capacity(160);
    let warm_moduli = warm_src.moduli();
    let warm_dst = warm.rns(&warm_moduli[..4]);
    let fresh_moduli = fresh_src.moduli();
    assert_eq!(warm_moduli, fresh_moduli, "identical deterministic basis");
    let fresh_dst = fresh.rns(&fresh_moduli[..4]);
    let a = warm_src.encode(values);
    let b = fresh_src.encode(values);
    assert_eq!(a.matrix(), b.matrix(), "encode crosscheck");
    let wa = a.mul(&a).rescale_then_extend(&warm_dst);
    let wb = b.mul(&b).rescale_then_extend(&fresh_dst);
    assert_eq!(wa.matrix(), wb.matrix(), "full chain crosscheck");

    // And the restored single-word NTT plan transforms identically.
    let warm_ntt = warm.ntt_default(64);
    let fresh_ntt = fresh.ntt_default(64);
    let mut rng = StdRng::seed_from_u64(9);
    let mut x: Vec<u64> = (0..64)
        .map(|_| rng.gen_range(0..warm_ntt.modulus()))
        .collect();
    let mut y = x.clone();
    warm_ntt.forward(&mut x);
    fresh_ntt.forward(&mut y);
    assert_eq!(x, y, "NTT crosscheck");
    b
}

#[test]
fn snapshot_rejects_truncation_and_tampering() {
    let (warm, _) = warm_session();
    let bytes = warm.snapshot();

    // Truncated anywhere: fail closed. (A clean 8-byte-boundary cut can only
    // ever fail the checksum; mid-field cuts fail earlier.)
    for cut in [1, 8, 11, bytes.len() / 2, bytes.len() - 1] {
        let truncated = &bytes[..cut];
        let fresh = Session::default();
        assert!(
            fresh.restore(truncated).is_err(),
            "cut at {cut} must be rejected"
        );
        assert_eq!(fresh.stats().ntt.misses, 0, "nothing was seeded");
    }

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Session::default().restore(&patch_checksum(bad)),
        Err(SnapshotError::BadMagic)
    ));

    // Version bump.
    let mut bad = bytes.clone();
    bad[8] = 0x7f;
    assert!(matches!(
        Session::default().restore(&patch_checksum(bad)),
        Err(SnapshotError::BadVersion { found: 0x7f })
    ));

    // Foreign toolchain identity: rejected up front. The header is
    // magic(8) + version(4) + toolchain(len:4 + bytes) + build(len:4 + bytes).
    let tlen = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut bad = bytes.clone();
    bad[16] ^= 0x20; // flip the case of the first toolchain byte
    assert!(matches!(
        Session::default().restore(&patch_checksum(bad)),
        Err(SnapshotError::IncompatibleBuild {
            what: "toolchain",
            ..
        })
    ));

    // Foreign build identity likewise.
    let mut bad = bytes.clone();
    bad[16 + tlen + 4] ^= 0x20;
    assert!(matches!(
        Session::default().restore(&patch_checksum(bad)),
        Err(SnapshotError::IncompatibleBuild { what: "build", .. })
    ));

    // Ordering: when a table is corrupted *and* the identity mismatches, the
    // identity gate fires — cross-build bytes never reach a table validator.
    let mut bad = bytes.clone();
    bad[16] ^= 0x20;
    let mid = bytes.len() / 2;
    bad[mid] ^= 0xff;
    let fresh = Session::default();
    assert!(matches!(
        fresh.restore(&patch_checksum(bad)),
        Err(SnapshotError::IncompatibleBuild {
            what: "toolchain",
            ..
        })
    ));
    assert_eq!(fresh.stats().ntt.misses, 0, "nothing was seeded");

    // A flipped content byte without a checksum patch.
    let mut bad = bytes.clone();
    let mid = bytes.len() / 2;
    bad[mid] ^= 1;
    assert!(matches!(
        Session::default().restore(&bad),
        Err(SnapshotError::BadChecksum)
    ));

    // A flipped table word *with* a correct checksum: the arithmetic
    // validation must catch it. Flip one bit in each 8-byte word of the
    // content and require every attempt to fail (whichever section the word
    // lands in, some validator owns it).
    let mut rejected = 0;
    for word in (12..bytes.len() - 8).step_by(8) {
        let mut bad = bytes.clone();
        bad[word] ^= 1;
        let fresh = Session::default();
        if fresh.restore(&patch_checksum(bad)).is_err() {
            rejected += 1;
            assert_eq!(
                fresh.stats().ntt.misses + fresh.stats().rns.misses,
                0,
                "a rejected snapshot must seed nothing"
            );
        }
    }
    // Not every single-bit flip is semantically detectable (e.g. a capacity
    // memo entry or a section count shrink can parse as a smaller valid
    // snapshot), but table words dominate the byte stream: the overwhelming
    // majority of flips must be rejected.
    let words = (bytes.len() - 20) / 8;
    assert!(
        rejected * 10 >= words * 8,
        "only {rejected}/{words} single-word tampers were rejected"
    );
}

#[test]
fn snapshot_rejects_wrong_key_or_basis() {
    let warm = Session::default();
    let _ = warm.ntt_default(64);
    let bytes = warm.snapshot();

    // The NTT section of this minimal snapshot is: ...tag,len,count,q,n,...
    // Find q (the paper modulus) in the byte stream and retarget the plan at
    // a different (valid) modulus: the tables no longer validate.
    let q = warm.ntt_default(64).modulus();
    let pos = find_word(&bytes, q).expect("q serialized");
    let mut bad = bytes.clone();
    bad[pos..pos + 8].copy_from_slice(&12289u64.to_le_bytes());
    let fresh = Session::default();
    assert!(matches!(
        fresh.restore(&patch_checksum(bad)),
        Err(SnapshotError::Ntt(_))
    ));
    assert_eq!(fresh.stats().ntt.misses, 0, "nothing seeded");

    // Same fail-closed behaviour for a tampered RNS basis modulus. The basis
    // is requested explicitly (no capacity memo) so the first serialized
    // occurrence of `m0` is the plan's own basis list.
    let moduli = Session::default().rns_with_capacity(96).moduli();
    let warm = Session::default();
    let src = warm.rns(&moduli);
    let m0 = src.moduli()[0];
    let bytes = warm.snapshot();
    let pos = find_word(&bytes, m0).expect("basis modulus serialized");
    let mut bad = bytes.clone();
    // Another valid-looking prime-sized odd word that is not m0.
    bad[pos..pos + 8].copy_from_slice(&(m0 ^ 2).to_le_bytes());
    let fresh = Session::default();
    assert!(fresh.restore(&patch_checksum(bad)).is_err());
    assert_eq!(fresh.stats().rns.misses, 0, "nothing seeded");

    // An unknown section tag fails closed rather than being skipped.
    let mut bad = bytes[..bytes.len() - 8].to_vec();
    bad.extend_from_slice(&99u32.to_le_bytes());
    bad.extend_from_slice(&0u64.to_le_bytes());
    bad.extend_from_slice(&[0u8; 8]); // room for the recomputed trailer
    assert!(matches!(
        Session::default().restore(&patch_checksum(bad)),
        Err(SnapshotError::UnknownSection { tag: 99 })
    ));
}

/// Recomputes the trailing FNV-1a checksum after tampering with content bytes
/// (so the arithmetic validators, not the checksum, are what reject it).
fn patch_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    let n = bytes.len() - 8;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[..n] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[n..].copy_from_slice(&hash.to_le_bytes());
    bytes
}

fn find_word(bytes: &[u8], word: u64) -> Option<usize> {
    let needle = word.to_le_bytes();
    (0..bytes.len().saturating_sub(8)).find(|&i| bytes[i..i + 8] == needle)
}
