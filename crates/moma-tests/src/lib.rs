//! Host package for the cross-crate integration tests in the repository-level `tests/`
//! directory. See the `[[test]]` targets in this package's `Cargo.toml`; run them with
//! `cargo test -p moma-tests`.

#![forbid(unsafe_code)]
