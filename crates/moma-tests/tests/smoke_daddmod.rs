//! Cross-crate smoke test for the whole code-generation pipeline.
//!
//! Hand-builds a 128-bit `daddmod` kernel with `moma_ir::KernelBuilder` (the paper's
//! Equation 30), lowers it to 64-bit machine words with `moma-rewrite`, validates the
//! generated code, runs it through the `moma-ir` interpreter, and checks every result
//! against the `moma-bignum` arbitrary-precision oracle.

use moma_bignum::BigUint;
use moma_ir::{interp, validate, Kernel, KernelBuilder, Op, Operand, Ty};
use moma_rewrite::{lower, HighLevelKernel, KernelOp, KernelSpec, LoweringConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BITS: u32 = 128;
const WORD_BITS: u32 = 64;
const WORDS: usize = (BITS / WORD_BITS) as usize;

/// Packs `value` into the lowered kernel's parameter slots for original parameter
/// `root`. Split parameters are named `root_hi…` / `root_lo…` and appear in the
/// parameter list most significant word first.
fn pack(kernel: &Kernel, root: &str, value: &BigUint) -> Vec<(usize, u64)> {
    let limbs = value.to_limbs_le(WORDS);
    let mut msb_first: Vec<u64> = limbs;
    msb_first.reverse();
    let mut out = Vec::new();
    let mut next = 0usize;
    for (slot, p) in kernel.params.iter().enumerate() {
        let name = &kernel.var(*p).name;
        if name == root || name.starts_with(&format!("{root}_")) {
            out.push((slot, msb_first[next]));
            next += 1;
        }
    }
    assert_eq!(
        next, WORDS,
        "parameter {root} should lower to {WORDS} words"
    );
    out
}

/// Reassembles most-significant-first output words into a `BigUint`.
fn unpack(outputs: &[u64]) -> BigUint {
    outputs.iter().fold(BigUint::zero(), |acc, &w| {
        (acc << WORD_BITS) + BigUint::from(w)
    })
}

#[test]
fn daddmod_128_matches_bignum_oracle() {
    // 1. Build the high-level kernel: c = (a + b) mod q over UInt(128).
    let mut kb = KernelBuilder::new("daddmod_128");
    let a = kb.param("a", Ty::UInt(BITS));
    let b = kb.param("b", Ty::UInt(BITS));
    let q = kb.param("q", Ty::UInt(BITS));
    let c = kb.output("c", Ty::UInt(BITS));
    kb.push(
        vec![c],
        Op::AddMod {
            a: Operand::Var(a),
            b: Operand::Var(b),
            q: Operand::Var(q),
        },
    );
    let built = kb.build();
    validate::validate(&built).expect("high-level kernel must type-check");
    let hl = HighLevelKernel {
        kernel: built,
        spec: KernelSpec::new(KernelOp::ModAdd, BITS),
        zero_top_bits: 0,
    };

    // 2. Lower it to 64-bit machine words with the rewrite system.
    let lowered = lower(&hl, &LoweringConfig::default());
    let kernel = &lowered.kernel;
    assert!(
        kernel.is_machine_level(WORD_BITS),
        "lowering must reach machine level"
    );
    validate::validate(kernel).expect("lowered kernel must type-check");

    // 3. Interpret the generated code and compare with the oracle.
    let mut rng = StdRng::seed_from_u64(0x00da_0d0d);
    for round in 0..100 {
        // A 128-bit modulus with the top bit set, and operands already reduced.
        let q_big = {
            let mut limbs: Vec<u64> = (0..WORDS).map(|_| rng.gen()).collect();
            limbs[WORDS - 1] |= 1 << 63;
            BigUint::from_limbs_le(limbs)
        };
        let draw = |rng: &mut StdRng| {
            BigUint::from_limbs_le((0..WORDS).map(|_| rng.gen()).collect::<Vec<u64>>()) % &q_big
        };
        let a_big = draw(&mut rng);
        let b_big = draw(&mut rng);

        let mut inputs = vec![0u64; kernel.params.len()];
        for (root, value) in [("a", &a_big), ("b", &b_big), ("q", &q_big)] {
            for (slot, word) in pack(kernel, root, value) {
                inputs[slot] = word;
            }
        }

        let run = interp::run(kernel, &inputs).expect("generated kernel must execute");
        assert_eq!(run.outputs.len(), WORDS);
        let got = unpack(&run.outputs);
        let expected = a_big.mod_add(&b_big, &q_big);
        assert_eq!(
            got, expected,
            "round {round}: daddmod mismatch for a={a_big:x} b={b_big:x} q={q_big:x}"
        );
    }
}
