//! Cross-check: the compiled bytecode executor must be observationally identical to
//! the tree interpreter — outputs *and* operation counts — on every kernel the
//! rewrite system produces, including the hand-built `daddmod` kernel of the
//! `smoke_daddmod` test.
//!
//! The interpreter is the semantic reference; both executors compute the same pure
//! function of the input words, so the check feeds fully random (width-masked)
//! inputs and requires bit-exact agreement.

use moma_ir::cost::OpCounts;
use moma_ir::{interp, validate, CompiledKernel, Kernel, KernelBuilder, Op, Operand, Ty};
use moma_rewrite::{lower, HighLevelKernel, KernelOp, KernelSpec, LoweringConfig, MulAlgorithm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random inputs masked to each parameter's declared width.
fn random_inputs(kernel: &Kernel, rng: &mut StdRng) -> Vec<u64> {
    kernel
        .params
        .iter()
        .map(|p| {
            let bits = kernel.ty(*p).bits();
            let v: u64 = rng.gen();
            if bits >= 64 {
                v
            } else {
                v & ((1u64 << bits) - 1)
            }
        })
        .collect()
}

/// Runs `rounds` random elements through both executors (per-element interpretation
/// and one compiled `run_batch`) and demands identical outputs and identical
/// aggregated operation counts.
fn crosscheck(kernel: &Kernel, rounds: usize, seed: u64) {
    validate::validate(kernel).expect("kernel must type-check");
    let compiled = CompiledKernel::compile(kernel)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", kernel.name));
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u64>> = (0..rounds)
        .map(|_| random_inputs(kernel, &mut rng))
        .collect();
    let flat: Vec<u64> = rows.iter().flatten().copied().collect();

    let batch = compiled
        .run_batch(&flat)
        .unwrap_or_else(|e| panic!("{}: batch run failed: {e}", kernel.name));
    assert_eq!(batch.elements, rounds);

    let mut interp_counts = OpCounts::new();
    for (i, row) in rows.iter().enumerate() {
        let oracle = interp::run(kernel, row)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", kernel.name));
        assert_eq!(
            batch.element(i),
            &oracle.outputs[..],
            "{}: output mismatch on element {i} (inputs {row:x?})",
            kernel.name
        );
        interp_counts = interp_counts + oracle.counts;
    }
    assert_eq!(
        batch.counts, interp_counts,
        "{}: operation counts diverge from the interpreter",
        kernel.name
    );
}

#[test]
fn compiled_matches_interpreter_on_all_rewrite_kernels() {
    // Every kernel shape the rewrite system generates, at two widths and both
    // multiplication splitting rules.
    let ops = [
        KernelOp::ModAdd,
        KernelOp::ModSub,
        KernelOp::ModMul,
        KernelOp::Axpy,
        KernelOp::Butterfly,
    ];
    let mut seed = 0xc0de;
    for op in ops {
        for bits in [128u32, 256] {
            for alg in [MulAlgorithm::Schoolbook, MulAlgorithm::Karatsuba] {
                let hl = moma_rewrite::builders::build(&KernelSpec::new(op, bits));
                let config = LoweringConfig {
                    mul_algorithm: alg,
                    ..LoweringConfig::default()
                };
                let lowered = lower(&hl, &config);
                assert!(lowered.kernel.is_machine_level(64));
                crosscheck(&lowered.kernel, 25, seed);
                seed += 1;
            }
        }
    }
}

#[test]
fn compiled_matches_interpreter_on_the_daddmod_smoke_kernel() {
    // The exact hand-built kernel of smoke_daddmod.rs: c = (a + b) mod q at 128 bits,
    // lowered by the rewrite system.
    let mut kb = KernelBuilder::new("daddmod_128");
    let a = kb.param("a", Ty::UInt(128));
    let b = kb.param("b", Ty::UInt(128));
    let q = kb.param("q", Ty::UInt(128));
    let c = kb.output("c", Ty::UInt(128));
    kb.push(
        vec![c],
        Op::AddMod {
            a: Operand::Var(a),
            b: Operand::Var(b),
            q: Operand::Var(q),
        },
    );
    let hl = HighLevelKernel {
        kernel: kb.build(),
        spec: KernelSpec::new(KernelOp::ModAdd, 128),
        zero_top_bits: 0,
    };
    let lowered = lower(&hl, &LoweringConfig::default());
    crosscheck(&lowered.kernel, 100, 0x00da_0d0d);
}

#[test]
fn compiled_matches_interpreter_on_small_word_lowerings() {
    // 32-bit machine words double the statement count and exercise narrow masks.
    let hl = moma_rewrite::builders::build(&KernelSpec::new(KernelOp::ModMul, 128));
    let config = LoweringConfig {
        word_bits: 32,
        ..LoweringConfig::default()
    };
    let lowered = lower(&hl, &config);
    assert!(lowered.kernel.is_machine_level(32));
    crosscheck(&lowered.kernel, 50, 0x3232);
}
