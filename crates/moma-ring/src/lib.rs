//! Negacyclic polynomial ring layer: `R_q = Z_q[X]/(X^n + 1)` over RNS moduli
//! ladders.
//!
//! This crate composes the engine's primitives — planned negacyclic NTTs
//! ([`moma_ntt::NttPlan64::negacyclic`]), BEHZ base extension, and the fused
//! rescale-then-extend chain ([`moma_rns::RnsPlan::rescale_then_extend_pooled`])
//! — into the workload they exist for: a CKKS/BGV-shaped **level ladder** where
//! each multiply is transform → pointwise → inverse (the `ψ`-twist folded into
//! the transforms, no separate twist pass) followed by an exact rescale that
//! drops one modulus from the basis.
//!
//! * [`RingContext`] — a moduli ladder `Q = q₀·…·q_L` with one negacyclic NTT
//!   plan per modulus and one RNS plan + fused rescale step per level.
//! * [`RingElt`] — an element of `R_Q` at some level, RNS- and NTT-domain
//!   aware, with its residue plane pooled so steady-state ladder traffic is
//!   allocation-free on a warm [`moma_gpu::BufferPool`].
//! * [`RingPlanSource`] — the provider hook a caching session implements so
//!   ring contexts ride its stampede-controlled plan caches; [`ColdSource`]
//!   builds everything from scratch.
//! * [`ladder`] — deterministic ladder-prime search (`q ≡ 1 mod 2n`, mixed
//!   narrow/wide widths).
//! * [`oracle`] — the readable `BigUint` reference: schoolbook `X^n + 1`
//!   multiply and a per-coefficient `scale_and_round` replay, used by the
//!   property tests and the bench crosscheck to pin the engine bit for bit.

pub mod ladder;
pub mod oracle;
pub mod ring;

pub use ladder::{default_ladder, ladder_primes};
pub use ring::{ColdSource, Domain, RingContext, RingElt, RingPlanSource};
