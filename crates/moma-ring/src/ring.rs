//! [`RingContext`] and [`RingElt`]: the negacyclic ring `R_Q = Z_Q[X]/(X^n+1)`
//! over an RNS moduli ladder, with every hot operation riding the planned
//! engine — per-modulus negacyclic NTTs batched on the launcher, pointwise
//! products through the RNS BLAS plan, and level drops through the fused
//! rescale-then-extend chain. All working planes come from a caller-provided
//! [`BufferPool`], so a warm ladder reports zero allocations per level.

use std::sync::Arc;

use moma_bignum::BigUint;
use moma_blas::BlasOp;
use moma_gpu::launch::LaunchStats;
use moma_gpu::pool::BufferPool;
use moma_ntt::NttPlan64;
use moma_rns::{RescaleExtendPlan, RnsContext, RnsMatrix, RnsPlan};

/// Which representation a [`RingElt`]'s residue rows currently hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Polynomial coefficients (the encode/decode and rescale domain).
    Coefficient,
    /// Negacyclic NTT evaluations (the pointwise-multiply domain).
    Evaluation,
}

/// Provider hook for the plans a [`RingContext`] is assembled from. A caching
/// session implements this over its stampede-controlled caches so every ring
/// context built for the same ladder shares one set of tables; [`ColdSource`]
/// builds everything from scratch.
pub trait RingPlanSource {
    /// A negacyclic transform plan for `Z_q`, size `n`.
    fn negacyclic_plan(&self, q: u64, n: usize) -> Arc<NttPlan64>;
    /// An RNS plan over exactly `moduli` (in order).
    fn rns_plan(&self, moduli: &[u64]) -> Arc<RnsPlan>;
    /// The fused rescale-then-extend step from `src` onto `dst`.
    fn rescale_extend_plan(&self, src: &Arc<RnsPlan>, dst: &Arc<RnsPlan>)
        -> Arc<RescaleExtendPlan>;
}

/// The no-cache [`RingPlanSource`]: every plan built on the spot.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColdSource;

impl RingPlanSource for ColdSource {
    fn negacyclic_plan(&self, q: u64, n: usize) -> Arc<NttPlan64> {
        Arc::new(NttPlan64::negacyclic(q, n))
    }

    fn rns_plan(&self, moduli: &[u64]) -> Arc<RnsPlan> {
        Arc::new(RnsPlan::new(&RnsContext::with_moduli(moduli)))
    }

    fn rescale_extend_plan(
        &self,
        src: &Arc<RnsPlan>,
        dst: &Arc<RnsPlan>,
    ) -> Arc<RescaleExtendPlan> {
        Arc::new(src.rescale_extend_plan(dst))
    }
}

/// One rung of the ladder: the RNS plan over the level's basis and the fused
/// step down onto the next (one-shorter) basis, `None` at the floor.
struct RingLevel {
    rns: Arc<RnsPlan>,
    step: Option<Arc<RescaleExtendPlan>>,
}

/// A negacyclic ring over a moduli ladder `Q = q₀·…·q_L`.
///
/// Level `d` works over the basis `q₀…q_{L−d}`: level 0 is the full ladder,
/// and each [`RingContext::rescale_to_next_level`] drops the basis' last
/// modulus, so a ladder of `L + 1` moduli supports `L` multiplicative levels.
pub struct RingContext {
    n: usize,
    moduli: Vec<u64>,
    /// One negacyclic plan per ladder modulus, aligned with `moduli`.
    ntt: Vec<Arc<NttPlan64>>,
    /// `levels[d]` serves the basis `moduli[..len − d]`.
    levels: Vec<RingLevel>,
}

impl RingContext {
    /// Builds the ring cold (no caches): every plan constructed on the spot.
    pub fn new(n: usize, moduli: &[u64]) -> Self {
        Self::with_source(n, moduli, &ColdSource)
    }

    /// Builds the ring with every plan drawn from `source` — the entry point a
    /// caching session uses so rings over the same ladder share tables.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2, `moduli` is empty, any modulus
    /// fails the negacyclic-plan preconditions (prime, `q ≡ 1 mod 2n`), or
    /// `source` returns plans inconsistent with the request.
    pub fn with_source(n: usize, moduli: &[u64], source: &impl RingPlanSource) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ring degree must be a power of two ≥ 2"
        );
        assert!(!moduli.is_empty(), "the moduli ladder must not be empty");
        let ntt: Vec<Arc<NttPlan64>> = moduli
            .iter()
            .map(|&q| source.negacyclic_plan(q, n))
            .collect();
        for (plan, &q) in ntt.iter().zip(moduli) {
            assert!(plan.is_negacyclic(), "plan source returned a cyclic plan");
            assert_eq!(
                plan.n, n,
                "plan source returned a mismatched transform size"
            );
            assert_eq!(plan.ctx.q, q, "plan source returned a mismatched modulus");
        }
        // One RNS plan per prefix length; `rns_plans[len − 1]` covers
        // `moduli[..len]`.
        let rns_plans: Vec<Arc<RnsPlan>> = (1..=moduli.len())
            .map(|len| {
                let p = source.rns_plan(&moduli[..len]);
                assert!(
                    p.moduli().eq(moduli[..len].iter().copied()),
                    "plan source returned a mismatched RNS basis"
                );
                p
            })
            .collect();
        let levels = (0..moduli.len())
            .map(|d| {
                let len = moduli.len() - d;
                let rns = Arc::clone(&rns_plans[len - 1]);
                let step =
                    (len >= 2).then(|| source.rescale_extend_plan(&rns, &rns_plans[len - 2]));
                RingLevel { rns, step }
            })
            .collect();
        RingContext {
            n,
            moduli: moduli.to_vec(),
            ntt,
            levels,
        }
    }

    /// The ring degree `n` (coefficients per element).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full moduli ladder, widest basis first.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of levels (`= moduli.len()`; the floor level has one modulus).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of rescale steps the ladder supports (`level_count() − 1`).
    pub fn steps(&self) -> usize {
        self.levels.len() - 1
    }

    /// The RNS basis serving `level`.
    pub fn basis(&self, level: usize) -> &[u64] {
        &self.moduli[..self.moduli.len() - level]
    }

    /// The RNS plan serving `level`.
    pub fn rns_plan(&self, level: usize) -> &Arc<RnsPlan> {
        &self.levels[level].rns
    }

    /// The negacyclic NTT plan for ladder modulus index `r`.
    pub fn ntt_plan(&self, r: usize) -> &Arc<NttPlan64> {
        &self.ntt[r]
    }

    /// The dynamic range `Q` of `level`'s basis.
    pub fn product(&self, level: usize) -> &BigUint {
        self.levels[level].rns.product()
    }

    /// Encodes `n` coefficients (each `< product(level)`) into a
    /// coefficient-domain element whose residue plane comes from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n` or a value exceeds the level's range.
    pub fn encode(&self, level: usize, values: &[BigUint], pool: &BufferPool) -> RingElt {
        assert_eq!(values.len(), self.n, "expected exactly n coefficients");
        RingElt {
            level,
            domain: Domain::Coefficient,
            matrix: RnsMatrix::from_biguints_pooled(&self.levels[level].rns, values, pool),
        }
    }

    /// Decodes a coefficient-domain element back to `BigUint` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `elt` is in the evaluation domain.
    pub fn decode(&self, elt: &RingElt) -> Vec<BigUint> {
        assert_eq!(
            elt.domain,
            Domain::Coefficient,
            "decode needs the coefficient domain"
        );
        self.levels[elt.level].rns.to_biguints(&elt.matrix)
    }

    /// A pooled copy of `elt`.
    pub fn clone_elt(&self, elt: &RingElt, pool: &BufferPool) -> RingElt {
        elt.clone_with_pool(pool)
    }

    /// Raises `elt` into the evaluation domain in place: one batched
    /// negacyclic forward transform per residue row (the `ψ`-twist is folded
    /// into the transform's first stage, so this is the whole raise).
    ///
    /// # Panics
    ///
    /// Panics if `elt` is already in the evaluation domain.
    pub fn forward_ntt(&self, elt: &mut RingElt, pool: &BufferPool) -> LaunchStats {
        assert_eq!(elt.domain, Domain::Coefficient, "element already raised");
        let rows = elt.matrix.row_count();
        let mut stats = LaunchStats::default();
        for r in 0..rows {
            stats.accumulate(
                self.ntt[r].forward_batch_on_launcher_pooled(elt.matrix.row_mut(r), pool),
            );
        }
        elt.domain = Domain::Evaluation;
        stats
    }

    /// Lowers `elt` back to the coefficient domain in place (the `ψ^{-i}`
    /// untwist rides the inverse transform's scaling pass).
    ///
    /// # Panics
    ///
    /// Panics if `elt` is already in the coefficient domain.
    pub fn inverse_ntt(&self, elt: &mut RingElt, pool: &BufferPool) -> LaunchStats {
        assert_eq!(elt.domain, Domain::Evaluation, "element already lowered");
        let rows = elt.matrix.row_count();
        let mut stats = LaunchStats::default();
        for r in 0..rows {
            stats.accumulate(
                self.ntt[r].inverse_batch_on_launcher_pooled(elt.matrix.row_mut(r), pool),
            );
        }
        elt.domain = Domain::Coefficient;
        stats
    }

    /// Pointwise ring multiply (both operands in the evaluation domain, same
    /// level): one fused RNS `VecMul` across all residue rows.
    ///
    /// # Panics
    ///
    /// Panics on a level or domain mismatch.
    pub fn mul(&self, a: &RingElt, b: &RingElt, pool: &BufferPool) -> (RingElt, LaunchStats) {
        assert_eq!(a.level, b.level, "ring multiply needs matching levels");
        assert_eq!(
            a.domain,
            Domain::Evaluation,
            "ring multiply is pointwise in the evaluation domain"
        );
        assert_eq!(
            b.domain,
            Domain::Evaluation,
            "ring multiply is pointwise in the evaluation domain"
        );
        let (matrix, stats) =
            self.levels[a.level]
                .rns
                .apply_pooled(BlasOp::VecMul, None, &a.matrix, &b.matrix, pool);
        (
            RingElt {
                level: a.level,
                domain: Domain::Evaluation,
                matrix,
            },
            stats,
        )
    }

    /// Coefficient-wise addition (any domain, but both operands in the same
    /// one — addition commutes with the transform).
    ///
    /// # Panics
    ///
    /// Panics on a level or domain mismatch.
    pub fn add(&self, a: &RingElt, b: &RingElt, pool: &BufferPool) -> (RingElt, LaunchStats) {
        assert_eq!(a.level, b.level, "ring add needs matching levels");
        assert_eq!(a.domain, b.domain, "ring add needs matching domains");
        let (matrix, stats) =
            self.levels[a.level]
                .rns
                .apply_pooled(BlasOp::VecAdd, None, &a.matrix, &b.matrix, pool);
        (
            RingElt {
                level: a.level,
                domain: a.domain,
                matrix,
            },
            stats,
        )
    }

    /// Drops the level's last modulus through the fused rescale-then-extend
    /// chain (two launch rounds; the extension onto the shortened basis is
    /// exact because every target modulus divides the shortened product).
    ///
    /// # Panics
    ///
    /// Panics if `elt` is in the evaluation domain or already at the floor.
    pub fn rescale_to_next_level(
        &self,
        elt: &RingElt,
        pool: &BufferPool,
    ) -> (RingElt, LaunchStats) {
        assert_eq!(
            elt.domain,
            Domain::Coefficient,
            "rescale operates on coefficients"
        );
        let lvl = &self.levels[elt.level];
        let step = lvl.step.as_ref().expect("already at the ladder floor");
        let (matrix, stats) = lvl.rns.rescale_then_extend_pooled(step, &elt.matrix, pool);
        (
            RingElt {
                level: elt.level + 1,
                domain: Domain::Coefficient,
                matrix,
            },
            stats,
        )
    }

    /// One full ladder level on coefficient-domain operands: raise → pointwise
    /// multiply → inverse → rescale onto the next level's basis. Passing the
    /// same element for `a` and `b` squares it with a single raise. All
    /// intermediates are recycled into `pool`, so a warm pool makes the whole
    /// step allocation-free.
    ///
    /// # Panics
    ///
    /// Panics on a level/domain mismatch or if `a` is at the ladder floor.
    pub fn ladder_step(
        &self,
        a: &RingElt,
        b: &RingElt,
        pool: &BufferPool,
    ) -> (RingElt, LaunchStats) {
        assert_eq!(
            a.domain,
            Domain::Coefficient,
            "ladder steps start from coefficients"
        );
        let mut stats = LaunchStats::default();
        let mut fa = self.clone_elt(a, pool);
        stats.accumulate(self.forward_ntt(&mut fa, pool));
        let mut prod = if std::ptr::eq(a, b) {
            let (p, s) = self.mul(&fa, &fa, pool);
            stats.accumulate(s);
            p
        } else {
            assert_eq!(
                b.domain,
                Domain::Coefficient,
                "ladder steps start from coefficients"
            );
            let mut fb = self.clone_elt(b, pool);
            stats.accumulate(self.forward_ntt(&mut fb, pool));
            let (p, s) = self.mul(&fa, &fb, pool);
            stats.accumulate(s);
            fb.recycle(pool);
            p
        };
        fa.recycle(pool);
        stats.accumulate(self.inverse_ntt(&mut prod, pool));
        let (next, s) = self.rescale_to_next_level(&prod, pool);
        stats.accumulate(s);
        prod.recycle(pool);
        (next, stats)
    }
}

/// One element of the ring at some ladder level, tracking which domain its
/// residue rows currently hold. The residue plane is pooled: hand it back with
/// [`RingElt::recycle`] when the element is done (owners with a `Drop`-based
/// lifecycle, like `moma`'s session handles, wrap this).
pub struct RingElt {
    level: usize,
    domain: Domain,
    matrix: RnsMatrix,
}

impl RingElt {
    /// The element's ladder level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The element's current domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The underlying residue matrix (rows = basis moduli, cols = n).
    pub fn matrix(&self) -> &RnsMatrix {
        &self.matrix
    }

    /// A copy of this element whose residue plane comes from `pool` — the
    /// pooled twin of `Clone`, mirroring [`RnsMatrix::clone_with_pool`].
    pub fn clone_with_pool(&self, pool: &BufferPool) -> RingElt {
        RingElt {
            level: self.level,
            domain: self.domain,
            matrix: self.matrix.clone_with_pool(pool),
        }
    }

    /// Hands the residue plane back to `pool`.
    pub fn recycle(mut self, pool: &BufferPool) {
        pool.recycle(self.matrix.take_storage());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::ladder_primes;
    use crate::oracle;
    use moma_bignum::random::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_coeffs(seed: u64, ring: &RingContext, level: usize) -> Vec<BigUint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ring.n())
            .map(|_| random_below(&mut rng, ring.product(level)))
            .collect()
    }

    #[test]
    fn ring_multiply_matches_schoolbook_oracle() {
        let n = 16;
        let moduli = ladder_primes(n, &[50, 30, 45]);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let a = random_coeffs(1, &ring, 0);
        let b = random_coeffs(2, &ring, 0);

        let mut ea = ring.encode(0, &a, &pool);
        let mut eb = ring.encode(0, &b, &pool);
        ring.forward_ntt(&mut ea, &pool);
        ring.forward_ntt(&mut eb, &pool);
        let (mut prod, _) = ring.mul(&ea, &eb, &pool);
        ring.inverse_ntt(&mut prod, &pool);
        let got = ring.decode(&prod);

        assert_eq!(got, oracle::negacyclic_mul(ring.product(0), &a, &b));
        for e in [ea, eb, prod] {
            e.recycle(&pool);
        }
    }

    #[test]
    fn add_matches_oracle_in_both_domains() {
        let n = 8;
        let moduli = ladder_primes(n, &[40, 30]);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let a = random_coeffs(3, &ring, 0);
        let b = random_coeffs(4, &ring, 0);
        let want = oracle::add(ring.product(0), &a, &b);

        // Coefficient domain.
        let ea = ring.encode(0, &a, &pool);
        let eb = ring.encode(0, &b, &pool);
        let (sum, _) = ring.add(&ea, &eb, &pool);
        assert_eq!(ring.decode(&sum), want);
        sum.recycle(&pool);

        // Evaluation domain: add commutes with the transform.
        let mut fa = ring.clone_elt(&ea, &pool);
        let mut fb = ring.clone_elt(&eb, &pool);
        ring.forward_ntt(&mut fa, &pool);
        ring.forward_ntt(&mut fb, &pool);
        let (mut fsum, _) = ring.add(&fa, &fb, &pool);
        ring.inverse_ntt(&mut fsum, &pool);
        assert_eq!(ring.decode(&fsum), want);
        for e in [ea, eb, fa, fb, fsum] {
            e.recycle(&pool);
        }
    }

    #[test]
    fn full_ladder_matches_oracle_replay() {
        let n = 8;
        let moduli = ladder_primes(n, &[50, 30, 45, 30]);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let a = random_coeffs(5, &ring, 0);
        let b = random_coeffs(6, &ring, 0);

        let ea = ring.encode(0, &a, &pool);
        let eb = ring.encode(0, &b, &pool);
        let (mut cur, _) = ring.ladder_step(&ea, &eb, &pool);
        ea.recycle(&pool);
        eb.recycle(&pool);
        for _ in 1..ring.steps() {
            let (next, _) = ring.ladder_step(&cur, &cur, &pool);
            cur.recycle(&pool);
            cur = next;
        }
        assert_eq!(cur.level(), ring.steps());
        assert_eq!(ring.basis(cur.level()), &moduli[..1]);
        let got = ring.decode(&cur);
        cur.recycle(&pool);

        assert_eq!(got, oracle::ladder_replay(&moduli, &a, &b, ring.steps()));
    }

    #[test]
    fn warm_pool_ladder_is_allocation_free() {
        let n = 32;
        let moduli = ladder_primes(n, &[50, 30, 45, 30, 40]);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let a = random_coeffs(7, &ring, 0);

        let run = |pool: &BufferPool| -> usize {
            let ea = ring.encode(0, &a, pool);
            let mut allocs = 0;
            let (mut cur, s) = ring.ladder_step(&ea, &ea, pool);
            allocs += s.allocs;
            ea.recycle(pool);
            for _ in 1..ring.steps() {
                let (next, s) = ring.ladder_step(&cur, &cur, pool);
                allocs += s.allocs;
                cur.recycle(pool);
                cur = next;
            }
            cur.recycle(pool);
            allocs
        };

        let cold = run(&pool);
        let warm = run(&pool);
        assert!(cold > 0, "cold run must miss the empty pool");
        assert_eq!(warm, 0, "warm ladder must be allocation-free");
    }

    #[test]
    fn rescale_is_exact_division_when_divisible() {
        // A coefficient vector divisible by the last modulus rescales to the
        // exact quotient (the rounding term vanishes).
        let n = 4;
        let moduli = ladder_primes(n, &[40, 30, 30]);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let last = BigUint::from(moduli[2]);
        let coeffs: Vec<BigUint> = (1..=n as u64)
            .map(|i| BigUint::from(i).mod_mul(&last, ring.product(0)))
            .collect();
        let elt = ring.encode(0, &coeffs, &pool);
        let (out, _) = ring.rescale_to_next_level(&elt, &pool);
        let got = ring.decode(&out);
        let want: Vec<BigUint> = coeffs.iter().map(|c| c / &last).collect();
        assert_eq!(got, want);
        elt.recycle(&pool);
        out.recycle(&pool);
    }
}
