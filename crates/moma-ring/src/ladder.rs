//! Deterministic ladder-prime search.
//!
//! A negacyclic transform of size `n` over `Z_q` needs a primitive `2n`-th
//! root of unity, i.e. `q ≡ 1 (mod 2n)`. Ladder moduli are therefore drawn
//! from the arithmetic progression `q = k·2n + 1`, scanning `k` downward from
//! the top of the requested bit width so the search is reproducible and the
//! primes are as large as the width allows (maximising rescale headroom).

use moma_bignum::prime::is_prime;
use moma_bignum::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Largest prime `q = k·2n + 1` of exactly `bits` bits not already in `taken`.
fn next_ladder_prime(n: usize, bits: u32, taken: &[u64]) -> u64 {
    let two_n = 2 * n as u64;
    assert!(
        (1u64 << bits) / two_n >= 8,
        "bit width {bits} leaves no room for primes ≡ 1 mod {two_n}"
    );
    // Largest k with q = k·2n + 1 < 2^bits.
    let mut k = ((1u64 << bits) - 2) / two_n;
    loop {
        let q = k * two_n + 1;
        assert!(
            q >= 1u64 << (bits - 1),
            "prime search exhausted the {bits}-bit window for n = {n}"
        );
        if !taken.contains(&q) && is_prime(&mut StdRng::seed_from_u64(q), &BigUint::from(q)) {
            return q;
        }
        k -= 1;
    }
}

/// One ladder prime per requested bit width, all distinct, all `≡ 1 (mod
/// 2n)`, each the largest such prime of its width not already chosen. The
/// search is fully deterministic: the same `(n, bits)` always yields the same
/// ladder.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2, a width is outside `[16, 60]`
/// (60 bits is the engine's single-word Barrett cap), or a width window is
/// too narrow to hold a prime `≡ 1 (mod 2n)`.
pub fn ladder_primes(n: usize, bits: &[u32]) -> Vec<u64> {
    assert!(
        n.is_power_of_two() && n >= 2,
        "ring degree must be a power of two ≥ 2"
    );
    let mut out: Vec<u64> = Vec::with_capacity(bits.len());
    for &b in bits {
        assert!(
            (16..=60).contains(&b),
            "ladder prime width {b} outside [16, 60]"
        );
        let q = next_ladder_prime(n, b, &out);
        out.push(q);
    }
    out
}

/// The default mixed narrow/wide ladder for a depth-`levels` computation:
/// `levels + 1` moduli alternating 50-bit (wide Barrett path) and 30-bit
/// (single-widening-multiplication narrow path), widest first.
pub fn default_ladder(n: usize, levels: usize) -> Vec<u64> {
    let bits: Vec<u32> = (0..=levels)
        .map(|i| if i % 2 == 0 { 50 } else { 30 })
        .collect();
    ladder_primes(n, &bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_primes_are_distinct_congruent_and_deterministic() {
        let n = 1 << 10;
        let moduli = ladder_primes(n, &[50, 30, 50, 30, 30]);
        assert_eq!(moduli.len(), 5);
        for (i, &q) in moduli.iter().enumerate() {
            assert_eq!((q - 1) % (2 * n as u64), 0, "q ≡ 1 mod 2n");
            assert!(is_prime(&mut StdRng::seed_from_u64(q), &BigUint::from(q)));
            assert!(!moduli[..i].contains(&q), "distinct");
        }
        // Repeated same-width requests walk further down the progression.
        assert!(moduli[4] < moduli[1] || moduli[4] < moduli[3]);
        assert_eq!(moduli, ladder_primes(n, &[50, 30, 50, 30, 30]));
    }

    #[test]
    fn default_ladder_has_levels_plus_one_moduli() {
        let moduli = default_ladder(1 << 8, 4);
        assert_eq!(moduli.len(), 5);
        assert!(moduli[0] > (1 << 49) && moduli[1] < (1 << 30));
    }
}
