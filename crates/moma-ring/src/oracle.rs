//! The readable `BigUint` reference for the ring layer.
//!
//! Everything here is deliberately slow and obvious: schoolbook `X^n + 1`
//! reduction and a per-coefficient [`RnsContext::scale_and_round`] replay.
//! The property tests and the `fhe_ladder` bench crosscheck pin the planned
//! engine path (folded-twist NTT → pointwise → inverse → fused
//! rescale-then-extend) against these functions **bit for bit**.

use moma_bignum::BigUint;
use moma_rns::RnsContext;

/// Schoolbook negacyclic convolution: `c = a·b mod (X^n + 1)` over
/// `Z_modulus`, with wrapped terms (`i + j ≥ n`) subtracted.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length.
pub fn negacyclic_mul(modulus: &BigUint, a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand length mismatch");
    let mut pos = vec![BigUint::zero(); n];
    let mut neg = vec![BigUint::zero(); n];
    for (i, ai) in a.iter().enumerate() {
        for (j, bj) in b.iter().enumerate() {
            let p = ai.mod_mul(bj, modulus);
            let k = i + j;
            if k < n {
                pos[k] = pos[k].mod_add(&p, modulus);
            } else {
                neg[k - n] = neg[k - n].mod_add(&p, modulus);
            }
        }
    }
    pos.iter()
        .zip(&neg)
        .map(|(p, m)| p.mod_sub(m, modulus))
        .collect()
}

/// Coefficient-wise addition over `Z_modulus`.
pub fn add(modulus: &BigUint, a: &[BigUint], b: &[BigUint]) -> Vec<BigUint> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| x.mod_add(y, modulus))
        .collect()
}

/// One oracle rescale: each coefficient through the unfused
/// [`RnsContext::scale_and_round`] reference (divide by the basis' last
/// modulus with the engine's exact rounding), reconstructed over the
/// shortened basis.
///
/// # Panics
///
/// Panics if `ctx` has fewer than two moduli.
pub fn rescale(ctx: &RnsContext, values: &[BigUint]) -> Vec<BigUint> {
    let next = ctx.without_last();
    values
        .iter()
        .map(|v| next.from_residues(&ctx.scale_and_round(&ctx.to_residues(v))))
        .collect()
}

/// Replays a depth-`steps` squaring ladder entirely in `BigUint` arithmetic:
/// step 1 computes `rescale(a·b)`, every later step squares the running value
/// and rescales, dropping one modulus per step. Returns the end-state
/// coefficients over the shortened basis — the bit-for-bit reference for the
/// engine's `ladder_step` chain.
///
/// # Panics
///
/// Panics if `steps ≥ moduli.len()` (rescale needs two moduli).
pub fn ladder_replay(moduli: &[u64], a: &[BigUint], b: &[BigUint], steps: usize) -> Vec<BigUint> {
    assert!(steps < moduli.len(), "ladder deeper than the moduli chain");
    let mut ctx = RnsContext::with_moduli(moduli);
    let mut x = a.to_vec();
    let mut y = b.to_vec();
    for _ in 0..steps {
        let prod = negacyclic_mul(ctx.product(), &x, &y);
        let next = rescale(&ctx, &prod);
        ctx = ctx.without_last();
        x = next.clone();
        y = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn negacyclic_mul_wraps_with_negation() {
        // (1 + X)·(1 + X) mod (X² + 1) = 1 + 2X + X² = 2X over Z_17.
        let q = big(17);
        let c = negacyclic_mul(&q, &[big(1), big(1)], &[big(1), big(1)]);
        assert_eq!(c, vec![big(0), big(2)]);
        // X·X = X² = −1 ≡ 16.
        let c = negacyclic_mul(&q, &[big(0), big(1)], &[big(0), big(1)]);
        assert_eq!(c, vec![big(16), big(0)]);
    }

    #[test]
    fn ladder_replay_zero_steps_is_identity() {
        let moduli = crate::ladder::ladder_primes(4, &[30, 30]);
        let a = vec![big(5), big(6), big(7), big(8)];
        let b = vec![big(1), big(0), big(0), big(0)];
        assert_eq!(ladder_replay(&moduli, &a, &b, 0), a);
    }
}
