//! Property tests for the negacyclic ring layer: on random mixed narrow/wide
//! moduli ladders and random coefficients, the planned engine path
//! (folded-twist NTT → pointwise multiply → inverse NTT, fused
//! rescale-then-extend per ladder step) must match the schoolbook `BigUint`
//! oracle — [`moma_ring::oracle::negacyclic_mul`] for a single multiply and
//! [`moma_ring::oracle::ladder_replay`] for a full ladder — **bit for bit**.

use moma_bignum::BigUint;
use moma_gpu::pool::BufferPool;
use moma_ring::{ladder_primes, oracle, RingContext, RingElt};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic ladder of `widths.len()` primes over mixed random widths —
/// narrow slots exercise the single-word fast paths, wide slots the general
/// Barrett path — each `≡ 1 (mod 2n)` as the negacyclic transform requires.
fn mixed_ladder(n: usize, widths: &[u32]) -> Vec<u64> {
    ladder_primes(n, widths)
}

fn random_coeffs(rng: &mut StdRng, ring: &RingContext, level: usize) -> Vec<BigUint> {
    (0..ring.n())
        .map(|_| moma_bignum::random::random_below(rng, ring.product(level)))
        .collect()
}

/// Runs the engine ladder in the shape [`oracle::ladder_replay`] mirrors:
/// first step `a · b`, every later step squares the running value.
fn run_ladder(ring: &RingContext, a: &RingElt, b: &RingElt, pool: &BufferPool) -> RingElt {
    let (mut cur, _) = ring.ladder_step(a, b, pool);
    for _ in 1..ring.steps() {
        let (next, _) = ring.ladder_step(&cur, &cur, pool);
        cur.recycle(pool);
        cur = next;
    }
    cur
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One ring multiply (raise → pointwise → lower) equals the schoolbook
    /// negacyclic convolution bit for bit, at a random level of a random
    /// mixed-width ladder.
    #[test]
    fn ring_multiply_matches_schoolbook_oracle(
        seed in any::<u64>(),
        log_n in 2u32..6,
        widths in prop::collection::vec(16u32..=60, 2..6),
        level_pick in any::<usize>(),
    ) {
        let n = 1usize << log_n;
        let ring = RingContext::new(n, &mixed_ladder(n, &widths));
        let level = level_pick % ring.level_count();
        let pool = BufferPool::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_coeffs(&mut rng, &ring, level);
        let b = random_coeffs(&mut rng, &ring, level);

        let mut ea = ring.encode(level, &a, &pool);
        let mut eb = ring.encode(level, &b, &pool);
        ring.forward_ntt(&mut ea, &pool);
        ring.forward_ntt(&mut eb, &pool);
        let (mut prod, _) = ring.mul(&ea, &eb, &pool);
        ring.inverse_ntt(&mut prod, &pool);

        let want = oracle::negacyclic_mul(ring.product(level), &a, &b);
        prop_assert_eq!(ring.decode(&prod), want);
        for e in [ea, eb, prod] {
            e.recycle(&pool);
        }
    }

    /// A full ladder run — first step `a · b`, then squarings down to the
    /// floor level — lands on exactly the coefficients the `BigUint` oracle
    /// replay produces, on random mixed narrow/wide ladders.
    #[test]
    fn ladder_end_state_matches_oracle_replay(
        seed in any::<u64>(),
        log_n in 2u32..5,
        widths in prop::collection::vec(16u32..=60, 3..6),
    ) {
        let n = 1usize << log_n;
        let moduli = mixed_ladder(n, &widths);
        let ring = RingContext::new(n, &moduli);
        let pool = BufferPool::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1adde7);
        let a = random_coeffs(&mut rng, &ring, 0);
        let b = random_coeffs(&mut rng, &ring, 0);

        let ea = ring.encode(0, &a, &pool);
        let eb = ring.encode(0, &b, &pool);
        let floor = run_ladder(&ring, &ea, &eb, &pool);
        prop_assert_eq!(floor.level(), ring.steps());

        let want = oracle::ladder_replay(&moduli, &a, &b, ring.steps());
        prop_assert_eq!(ring.decode(&floor), want);
        for e in [ea, eb, floor] {
            e.recycle(&pool);
        }
    }
}
