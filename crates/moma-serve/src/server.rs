//! The server: submission channel, coalescing dispatcher, worker pool.
//!
//! Life of a request: a [`Client`] validates it cheaply and sends it down one
//! shared `mpsc` channel. The dispatcher thread collects in-flight requests —
//! up to [`ServeConfig::max_batch`], waiting at most
//! [`ServeConfig::batch_window`] once it holds fewer than
//! [`ServeConfig::min_batch`] — then groups them by compatible work (same
//! `(q, n)` NTT direction, same tenant chain) and hands each group to the
//! worker pool. A worker flattens the group into one batch, executes it through
//! the shared session's stage-batched launchers, splits the result, and
//! resolves every [`Ticket`] with its slice plus the group's batch statistics.
//! A panicking batch (say, a modulus the NTT planner rejects) fails only its
//! own group — the worker catches the unwind and resolves those tickets with
//! [`ServeError::Internal`]; the server keeps serving.

use moma::bignum::BigUint;
use moma::Session;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handle to a registered RNS basis pair (see [`Server::register_tenant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

/// Server sizing and batching knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches (≥ 1).
    pub workers: usize,
    /// Hard cap on requests coalesced into one collection round (≥ 1). `1`
    /// disables coalescing entirely — the one-request-at-a-time baseline.
    pub max_batch: usize,
    /// Once this many requests are in hand, stop waiting for more (≥ 1). The
    /// dispatcher only waits out the batching window while it holds fewer.
    pub min_batch: usize,
    /// How long the dispatcher is willing to hold the first request of a round
    /// while waiting for companions.
    pub batch_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 64,
            min_batch: 1,
            batch_window: Duration::from_millis(1),
        }
    }
}

/// One unit of client work.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Forward NTT of one `n`-point transform over the prime `q`.
    NttForward {
        /// NTT-friendly prime modulus.
        q: u64,
        /// Transform size (power of two).
        n: usize,
        /// Exactly `n` coefficients, each below `q`.
        data: Vec<u64>,
    },
    /// Inverse NTT (with `1/n` scaling) of one `n`-point transform over `q`.
    NttInverse {
        /// NTT-friendly prime modulus.
        q: u64,
        /// Transform size (power of two).
        n: usize,
        /// Exactly `n` coefficients, each below `q`.
        data: Vec<u64>,
    },
    /// The fused RNS chain `(a · b) → rescale → extend` over a tenant's basis
    /// pair: element-wise multiply in the source basis, then the fused
    /// rescale-and-extend into the destination basis.
    RnsMulRescaleExtend {
        /// The basis pair, from [`Server::register_tenant`].
        tenant: TenantId,
        /// Left operand, every value below the tenant's source-basis product.
        a: Vec<BigUint>,
        /// Right operand, same length as `a`.
        b: Vec<BigUint>,
    },
}

/// A finished request's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Transformed coefficients (NTT work).
    Ntt(Vec<u64>),
    /// Chain results in positional form (RNS work).
    Rns(Vec<BigUint>),
}

/// A finished request: the payload plus the batch it was executed in.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The result payload.
    pub response: Response,
    /// How many requests shared this request's executed batch (≥ 1).
    pub batch_size: usize,
    /// Simulated kernel launches the whole batch cost; a request's fair share
    /// is `batch_launches / batch_size`.
    pub batch_launches: u64,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant id was never registered on this server.
    UnknownTenant(usize),
    /// The request failed submit-time validation.
    BadRequest(String),
    /// The server shut down before the request resolved.
    Shutdown,
    /// The batch execution panicked (e.g. a modulus the NTT planner rejects).
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant id {id}"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Shutdown => write!(f, "server shut down"),
            ServeError::Internal(why) => write!(f, "batch execution failed: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic service counters (a snapshot; see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted by [`Client::submit`].
    pub submitted: u64,
    /// Requests resolved successfully.
    pub completed: u64,
    /// Requests resolved with [`ServeError::Internal`].
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that shared their batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total simulated kernel launches across all batches.
    pub launches: u64,
    /// Size of the largest batch executed so far.
    pub largest_batch: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    coalesced_requests: AtomicU64,
    launches: AtomicU64,
    largest_batch: AtomicU64,
}

/// One registered basis pair: owned session handles, reused by every chain
/// request the tenant ever submits.
struct Tenant {
    src: moma::RnsSpace,
    dst: moma::RnsSpace,
}

struct Shared {
    session: Session,
    config: ServeConfig,
    shutdown: AtomicBool,
    tenants: RwLock<Vec<Tenant>>,
    counters: Counters,
}

type Reply = mpsc::SyncSender<Result<Completion, ServeError>>;

struct Envelope {
    item: WorkItem,
    reply: Reply,
}

/// What the dispatcher coalesces on: requests with equal keys flatten into one
/// executed batch.
#[derive(PartialEq, Eq, Hash)]
enum BatchKey {
    NttForward { q: u64, n: usize },
    NttInverse { q: u64, n: usize },
    Rns { tenant: usize },
}

impl BatchKey {
    fn of(item: &WorkItem) -> Self {
        match item {
            WorkItem::NttForward { q, n, .. } => BatchKey::NttForward { q: *q, n: *n },
            WorkItem::NttInverse { q, n, .. } => BatchKey::NttInverse { q: *q, n: *n },
            WorkItem::RnsMulRescaleExtend { tenant, .. } => BatchKey::Rns { tenant: tenant.0 },
        }
    }
}

/// A batching server over one shared session (see the [crate docs](crate)).
///
/// Dropping the server shuts it down: the dispatcher and workers are joined,
/// and any request still unresolved — queued, or submitted through a
/// still-alive [`Client`] — resolves to [`ServeError::Shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    submit_tx: Option<mpsc::Sender<Envelope>>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `session` (sharing its caches with every other
    /// clone of that session) with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers`, `config.max_batch`, or `config.min_batch`
    /// is zero.
    pub fn new(session: Session, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.min_batch >= 1, "min_batch must be at least 1");
        let shared = Arc::new(Shared {
            session,
            config,
            shutdown: AtomicBool::new(false),
            tenants: RwLock::new(Vec::new()),
            counters: Counters::default(),
        });
        let (submit_tx, submit_rx) = mpsc::channel::<Envelope>();
        let (work_tx, work_rx) = mpsc::channel::<Vec<Envelope>>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let work_rx = Arc::clone(&work_rx);
                thread::spawn(move || worker_loop(&shared, &work_rx))
            })
            .collect();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || dispatch_loop(&shared, &submit_rx, &work_tx))
        };
        Server {
            shared,
            submit_tx: Some(submit_tx),
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// The shared session behind this server (same caches as every clone).
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Registers an RNS basis pair and returns its id. The source and
    /// destination spaces — and every plan and kernel their chain needs — are
    /// session-cached handles, built at most once and reused by every
    /// [`WorkItem::RnsMulRescaleExtend`] for this tenant.
    ///
    /// # Panics
    ///
    /// Panics under the [`Session::rns`] conditions (composite, duplicate, or
    /// oversized moduli), or if `src_moduli` has fewer than two moduli (the
    /// chain rescales, which drops one).
    pub fn register_tenant(&self, src_moduli: &[u64], dst_moduli: &[u64]) -> TenantId {
        assert!(
            src_moduli.len() >= 2,
            "the chain rescales: the source basis needs at least two moduli"
        );
        let tenant = Tenant {
            src: self.shared.session.rns(src_moduli),
            dst: self.shared.session.rns(dst_moduli),
        };
        let mut tenants = self
            .shared
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        tenants.push(tenant);
        TenantId(tenants.len() - 1)
    }

    /// A new submission handle. Clients are cheap to clone, `Send`, and may
    /// outlive the server (submissions after shutdown resolve to
    /// [`ServeError::Shutdown`]).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            tx: self
                .submit_tx
                .clone()
                .expect("submit channel lives as long as the server"),
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            coalesced_requests: c.coalesced_requests.load(Ordering::Relaxed),
            launches: c.launches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.submit_tx.take());
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A cloneable submission handle to a [`Server`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    tx: mpsc::Sender<Envelope>,
}

impl Client {
    /// Validates `item` and enqueues it, returning a [`Ticket`] that resolves
    /// when a worker has executed the request's batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] / [`ServeError::UnknownTenant`] on
    /// validation failure, [`ServeError::Shutdown`] if the server is gone.
    pub fn submit(&self, item: WorkItem) -> Result<Ticket, ServeError> {
        self.validate(&item)?;
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .send(Envelope { item, reply })
            .map_err(|_| ServeError::Shutdown)?;
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { rx })
    }

    /// Submits `item` and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// The [`Client::submit`] errors, plus [`ServeError::Internal`] if the
    /// batch execution panicked.
    pub fn call(&self, item: WorkItem) -> Result<Completion, ServeError> {
        self.submit(item)?.wait()
    }

    fn validate(&self, item: &WorkItem) -> Result<(), ServeError> {
        match item {
            WorkItem::NttForward { q, n, data } | WorkItem::NttInverse { q, n, data } => {
                if *n < 2 || !n.is_power_of_two() {
                    return Err(ServeError::BadRequest(format!(
                        "transform size {n} is not a power of two ≥ 2"
                    )));
                }
                if data.len() != *n {
                    return Err(ServeError::BadRequest(format!(
                        "{} coefficients for an {n}-point transform",
                        data.len()
                    )));
                }
                if data.iter().any(|&x| x >= *q) {
                    return Err(ServeError::BadRequest(format!(
                        "coefficient not reduced below q = {q}"
                    )));
                }
                Ok(())
            }
            WorkItem::RnsMulRescaleExtend { tenant, a, b } => {
                let tenants = self
                    .shared
                    .tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let t = tenants
                    .get(tenant.0)
                    .ok_or(ServeError::UnknownTenant(tenant.0))?;
                if a.is_empty() || a.len() != b.len() {
                    return Err(ServeError::BadRequest(format!(
                        "operand lengths {} and {} (need equal, non-empty)",
                        a.len(),
                        b.len()
                    )));
                }
                let product = t.src.product();
                if a.iter().chain(b.iter()).any(|v| v >= product) {
                    return Err(ServeError::BadRequest(
                        "operand not below the source-basis product".to_string(),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// The pending side of one submitted request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Completion, ServeError>>,
}

impl Ticket {
    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// Whatever the batch resolved this request to; [`ServeError::Shutdown`]
    /// if the server went away first.
    pub fn wait(self) -> Result<Completion, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// How long the dispatcher sleeps per idle poll while watching for shutdown.
const IDLE_POLL: Duration = Duration::from_millis(10);

fn dispatch_loop(
    shared: &Shared,
    submit_rx: &mpsc::Receiver<Envelope>,
    work_tx: &mpsc::Sender<Vec<Envelope>>,
) {
    let config = &shared.config;
    loop {
        // Block (in shutdown-aware slices) for the round's first request.
        let first = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match submit_rx.recv_timeout(IDLE_POLL) {
                Ok(envelope) => break envelope,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        // Coalesce: drain what is already queued; while below min_batch, wait
        // out the batching window for companions.
        let mut pending = vec![first];
        let deadline = Instant::now() + config.batch_window;
        while pending.len() < config.max_batch {
            match submit_rx.try_recv() {
                Ok(envelope) => pending.push(envelope),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    if pending.len() >= config.min_batch {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match submit_rx.recv_timeout(deadline - now) {
                        Ok(envelope) => pending.push(envelope),
                        Err(_) => break,
                    }
                }
            }
        }
        // Group by compatible work; each group is one executed batch.
        let mut groups: HashMap<BatchKey, Vec<Envelope>> = HashMap::new();
        for envelope in pending {
            groups
                .entry(BatchKey::of(&envelope.item))
                .or_default()
                .push(envelope);
        }
        for (_, group) in groups {
            if work_tx.send(group).is_err() {
                return;
            }
        }
    }
}

fn worker_loop(shared: &Shared, work_rx: &Arc<Mutex<mpsc::Receiver<Vec<Envelope>>>>) {
    loop {
        // Hold the receiver lock only to take the next batch.
        let batch = {
            let rx = work_rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(batch) = batch else { return };
        execute_batch(shared, batch);
    }
}

fn execute_batch(shared: &Shared, batch: Vec<Envelope>) {
    let batch_size = batch.len();
    let counters = &shared.counters;
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .largest_batch
        .fetch_max(batch_size as u64, Ordering::Relaxed);
    if batch_size > 1 {
        counters
            .coalesced_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
    }
    let (items, replies): (Vec<WorkItem>, Vec<Reply>) = batch
        .into_iter()
        .map(|envelope| (envelope.item, envelope.reply))
        .unzip();
    // A panicking batch fails only its own group; the shared state the closure
    // touches is the session's caches, which stay valid across an unwind
    // (stampede slots unclaim themselves, locks recover from poisoning).
    let executed = catch_unwind(AssertUnwindSafe(|| run_batch(shared, &items)));
    match executed {
        Ok((responses, launches)) => {
            counters.launches.fetch_add(launches, Ordering::Relaxed);
            counters
                .completed
                .fetch_add(batch_size as u64, Ordering::Relaxed);
            for (reply, response) in replies.into_iter().zip(responses) {
                let _ = reply.send(Ok(Completion {
                    response,
                    batch_size,
                    batch_launches: launches,
                }));
            }
        }
        Err(panic) => {
            counters
                .failed
                .fetch_add(batch_size as u64, Ordering::Relaxed);
            let why = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "batch panicked".to_string());
            for reply in replies {
                let _ = reply.send(Err(ServeError::Internal(why.clone())));
            }
        }
    }
}

/// Executes one homogeneous batch, returning per-request responses and the
/// batch's total launch count.
fn run_batch(shared: &Shared, items: &[WorkItem]) -> (Vec<Response>, u64) {
    match &items[0] {
        WorkItem::NttForward { q, n, .. } | WorkItem::NttInverse { q, n, .. } => {
            let forward = matches!(items[0], WorkItem::NttForward { .. });
            // One flat buffer, one stage-batched transform for the whole group:
            // log2(n) + 1 launches however many requests ride along.
            let mut flat = Vec::with_capacity(items.len() * n);
            for item in items {
                let (WorkItem::NttForward { data, .. } | WorkItem::NttInverse { data, .. }) = item
                else {
                    unreachable!("dispatcher groups by batch key");
                };
                flat.extend_from_slice(data);
            }
            let space = shared.session.ntt(*q, *n);
            let stats = if forward {
                space.forward_batch(&mut flat)
            } else {
                space.inverse_batch(&mut flat)
            };
            let responses = flat
                .chunks_exact(*n)
                .map(|chunk| Response::Ntt(chunk.to_vec()))
                .collect();
            (responses, stats.launches as u64)
        }
        WorkItem::RnsMulRescaleExtend { tenant, .. } => {
            let (src, dst) = {
                let tenants = shared
                    .tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let t = &tenants[tenant.0];
                (t.src.clone(), t.dst.clone())
            };
            // Concatenate every request's operands into one vector pair: the
            // whole group then costs one multiply + one fused chain.
            let mut lengths = Vec::with_capacity(items.len());
            let mut flat_a = Vec::new();
            let mut flat_b = Vec::new();
            for item in items {
                let WorkItem::RnsMulRescaleExtend { a, b, .. } = item else {
                    unreachable!("dispatcher groups by batch key");
                };
                lengths.push(a.len());
                flat_a.extend_from_slice(a);
                flat_b.extend_from_slice(b);
            }
            let va = src.encode(&flat_a);
            let vb = src.encode(&flat_b);
            let (product, mul_stats) = va.mul_with_stats(&vb);
            let (out, chain_stats) = product.rescale_then_extend_with_stats(&dst);
            let mut values = out.to_biguints().into_iter();
            let responses = lengths
                .iter()
                .map(|&len| Response::Rns(values.by_ref().take(len).collect()))
                .collect();
            (
                responses,
                (mul_stats.launches + chain_stats.launches) as u64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma::bignum::random::random_below;
    use moma::rns::RnsContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ntt_item(space: &moma::NttSpace, seed: u64) -> (WorkItem, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = BigUint::from(space.modulus());
        let data: Vec<u64> = (0..space.n())
            .map(|_| random_below(&mut rng, &q).to_u64().unwrap())
            .collect();
        (
            WorkItem::NttForward {
                q: space.modulus(),
                n: space.n(),
                data: data.clone(),
            },
            data,
        )
    }

    #[test]
    fn ntt_round_trip_matches_the_inline_path() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let space = server.session().ntt_default(64);
        let (item, data) = ntt_item(&space, 1);
        let done = client.call(item).unwrap();
        let Response::Ntt(transformed) = done.response else {
            panic!("NTT work yields NTT responses")
        };
        let mut expected = data.clone();
        space.forward(&mut expected);
        assert_eq!(transformed, expected);
        let back = client
            .call(WorkItem::NttInverse {
                q: space.modulus(),
                n: space.n(),
                data: transformed,
            })
            .unwrap();
        assert_eq!(back.response, Response::Ntt(data));
    }

    #[test]
    fn coalesced_batch_costs_one_stage_sweep() {
        // min_batch = 4 with a generous window: the dispatcher provably holds
        // the first request until all four are in hand, so the batch size and
        // launch count are deterministic.
        let server = Server::new(
            Session::default(),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                min_batch: 4,
                batch_window: Duration::from_secs(5),
            },
        );
        let client = server.client();
        let space = server.session().ntt_default(64);
        let tickets: Vec<Ticket> = (0..4)
            .map(|seed| client.submit(ntt_item(&space, seed).0).unwrap())
            .collect();
        for ticket in tickets {
            let done = ticket.wait().unwrap();
            assert_eq!(done.batch_size, 4);
            // log2(64) stages + the lazy-reduction normalize pass, shared by
            // the whole batch.
            assert_eq!(done.batch_launches, 7);
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced_requests, 4);
        assert_eq!(stats.largest_batch, 4);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn rns_chain_matches_the_oracle_through_the_server() {
        let session = Session::default();
        let server = Server::new(session.clone(), ServeConfig::default());
        let client = server.client();
        let src_space = session.rns_with_capacity(128);
        let src_moduli = src_space.moduli();
        let dst_moduli = &src_moduli[..4];
        let tenant = server.register_tenant(&src_moduli, dst_moduli);

        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<BigUint> = (0..5)
            .map(|_| random_below(&mut rng, src_space.product()))
            .collect();
        let b: Vec<BigUint> = (0..5)
            .map(|_| random_below(&mut rng, src_space.product()))
            .collect();
        let done = client
            .call(WorkItem::RnsMulRescaleExtend {
                tenant,
                a: a.clone(),
                b: b.clone(),
            })
            .unwrap();
        let Response::Rns(values) = done.response else {
            panic!("RNS work yields RNS responses")
        };
        let ctx = RnsContext::with_moduli(&src_moduli);
        let dst_ctx = RnsContext::with_moduli(dst_moduli);
        let out_ctx = ctx.without_last();
        for (c, (x, y)) in a.iter().zip(&b).enumerate() {
            let prod = (x * y) % src_space.product();
            let oracle = dst_ctx.from_residues(
                &out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&prod))),
            );
            assert_eq!(values[c], oracle, "element {c}");
        }
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let q = server.session().ntt_default(8).modulus();
        let bad = [
            WorkItem::NttForward {
                q,
                n: 6,
                data: vec![0; 6],
            },
            WorkItem::NttForward {
                q,
                n: 8,
                data: vec![0; 4],
            },
            WorkItem::NttForward {
                q,
                n: 8,
                data: vec![q; 8],
            },
        ];
        for item in bad {
            assert!(matches!(
                client.submit(item),
                Err(ServeError::BadRequest(_))
            ));
        }
        assert!(matches!(
            client.submit(WorkItem::RnsMulRescaleExtend {
                tenant: TenantId(3),
                a: vec![BigUint::from(1u64)],
                b: vec![BigUint::from(1u64)],
            }),
            Err(ServeError::UnknownTenant(3))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn a_panicking_batch_fails_alone_and_the_server_keeps_serving() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        // q = 6 passes the cheap submit-time checks but the NTT planner panics.
        let poisoned = client.call(WorkItem::NttForward {
            q: 6,
            n: 8,
            data: vec![1; 8],
        });
        assert!(matches!(poisoned, Err(ServeError::Internal(_))));
        // The very same session still serves valid work.
        let space = server.session().ntt_default(8);
        let (item, _) = ntt_item(&space, 9);
        assert!(client.call(item).is_ok());
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn clients_outliving_the_server_get_shutdown_errors() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let space = server.session().ntt_default(8);
        let (item, _) = ntt_item(&space, 11);
        drop(server);
        assert!(matches!(client.call(item), Err(ServeError::Shutdown)));
    }
}
