//! The server: bounded submission queue, coalescing dispatcher, supervised
//! worker pool.
//!
//! Life of a request: a [`Client`] validates it cheaply, stamps it with a
//! sequence number and an optional deadline, and **try-sends** it down one
//! bounded `mpsc` channel — a full queue fails fast with
//! [`ServeError::Overloaded`] instead of queueing unboundedly (admission
//! control). The dispatcher thread collects in-flight requests — up to
//! [`ServeConfig::max_batch`], waiting at most [`ServeConfig::batch_window`]
//! once it holds fewer than [`ServeConfig::min_batch`] — drops any whose
//! deadline already passed (resolving them with
//! [`ServeError::DeadlineExceeded`]), then groups the rest by compatible work
//! (same `(q, n)` NTT direction, same tenant chain) and hands each group to
//! the worker pool over a second bounded channel, so backpressure from busy
//! workers propagates to admission. A worker re-checks every deadline once
//! more before executing — a slow batch never wastes launches on requests
//! nobody is waiting for — then flattens the group into one batch, executes it
//! through the shared session's stage-batched launchers, splits the result,
//! and resolves every [`Ticket`] with its slice plus the group's batch
//! statistics.
//!
//! Failure containment is layered: a panicking batch (say, a modulus the NTT
//! planner rejects) fails only its own group — the worker catches the unwind
//! and resolves those tickets with [`ServeError::Internal`], preserving the
//! batch kind and size. A worker thread that *dies* (its panic escaping the
//! per-batch guard) is respawned by the supervisor thread, which counts a
//! `restart` in [`ServerStats`]; the pool never silently shrinks.
//! [`Server::drain`] gives graceful shutdown: new submissions are rejected
//! while in-flight work completes. Every one of these paths is reproducible
//! via the seeded fault plan in [`ServeConfig::fault_plan`].

use crate::fault::{Fault, FaultPlan};
use moma::bignum::BigUint;
use moma::gpu::pool::PoolStats;
use moma::Session;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handle to a registered RNS basis pair (see [`Server::register_tenant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

/// Handle to a registered negacyclic ring ladder (see
/// [`Server::register_ring_tenant`]). Distinct from [`TenantId`] so a ladder
/// request can never name an RNS basis pair, or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingTenantId(usize);

/// Server sizing, batching, robustness, and fault-injection knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches (≥ 1).
    pub workers: usize,
    /// Hard cap on requests coalesced into one collection round (≥ 1). `1`
    /// disables coalescing entirely — the one-request-at-a-time baseline.
    pub max_batch: usize,
    /// Once this many requests are in hand, stop waiting for more (≥ 1). The
    /// dispatcher only waits out the batching window while it holds fewer.
    pub min_batch: usize,
    /// How long the dispatcher is willing to hold the first request of a round
    /// while waiting for companions.
    pub batch_window: Duration,
    /// Bound on the submission queue (≥ 1). When the queue is full,
    /// [`Client::submit`] fails fast with [`ServeError::Overloaded`] instead
    /// of queueing — the load-shedding knob that keeps accepted-request
    /// latency flat under overload.
    pub queue_depth: usize,
    /// Deterministic fault injection, keyed by request sequence number. Empty
    /// (the default) injects nothing; see [`FaultPlan`].
    pub fault_plan: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 64,
            min_batch: 1,
            batch_window: Duration::from_millis(1),
            queue_depth: 1024,
            fault_plan: FaultPlan::new(),
        }
    }
}

/// One unit of client work.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Forward NTT of one `n`-point transform over the prime `q`.
    NttForward {
        /// NTT-friendly prime modulus.
        q: u64,
        /// Transform size (power of two).
        n: usize,
        /// Exactly `n` coefficients, each below `q`.
        data: Vec<u64>,
    },
    /// Inverse NTT (with `1/n` scaling) of one `n`-point transform over `q`.
    NttInverse {
        /// NTT-friendly prime modulus.
        q: u64,
        /// Transform size (power of two).
        n: usize,
        /// Exactly `n` coefficients, each below `q`.
        data: Vec<u64>,
    },
    /// The fused RNS chain `(a · b) → rescale → extend` over a tenant's basis
    /// pair: element-wise multiply in the source basis, then the fused
    /// rescale-and-extend into the destination basis.
    RnsMulRescaleExtend {
        /// The basis pair, from [`Server::register_tenant`].
        tenant: TenantId,
        /// Left operand, every value below the tenant's source-basis product.
        a: Vec<BigUint>,
        /// Right operand, same length as `a`.
        b: Vec<BigUint>,
    },
    /// One FHE-style ladder level over a ring tenant's negacyclic ring:
    /// raise both operands, pointwise multiply, lower, and rescale onto the
    /// next level's basis. Traffic for the same `(tenant, level)` coalesces
    /// into one batch, sharing every plan lookup and pool round-trip.
    LadderStep {
        /// The ring ladder, from [`Server::register_ring_tenant`].
        tenant: RingTenantId,
        /// The ladder level both operands live at (`< steps`).
        level: usize,
        /// Left operand: exactly `n` coefficients, each below the level's
        /// basis product.
        a: Vec<BigUint>,
        /// Right operand, same shape as `a`.
        b: Vec<BigUint>,
    },
}

impl WorkItem {
    /// A stable, human-readable name for the kind of batch this item rides in
    /// — the context [`ServeError::Internal`] preserves when a batch fails.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WorkItem::NttForward { .. } => "ntt_forward",
            WorkItem::NttInverse { .. } => "ntt_inverse",
            WorkItem::RnsMulRescaleExtend { .. } => "rns_mul_rescale_extend",
            WorkItem::LadderStep { .. } => "ladder_step",
        }
    }
}

/// A finished request's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Transformed coefficients (NTT work).
    Ntt(Vec<u64>),
    /// Chain results in positional form (RNS work).
    Rns(Vec<BigUint>),
    /// The rescaled polynomial's `n` coefficients at the next ladder level
    /// (ladder work).
    Ladder(Vec<BigUint>),
}

/// A finished request: the payload plus the batch it was executed in.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The result payload.
    pub response: Response,
    /// How many requests shared this request's executed batch (≥ 1).
    pub batch_size: usize,
    /// Simulated kernel launches the whole batch cost; a request's fair share
    /// is `batch_launches / batch_size`.
    pub batch_launches: u64,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant id was never registered on this server.
    UnknownTenant(usize),
    /// The request failed submit-time validation.
    BadRequest(String),
    /// The server shut down (or is draining, or the reply path was lost to a
    /// dying worker) before the request resolved.
    Shutdown,
    /// The submission queue was full: the request was shed at admission
    /// without queueing. Retryable — see
    /// [`Client::call_with_retry`](crate::Client::call_with_retry).
    Overloaded,
    /// The request's deadline passed before its batch executed; it was
    /// dropped without wasting launches on it.
    DeadlineExceeded,
    /// The batch execution failed (a panic, or an injected spurious failure),
    /// with the batch context preserved.
    Internal {
        /// Which kind of batch failed (see [`WorkItem::kind_name`]).
        kind: &'static str,
        /// How many requests the failed batch carried.
        batch_size: usize,
        /// The panic payload or failure description.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant id {id}"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Shutdown => write!(f, "server shut down before the request resolved"),
            ServeError::Overloaded => {
                write!(f, "server overloaded: submission queue full, request shed")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request's batch executed")
            }
            ServeError::Internal {
                kind,
                batch_size,
                message,
            } => write!(
                f,
                "batch execution failed ({kind} batch of {batch_size}): {message}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic service counters (a snapshot; see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted by [`Client::submit`].
    pub submitted: u64,
    /// Requests resolved successfully.
    pub completed: u64,
    /// Requests resolved with [`ServeError::Internal`].
    pub failed: u64,
    /// Requests shed at admission with [`ServeError::Overloaded`] (never
    /// queued; not counted in `submitted`).
    pub shed: u64,
    /// Accepted requests dropped with [`ServeError::DeadlineExceeded`] by the
    /// dispatcher or a worker's pre-execution re-check.
    pub expired: u64,
    /// Worker threads the supervisor respawned after a death.
    pub restarts: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that shared their batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total simulated kernel launches across all batches.
    pub launches: u64,
    /// Size of the largest batch executed so far.
    pub largest_batch: u64,
    /// Plane-sized heap buffers allocated while executing batches. On a warm
    /// server every plane comes from the session's buffer pool and this stays
    /// flat — steady state is allocation-free.
    pub plane_allocs: u64,
    /// Snapshot of the session's buffer-pool counters (see
    /// [`moma::gpu::pool::BufferPool`]).
    pub pool: PoolStats,
    /// Accepted requests not yet resolved (a gauge, not a counter).
    pub outstanding: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    restarts: AtomicU64,
    batches: AtomicU64,
    coalesced_requests: AtomicU64,
    launches: AtomicU64,
    largest_batch: AtomicU64,
    plane_allocs: AtomicU64,
    outstanding: AtomicU64,
}

/// One registered basis pair: owned session handles, reused by every chain
/// request the tenant ever submits.
struct Tenant {
    src: moma::RnsSpace,
    dst: moma::RnsSpace,
}

struct Shared {
    session: Session,
    config: ServeConfig,
    shutdown: AtomicBool,
    draining: AtomicBool,
    seq: AtomicU64,
    tenants: RwLock<Vec<Tenant>>,
    ring_tenants: RwLock<Vec<moma::RingSpace>>,
    counters: Counters,
}

type Reply = mpsc::SyncSender<Result<Completion, ServeError>>;

/// Releases one `outstanding` slot when dropped — however the envelope dies:
/// resolved with a reply, shed before entering the queue, dropped with a
/// disconnecting channel at shutdown, or unwound with a dying worker's stack.
struct OutstandingGuard {
    shared: Arc<Shared>,
}

impl OutstandingGuard {
    fn new(shared: Arc<Shared>) -> Self {
        shared.counters.outstanding.fetch_add(1, Ordering::SeqCst);
        OutstandingGuard { shared }
    }
}

impl Drop for OutstandingGuard {
    fn drop(&mut self) {
        self.shared
            .counters
            .outstanding
            .fetch_sub(1, Ordering::SeqCst);
    }
}

struct Envelope {
    /// Admission-order sequence number (the fault plan's key).
    seq: u64,
    item: WorkItem,
    deadline: Option<Instant>,
    reply: Reply,
    guard: OutstandingGuard,
}

impl Envelope {
    fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| deadline <= now)
    }

    /// Releases the outstanding slot, then sends the final result — in that
    /// order, so "the ticket resolved" implies "no longer outstanding" (the
    /// invariant [`Server::drain`] polls and tests assert after waiting).
    fn resolve(self, result: Result<Completion, ServeError>) {
        let Envelope { reply, guard, .. } = self;
        drop(guard);
        let _ = reply.send(result);
    }
}

/// What the dispatcher coalesces on: requests with equal keys flatten into one
/// executed batch.
#[derive(PartialEq, Eq, Hash)]
enum BatchKey {
    NttForward { q: u64, n: usize },
    NttInverse { q: u64, n: usize },
    Rns { tenant: usize },
    Ladder { tenant: usize, level: usize },
}

impl BatchKey {
    fn of(item: &WorkItem) -> Self {
        match item {
            WorkItem::NttForward { q, n, .. } => BatchKey::NttForward { q: *q, n: *n },
            WorkItem::NttInverse { q, n, .. } => BatchKey::NttInverse { q: *q, n: *n },
            WorkItem::RnsMulRescaleExtend { tenant, .. } => BatchKey::Rns { tenant: tenant.0 },
            WorkItem::LadderStep { tenant, level, .. } => BatchKey::Ladder {
                tenant: tenant.0,
                level: *level,
            },
        }
    }
}

type WorkQueue = Arc<Mutex<mpsc::Receiver<Vec<Envelope>>>>;

/// A batching server over one shared session (see the [crate docs](crate)).
///
/// Dropping the server shuts it down: the dispatcher, supervisor, and workers
/// are joined, in-flight batches finish, and any request still unresolved —
/// queued, or submitted through a still-alive [`Client`] — resolves to
/// [`ServeError::Shutdown`]. For a shutdown that *waits* for in-flight work
/// first, call [`Server::drain`] before dropping.
pub struct Server {
    shared: Arc<Shared>,
    submit_tx: Option<mpsc::SyncSender<Envelope>>,
    dispatcher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `session` (sharing its caches with every other
    /// clone of that session) with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers`, `config.max_batch`, `config.min_batch`, or
    /// `config.queue_depth` is zero.
    pub fn new(session: Session, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.min_batch >= 1, "min_batch must be at least 1");
        assert!(config.queue_depth >= 1, "queue_depth must be at least 1");
        let shared = Arc::new(Shared {
            session,
            config,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            tenants: RwLock::new(Vec::new()),
            ring_tenants: RwLock::new(Vec::new()),
            counters: Counters::default(),
        });
        // Both channels are bounded: a full submission queue sheds at
        // admission, and the narrow work channel makes busy workers push back
        // on the dispatcher instead of letting batches pile up invisibly.
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Envelope>(shared.config.queue_depth);
        let (work_tx, work_rx) = mpsc::sync_channel::<Vec<Envelope>>(shared.config.workers);
        let work_rx: WorkQueue = Arc::new(Mutex::new(work_rx));
        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers)
            .map(|_| spawn_worker(&shared, &work_rx))
            .collect();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || dispatch_loop(&shared, &submit_rx, &work_tx))
        };
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || supervisor_loop(&shared, &work_rx, workers))
        };
        Server {
            shared,
            submit_tx: Some(submit_tx),
            dispatcher: Some(dispatcher),
            supervisor: Some(supervisor),
        }
    }

    /// The shared session behind this server (same caches as every clone).
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Registers an RNS basis pair and returns its id. The source and
    /// destination spaces — and every plan and kernel their chain needs — are
    /// session-cached handles, built at most once and reused by every
    /// [`WorkItem::RnsMulRescaleExtend`] for this tenant.
    ///
    /// # Panics
    ///
    /// Panics under the [`Session::rns`] conditions (composite, duplicate, or
    /// oversized moduli), or if `src_moduli` has fewer than two moduli (the
    /// chain rescales, which drops one).
    pub fn register_tenant(&self, src_moduli: &[u64], dst_moduli: &[u64]) -> TenantId {
        assert!(
            src_moduli.len() >= 2,
            "the chain rescales: the source basis needs at least two moduli"
        );
        let tenant = Tenant {
            src: self.shared.session.rns(src_moduli),
            dst: self.shared.session.rns(dst_moduli),
        };
        let mut tenants = self
            .shared
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        tenants.push(tenant);
        TenantId(tenants.len() - 1)
    }

    /// Registers a negacyclic ring ladder — `R_q = Z_q[X]/(X^n + 1)` over the
    /// RNS ladder `moduli` — and returns its id. The ring context and every
    /// plan a [`WorkItem::LadderStep`] needs (negacyclic NTT plans per
    /// modulus, level bases, fused rescale chains) are session-cached, built
    /// at most once, and shared by every request for this tenant.
    ///
    /// # Panics
    ///
    /// Panics under the [`Session::ring`] conditions (`n` not a power of two,
    /// a modulus not an NTT-friendly prime for `2n`, …), or if `moduli` has
    /// fewer than two entries (a ladder with no step to serve).
    pub fn register_ring_tenant(&self, n: usize, moduli: &[u64]) -> RingTenantId {
        assert!(
            moduli.len() >= 2,
            "a ladder needs at least two moduli (one rescale step)"
        );
        let space = self.shared.session.ring(n, moduli);
        let mut tenants = self
            .shared
            .ring_tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        tenants.push(space);
        RingTenantId(tenants.len() - 1)
    }

    /// A new submission handle. Clients are cheap to clone, `Send`, and may
    /// outlive the server (submissions after shutdown resolve to
    /// [`ServeError::Shutdown`]).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            tx: self
                .submit_tx
                .clone()
                .expect("submit channel lives as long as the server"),
        }
    }

    /// Graceful shutdown, phase one: stop admitting new requests (submissions
    /// now fail with [`ServeError::Shutdown`]) and wait up to `timeout` for
    /// every accepted request to resolve. Returns `true` once nothing is
    /// outstanding, `false` if the timeout expired first (check
    /// [`ServerStats::outstanding`] for what is left). Either way the worker
    /// pool keeps running until the server is dropped.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.counters.outstanding.load(Ordering::SeqCst) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            restarts: c.restarts.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            coalesced_requests: c.coalesced_requests.load(Ordering::Relaxed),
            launches: c.launches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            plane_allocs: c.plane_allocs.load(Ordering::Relaxed),
            pool: self.shared.session.pool().stats(),
            outstanding: c.outstanding.load(Ordering::SeqCst),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.submit_tx.take());
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // The supervisor joins the workers: once the dispatcher is gone its
        // work sender is dropped, so workers drain the remaining batches and
        // exit on the disconnect.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// A cloneable submission handle to a [`Server`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    tx: mpsc::SyncSender<Envelope>,
}

impl Client {
    /// Validates `item` and enqueues it without a deadline, returning a
    /// [`Ticket`] that resolves when a worker has executed the request's
    /// batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] / [`ServeError::UnknownTenant`] on
    /// validation failure, [`ServeError::Overloaded`] if the bounded
    /// submission queue is full (the request is shed, never queued),
    /// [`ServeError::Shutdown`] if the server is gone or draining.
    pub fn submit(&self, item: WorkItem) -> Result<Ticket, ServeError> {
        self.submit_inner(item, None)
    }

    /// Like [`Client::submit`], but the request carries a deadline `budget`
    /// from now: if its batch has not started executing when the budget is
    /// spent, the dispatcher or worker drops it with
    /// [`ServeError::DeadlineExceeded`] instead of wasting launches on it.
    ///
    /// # Errors
    ///
    /// The [`Client::submit`] errors.
    pub fn submit_with_deadline(
        &self,
        item: WorkItem,
        budget: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(item, Some(Instant::now() + budget))
    }

    /// Submits `item` and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// The [`Client::submit`] errors, plus [`ServeError::Internal`] if the
    /// batch execution failed.
    pub fn call(&self, item: WorkItem) -> Result<Completion, ServeError> {
        self.submit(item)?.wait()
    }

    /// Submits `item` with a deadline `budget` and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// The [`Client::call`] errors, plus [`ServeError::DeadlineExceeded`] if
    /// the budget ran out before the batch executed.
    pub fn call_with_deadline(
        &self,
        item: WorkItem,
        budget: Duration,
    ) -> Result<Completion, ServeError> {
        self.submit_with_deadline(item, budget)?.wait()
    }

    fn submit_inner(
        &self,
        item: WorkItem,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.validate(&item)?;
        if self.shared.shutdown.load(Ordering::SeqCst)
            || self.shared.draining.load(Ordering::SeqCst)
        {
            return Err(ServeError::Shutdown);
        }
        let (reply, rx) = mpsc::sync_channel(1);
        let envelope = Envelope {
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            item,
            deadline,
            reply,
            guard: OutstandingGuard::new(Arc::clone(&self.shared)),
        };
        match self.tx.try_send(envelope) {
            Ok(()) => {
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            // Admission control: a full queue fails fast. The unsent envelope
            // drops here, releasing its outstanding slot.
            Err(TrySendError::Full(_)) => {
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    fn validate(&self, item: &WorkItem) -> Result<(), ServeError> {
        match item {
            WorkItem::NttForward { q, n, data } | WorkItem::NttInverse { q, n, data } => {
                if *n < 2 || !n.is_power_of_two() {
                    return Err(ServeError::BadRequest(format!(
                        "transform size {n} is not a power of two ≥ 2"
                    )));
                }
                if data.len() != *n {
                    return Err(ServeError::BadRequest(format!(
                        "{} coefficients for an {n}-point transform",
                        data.len()
                    )));
                }
                if data.iter().any(|&x| x >= *q) {
                    return Err(ServeError::BadRequest(format!(
                        "coefficient not reduced below q = {q}"
                    )));
                }
                Ok(())
            }
            WorkItem::RnsMulRescaleExtend { tenant, a, b } => {
                let tenants = self
                    .shared
                    .tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let t = tenants
                    .get(tenant.0)
                    .ok_or(ServeError::UnknownTenant(tenant.0))?;
                if a.is_empty() || a.len() != b.len() {
                    return Err(ServeError::BadRequest(format!(
                        "operand lengths {} and {} (need equal, non-empty)",
                        a.len(),
                        b.len()
                    )));
                }
                let product = t.src.product();
                if a.iter().chain(b.iter()).any(|v| v >= product) {
                    return Err(ServeError::BadRequest(
                        "operand not below the source-basis product".to_string(),
                    ));
                }
                Ok(())
            }
            WorkItem::LadderStep {
                tenant,
                level,
                a,
                b,
            } => {
                let tenants = self
                    .shared
                    .ring_tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let space = tenants
                    .get(tenant.0)
                    .ok_or(ServeError::UnknownTenant(tenant.0))?;
                if *level >= space.steps() {
                    return Err(ServeError::BadRequest(format!(
                        "level {level} has no next level on a {}-step ladder",
                        space.steps()
                    )));
                }
                let n = space.n();
                if a.len() != n || b.len() != n {
                    return Err(ServeError::BadRequest(format!(
                        "operand lengths {} and {} for a degree-{n} ring",
                        a.len(),
                        b.len()
                    )));
                }
                let product = space.product(*level);
                if a.iter().chain(b.iter()).any(|v| v >= product) {
                    return Err(ServeError::BadRequest(
                        "coefficient not below the level's basis product".to_string(),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// The pending side of one submitted request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Completion, ServeError>>,
}

impl Ticket {
    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// Whatever the batch resolved this request to; [`ServeError::Shutdown`]
    /// if the server went away — or the reply path was lost to a dying worker
    /// — first.
    pub fn wait(self) -> Result<Completion, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Waits at most `timeout` for the request to resolve. `None` means the
    /// request is still pending (the ticket stays usable); `Some` carries the
    /// resolution, with a lost reply path mapped to [`ServeError::Shutdown`]
    /// exactly like [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Completion, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Shutdown)),
        }
    }
}

/// How long the dispatcher sleeps per idle poll while watching for shutdown.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// How often the supervisor scans the pool for dead workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(2);

fn dispatch_loop(
    shared: &Shared,
    submit_rx: &mpsc::Receiver<Envelope>,
    work_tx: &mpsc::SyncSender<Vec<Envelope>>,
) {
    let config = &shared.config;
    loop {
        // Block (in shutdown-aware slices) for the round's first request.
        let first = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match submit_rx.recv_timeout(IDLE_POLL) {
                Ok(envelope) => break envelope,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        // Coalesce: drain what is already queued; while below min_batch, wait
        // out the batching window for companions.
        let mut pending = vec![first];
        let deadline = Instant::now() + config.batch_window;
        while pending.len() < config.max_batch {
            match submit_rx.try_recv() {
                Ok(envelope) => pending.push(envelope),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    if pending.len() >= config.min_batch {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match submit_rx.recv_timeout(deadline - now) {
                        Ok(envelope) => pending.push(envelope),
                        Err(_) => break,
                    }
                }
            }
        }
        // Drop requests that are already dead: batching them would spend
        // worker time on answers nobody is waiting for.
        let now = Instant::now();
        let mut live = Vec::with_capacity(pending.len());
        for envelope in pending {
            if envelope.expired_at(now) {
                shared.counters.expired.fetch_add(1, Ordering::Relaxed);
                envelope.resolve(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(envelope);
            }
        }
        // Group by compatible work; each group is one executed batch. The
        // bounded work channel blocks when every worker is busy — that
        // backpressure is what lets the submission queue fill and shed.
        let mut groups: HashMap<BatchKey, Vec<Envelope>> = HashMap::new();
        for envelope in live {
            groups
                .entry(BatchKey::of(&envelope.item))
                .or_default()
                .push(envelope);
        }
        for (_, group) in groups {
            if work_tx.send(group).is_err() {
                return;
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, work_rx: &WorkQueue) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let work_rx = Arc::clone(work_rx);
    thread::spawn(move || worker_loop(&shared, &work_rx))
}

/// Watches the worker pool and respawns any thread that died (a panic that
/// escaped the per-batch guard — injected via [`Fault::Die`], or a real bug).
/// Without this, a dead worker silently shrinks the pool forever. On shutdown
/// it joins every worker and exits.
fn supervisor_loop(shared: &Arc<Shared>, work_rx: &WorkQueue, mut workers: Vec<JoinHandle<()>>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            for worker in workers {
                let _ = worker.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() && !shared.shutdown.load(Ordering::SeqCst) {
                let dead = std::mem::replace(slot, spawn_worker(shared, work_rx));
                let _ = dead.join();
                shared.counters.restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
        thread::sleep(SUPERVISOR_POLL);
    }
}

fn worker_loop(shared: &Shared, work_rx: &WorkQueue) {
    loop {
        // Hold the receiver lock only to take the next batch.
        let batch = {
            let rx = work_rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(batch) = batch else { return };
        execute_batch(shared, batch);
    }
}

fn execute_batch(shared: &Shared, batch: Vec<Envelope>) {
    let counters = &shared.counters;
    let plan = &shared.config.fault_plan;

    // Injected worker death: the panic deliberately escapes the per-batch
    // unwind guard below, so it is the supervisor — not `catch_unwind` — that
    // keeps the pool at strength. The batch's envelopes drop with the stack:
    // replies are lost (tickets resolve to `Shutdown`) and the outstanding
    // guards release on unwind.
    if batch
        .iter()
        .any(|e| plan.fault_for(e.seq) == Some(Fault::Die))
    {
        panic!("injected fault: worker death");
    }

    // Injected slowness, applied *before* the deadline re-check: a delayed
    // batch must shed its expired members, not execute them.
    if let Some(delay) = batch
        .iter()
        .filter_map(|e| match plan.fault_for(e.seq) {
            Some(Fault::Delay(d)) => Some(d),
            _ => None,
        })
        .max()
    {
        thread::sleep(delay);
    }

    // Deadline re-check: the dispatcher screened at batching time, but the
    // batch may have waited behind slower work since. Never spend launches on
    // requests nobody is waiting for.
    let now = Instant::now();
    let (live, dead): (Vec<Envelope>, Vec<Envelope>) =
        batch.into_iter().partition(|e| !e.expired_at(now));
    if !dead.is_empty() {
        counters
            .expired
            .fetch_add(dead.len() as u64, Ordering::Relaxed);
        for envelope in dead {
            envelope.resolve(Err(ServeError::DeadlineExceeded));
        }
    }
    if live.is_empty() {
        return;
    }

    let batch_size = live.len();
    let kind = live[0].item.kind_name();
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .largest_batch
        .fetch_max(batch_size as u64, Ordering::Relaxed);
    if batch_size > 1 {
        counters
            .coalesced_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
    }

    // Injected spurious failure: the whole batch fails without executing —
    // the no-panic flavor of a broken batch.
    if live
        .iter()
        .any(|e| plan.fault_for(e.seq) == Some(Fault::Fail))
    {
        counters
            .failed
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        for envelope in live {
            envelope.resolve(Err(ServeError::Internal {
                kind,
                batch_size,
                message: "injected fault: spurious batch failure".to_string(),
            }));
        }
        return;
    }

    let mut seqs = Vec::with_capacity(batch_size);
    let mut items = Vec::with_capacity(batch_size);
    let mut replies = Vec::with_capacity(batch_size);
    let mut guards = Vec::with_capacity(batch_size);
    for envelope in live {
        seqs.push(envelope.seq);
        items.push(envelope.item);
        replies.push(envelope.reply);
        guards.push(envelope.guard);
    }
    // A panicking batch fails only its own group; the shared state the closure
    // touches is the session's caches, which stay valid across an unwind
    // (stampede slots unclaim themselves, locks recover from poisoning).
    let executed = catch_unwind(AssertUnwindSafe(|| run_batch(shared, &seqs, &items)));
    // Per request: release the outstanding slot, *then* send the reply, so a
    // caller that saw its ticket resolve never observes the request as still
    // outstanding.
    match executed {
        Ok((responses, launches, allocs)) => {
            counters.launches.fetch_add(launches, Ordering::Relaxed);
            counters.plane_allocs.fetch_add(allocs, Ordering::Relaxed);
            counters
                .completed
                .fetch_add(batch_size as u64, Ordering::Relaxed);
            for ((reply, guard), response) in replies.into_iter().zip(guards).zip(responses) {
                drop(guard);
                let _ = reply.send(Ok(Completion {
                    response,
                    batch_size,
                    batch_launches: launches,
                }));
            }
        }
        Err(panic) => {
            counters
                .failed
                .fetch_add(batch_size as u64, Ordering::Relaxed);
            let why = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "batch panicked".to_string());
            for (reply, guard) in replies.into_iter().zip(guards) {
                drop(guard);
                let _ = reply.send(Err(ServeError::Internal {
                    kind,
                    batch_size,
                    message: why.clone(),
                }));
            }
        }
    }
}

/// Executes one homogeneous batch, returning per-request responses, the
/// batch's total launch count, and how many plane-sized heap buffers it had
/// to allocate (zero on a warm pool).
fn run_batch(shared: &Shared, seqs: &[u64], items: &[WorkItem]) -> (Vec<Response>, u64, u64) {
    // Every plane the batch touches — the flat NTT buffer, encoded RNS
    // operands, op outputs — comes from the session pool, so the pool-miss
    // delta across the batch *is* its heap plane-allocation count.
    let misses_before = shared.session.pool().misses();
    // Injected panic: thrown here, inside the per-batch unwind guard, so it
    // exercises the same containment path as a real planner/kernel panic.
    if let Some(seq) = seqs
        .iter()
        .find(|&&s| shared.config.fault_plan.fault_for(s) == Some(Fault::Panic))
    {
        panic!("injected fault: panic while executing request #{seq}");
    }
    match &items[0] {
        WorkItem::NttForward { q, n, .. } | WorkItem::NttInverse { q, n, .. } => {
            let forward = matches!(items[0], WorkItem::NttForward { .. });
            // One flat buffer — pooled, so a warm server never heap-allocates
            // it — and one stage-batched transform for the whole group:
            // log2(n) + 1 launches however many requests ride along.
            let pool = shared.session.pool();
            let mut flat = pool.acquire(items.len() * n);
            for (slot, item) in flat.chunks_exact_mut(*n).zip(items) {
                let (WorkItem::NttForward { data, .. } | WorkItem::NttInverse { data, .. }) = item
                else {
                    unreachable!("dispatcher groups by batch key");
                };
                slot.copy_from_slice(data);
            }
            let space = shared.session.ntt(*q, *n);
            let stats = if forward {
                space.forward_batch(&mut flat)
            } else {
                space.inverse_batch(&mut flat)
            };
            let responses = flat
                .chunks_exact(*n)
                .map(|chunk| Response::Ntt(chunk.to_vec()))
                .collect();
            pool.recycle(flat);
            let allocs = pool.misses() - misses_before;
            (responses, stats.launches as u64, allocs)
        }
        WorkItem::RnsMulRescaleExtend { tenant, .. } => {
            let (src, dst) = {
                let tenants = shared
                    .tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                let t = &tenants[tenant.0];
                (t.src.clone(), t.dst.clone())
            };
            // Concatenate every request's operands into one vector pair: the
            // whole group then costs one multiply + one fused chain.
            let mut lengths = Vec::with_capacity(items.len());
            let mut flat_a = Vec::new();
            let mut flat_b = Vec::new();
            for item in items {
                let WorkItem::RnsMulRescaleExtend { a, b, .. } = item else {
                    unreachable!("dispatcher groups by batch key");
                };
                lengths.push(a.len());
                flat_a.extend_from_slice(a);
                flat_b.extend_from_slice(b);
            }
            let va = src.encode(&flat_a);
            let vb = src.encode(&flat_b);
            let (product, mul_stats) = va.mul_with_stats(&vb);
            let (out, chain_stats) = product.rescale_then_extend_with_stats(&dst);
            let mut values = out.to_biguints().into_iter();
            let responses = lengths
                .iter()
                .map(|&len| Response::Rns(values.by_ref().take(len).collect()))
                .collect();
            (
                responses,
                (mul_stats.launches + chain_stats.launches) as u64,
                shared.session.pool().misses() - misses_before,
            )
        }
        WorkItem::LadderStep { tenant, level, .. } => {
            let space = {
                let tenants = shared
                    .ring_tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                tenants[tenant.0].clone()
            };
            // Every request in the group shares the tenant's ring context, so
            // the whole batch pays the plan lookups once and cycles the same
            // pooled planes; each step is the fused raise → multiply → lower →
            // rescale chain at the group's level.
            let mut launches = 0u64;
            let responses = items
                .iter()
                .map(|item| {
                    let WorkItem::LadderStep { a, b, .. } = item else {
                        unreachable!("dispatcher groups by batch key");
                    };
                    let va = space.encode(*level, a);
                    let vb = space.encode(*level, b);
                    let (out, stats) = space.ladder_step(&va, &vb);
                    launches += stats.launches as u64;
                    Response::Ladder(space.decode(&out))
                })
                .collect();
            (
                responses,
                launches,
                shared.session.pool().misses() - misses_before,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma::bignum::random::random_below;
    use moma::rns::RnsContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ntt_item(space: &moma::NttSpace, seed: u64) -> (WorkItem, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = BigUint::from(space.modulus());
        let data: Vec<u64> = (0..space.n())
            .map(|_| random_below(&mut rng, &q).to_u64().unwrap())
            .collect();
        (
            WorkItem::NttForward {
                q: space.modulus(),
                n: space.n(),
                data: data.clone(),
            },
            data,
        )
    }

    #[test]
    fn ntt_round_trip_matches_the_inline_path() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let space = server.session().ntt_default(64);
        let (item, data) = ntt_item(&space, 1);
        let done = client.call(item).unwrap();
        let Response::Ntt(transformed) = done.response else {
            panic!("NTT work yields NTT responses")
        };
        let mut expected = data.clone();
        space.forward(&mut expected);
        assert_eq!(transformed, expected);
        let back = client
            .call(WorkItem::NttInverse {
                q: space.modulus(),
                n: space.n(),
                data: transformed,
            })
            .unwrap();
        assert_eq!(back.response, Response::Ntt(data));
    }

    #[test]
    fn coalesced_batch_costs_one_stage_sweep() {
        // min_batch = 4 with a generous window: the dispatcher provably holds
        // the first request until all four are in hand, so the batch size and
        // launch count are deterministic.
        let server = Server::new(
            Session::default(),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                min_batch: 4,
                batch_window: Duration::from_secs(5),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let space = server.session().ntt_default(64);
        let tickets: Vec<Ticket> = (0..4)
            .map(|seed| client.submit(ntt_item(&space, seed).0).unwrap())
            .collect();
        for ticket in tickets {
            let done = ticket.wait().unwrap();
            assert_eq!(done.batch_size, 4);
            // log2(64) stages + the lazy-reduction normalize pass, shared by
            // the whole batch.
            assert_eq!(done.batch_launches, 7);
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced_requests, 4);
        assert_eq!(stats.largest_batch, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn warm_server_serves_without_plane_allocations() {
        let session = Session::default();
        let server = Server::new(session.clone(), ServeConfig::default());
        let client = server.client();
        let space = session.ntt_default(64);
        let src_moduli = session.rns_with_capacity(128).moduli();
        let tenant = server.register_tenant(&src_moduli, &src_moduli[..4]);
        let mut rng = StdRng::seed_from_u64(42);
        let product = session.rns(&src_moduli).product().clone();
        let rns_item = |rng: &mut StdRng| WorkItem::RnsMulRescaleExtend {
            tenant,
            a: (0..3).map(|_| random_below(rng, &product)).collect(),
            b: (0..3).map(|_| random_below(rng, &product)).collect(),
        };

        // Warm-up: one request of each shape builds the plans and stocks the
        // pool with every plane size the steady state needs.
        client.call(ntt_item(&space, 0).0).unwrap();
        client.call(rns_item(&mut rng)).unwrap();
        let warm = server.stats();

        for seed in 1..=40u64 {
            if seed % 2 == 0 {
                client.call(ntt_item(&space, seed).0).unwrap();
            } else {
                client.call(rns_item(&mut rng)).unwrap();
            }
        }
        let after = server.stats();
        assert_eq!(after.completed, warm.completed + 40);
        assert_eq!(
            after.plane_allocs, warm.plane_allocs,
            "a warm server must serve out of the pool, not the heap"
        );
        assert_eq!(after.pool.misses, warm.pool.misses);
        assert!(after.pool.hits > warm.pool.hits, "the pool was exercised");
    }

    #[test]
    fn rns_chain_matches_the_oracle_through_the_server() {
        let session = Session::default();
        let server = Server::new(session.clone(), ServeConfig::default());
        let client = server.client();
        let src_space = session.rns_with_capacity(128);
        let src_moduli = src_space.moduli();
        let dst_moduli = &src_moduli[..4];
        let tenant = server.register_tenant(&src_moduli, dst_moduli);

        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<BigUint> = (0..5)
            .map(|_| random_below(&mut rng, src_space.product()))
            .collect();
        let b: Vec<BigUint> = (0..5)
            .map(|_| random_below(&mut rng, src_space.product()))
            .collect();
        let done = client
            .call(WorkItem::RnsMulRescaleExtend {
                tenant,
                a: a.clone(),
                b: b.clone(),
            })
            .unwrap();
        let Response::Rns(values) = done.response else {
            panic!("RNS work yields RNS responses")
        };
        let ctx = RnsContext::with_moduli(&src_moduli);
        let dst_ctx = RnsContext::with_moduli(dst_moduli);
        let out_ctx = ctx.without_last();
        for (c, (x, y)) in a.iter().zip(&b).enumerate() {
            let prod = (x * y) % src_space.product();
            let oracle = dst_ctx.from_residues(
                &out_ctx.base_convert(&dst_ctx, &ctx.scale_and_round(&ctx.to_residues(&prod))),
            );
            assert_eq!(values[c], oracle, "element {c}");
        }
    }

    #[test]
    fn ladder_step_matches_the_inline_ring_path_and_coalesces_per_tenant() {
        let session = Session::default();
        let server = Server::new(
            session.clone(),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                min_batch: 3,
                batch_window: Duration::from_secs(5),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let ladder = moma::ring::default_ladder(16, 3);
        let tenant = server.register_ring_tenant(16, &ladder);
        let space = session.ring(16, &ladder);

        let mut rng = StdRng::seed_from_u64(0x1adde2);
        let operands: Vec<(Vec<BigUint>, Vec<BigUint>)> = (0..3)
            .map(|_| {
                let coeffs = |rng: &mut StdRng| {
                    (0..16)
                        .map(|_| random_below(rng, space.product(0)))
                        .collect::<Vec<BigUint>>()
                };
                (coeffs(&mut rng), coeffs(&mut rng))
            })
            .collect();
        let tickets: Vec<Ticket> = operands
            .iter()
            .map(|(a, b)| {
                client
                    .submit(WorkItem::LadderStep {
                        tenant,
                        level: 0,
                        a: a.clone(),
                        b: b.clone(),
                    })
                    .unwrap()
            })
            .collect();
        for (ticket, (a, b)) in tickets.into_iter().zip(&operands) {
            let done = ticket.wait().unwrap();
            // All three same-(tenant, level) requests rode one batch.
            assert_eq!(done.batch_size, 3);
            let Response::Ladder(coeffs) = done.response else {
                panic!("ladder work yields ladder responses")
            };
            let va = space.encode(0, a);
            let vb = space.encode(0, b);
            let (expected, _) = space.ladder_step(&va, &vb);
            assert_eq!(coeffs, space.decode(&expected), "inline crosscheck");
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced_requests, 3);
    }

    #[test]
    fn ladder_validation_fails_closed() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let ladder = moma::ring::default_ladder(8, 2);
        let tenant = server.register_ring_tenant(8, &ladder);
        let product = server.session().ring(8, &ladder).product(0).clone();
        let good = vec![BigUint::from(1u64); 8];

        // Unknown tenant.
        assert!(matches!(
            client.submit(WorkItem::LadderStep {
                tenant: RingTenantId(5),
                level: 0,
                a: good.clone(),
                b: good.clone(),
            }),
            Err(ServeError::UnknownTenant(5))
        ));
        // Level past the ladder floor.
        assert!(matches!(
            client.submit(WorkItem::LadderStep {
                tenant,
                level: 2,
                a: good.clone(),
                b: good.clone(),
            }),
            Err(ServeError::BadRequest(_))
        ));
        // Wrong operand length.
        assert!(matches!(
            client.submit(WorkItem::LadderStep {
                tenant,
                level: 0,
                a: vec![BigUint::from(1u64); 4],
                b: good.clone(),
            }),
            Err(ServeError::BadRequest(_))
        ));
        // Coefficient not reduced below the level product.
        assert!(matches!(
            client.submit(WorkItem::LadderStep {
                tenant,
                level: 0,
                a: vec![product; 8],
                b: good,
            }),
            Err(ServeError::BadRequest(_))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let q = server.session().ntt_default(8).modulus();
        let bad = [
            WorkItem::NttForward {
                q,
                n: 6,
                data: vec![0; 6],
            },
            WorkItem::NttForward {
                q,
                n: 8,
                data: vec![0; 4],
            },
            WorkItem::NttForward {
                q,
                n: 8,
                data: vec![q; 8],
            },
        ];
        for item in bad {
            assert!(matches!(
                client.submit(item),
                Err(ServeError::BadRequest(_))
            ));
        }
        assert!(matches!(
            client.submit(WorkItem::RnsMulRescaleExtend {
                tenant: TenantId(3),
                a: vec![BigUint::from(1u64)],
                b: vec![BigUint::from(1u64)],
            }),
            Err(ServeError::UnknownTenant(3))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn a_panicking_batch_fails_alone_and_the_server_keeps_serving() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        // q = 6 passes the cheap submit-time checks but the NTT planner panics.
        let poisoned = client.call(WorkItem::NttForward {
            q: 6,
            n: 8,
            data: vec![1; 8],
        });
        let Err(ServeError::Internal {
            kind, batch_size, ..
        }) = poisoned
        else {
            panic!("expected an internal error, got {poisoned:?}")
        };
        assert_eq!(kind, "ntt_forward");
        assert_eq!(batch_size, 1);
        // The very same session still serves valid work.
        let space = server.session().ntt_default(8);
        let (item, _) = ntt_item(&space, 9);
        assert!(client.call(item).is_ok());
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn clients_outliving_the_server_get_shutdown_errors() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let space = server.session().ntt_default(8);
        let (item, _) = ntt_item(&space, 11);
        drop(server);
        assert!(matches!(client.call(item), Err(ServeError::Shutdown)));
    }

    #[test]
    fn drain_rejects_new_work_and_reports_idle() {
        let server = Server::new(Session::default(), ServeConfig::default());
        let client = server.client();
        let space = server.session().ntt_default(8);
        let (item, _) = ntt_item(&space, 13);
        client.call(item.clone()).unwrap();
        assert!(server.drain(Duration::from_secs(5)));
        assert!(matches!(client.submit(item), Err(ServeError::Shutdown)));
        assert_eq!(server.stats().outstanding, 0);
    }
}
