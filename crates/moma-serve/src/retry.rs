//! Client-side retry with deterministic jittered exponential backoff.
//!
//! Transient failures — [`ServeError::Overloaded`] from admission control,
//! [`ServeError::Internal`] from a failed batch — are worth retrying; a
//! malformed request or an expired deadline is not. [`Client::call_with_retry`]
//! encodes that policy: it retries only the retryable errors, sleeping a
//! jittered exponential backoff between attempts, and gives up after a
//! per-call attempt budget with a [`RetryError`] that keeps the last server
//! error reachable through [`std::error::Error::source`].
//!
//! The jitter is **deterministic**: it is derived from
//! [`RetryPolicy::seed`] and the attempt index via splitmix64, so two runs
//! with the same policy back off identically — load tests and the chaos
//! harness reproduce bit-for-bit.

use crate::fault::splitmix64;
use crate::server::{Client, Completion, ServeError, WorkItem};
use std::time::Duration;

/// How [`Client::call_with_retry`] paces its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget, including the first try (≥ 1; `1` disables
    /// retrying).
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff slept after failed attempt `attempt` (0-based): the capped
    /// exponential `base_backoff · 2^attempt`, scaled by a deterministic
    /// jitter factor in `[0.5, 1.0]` drawn from `seed` and `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let jitter = 0.5
            + (splitmix64(self.seed ^ u64::from(attempt) << 17) as f64) / (u64::MAX as f64) / 2.0;
        exp.mul_f64(jitter)
    }
}

/// A call that exhausted its retry budget (or hit a non-retryable error).
///
/// The last server error stays reachable both as a public field and through
/// [`std::error::Error::source`], so `anyhow`-style chains render the full
/// story: `call failed after 4 attempts: server overloaded: ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryError {
    /// How many attempts were actually made (≤ the policy budget).
    pub attempts: u32,
    /// The error the final attempt resolved to.
    pub last: ServeError,
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "call failed after {} attempt(s)", self.attempts)
    }
}

impl std::error::Error for RetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

impl ServeError {
    /// Whether a retry can plausibly succeed: `true` for the transient
    /// failures ([`ServeError::Overloaded`], [`ServeError::Internal`]),
    /// `false` for deterministic rejections (bad request, unknown tenant,
    /// expired deadline) and for a server that is gone.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded | ServeError::Internal { .. })
    }
}

impl Client {
    /// Submits `item`, retrying retryable failures with the policy's
    /// deterministic jittered exponential backoff, up to the policy's attempt
    /// budget.
    ///
    /// # Errors
    ///
    /// [`RetryError`] carrying the final attempt's [`ServeError`] — either a
    /// non-retryable error (returned immediately) or the last transient error
    /// once the budget is spent.
    pub fn call_with_retry(
        &self,
        item: WorkItem,
        policy: &RetryPolicy,
    ) -> Result<Completion, RetryError> {
        let budget = policy.attempts.max(1);
        let mut attempt = 0;
        loop {
            let err = match self.call(item.clone()) {
                Ok(done) => return Ok(done),
                Err(err) => err,
            };
            attempt += 1;
            if attempt >= budget || !err.is_retryable() {
                return Err(RetryError {
                    attempts: attempt,
                    last: err,
                });
            }
            std::thread::sleep(policy.backoff(attempt - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
            seed: 9,
        };
        // Jitter scales by [0.5, 1.0]: each backoff lives in a known band.
        let bands = [(2, 4), (4, 8), (8, 16), (10, 20), (10, 20)];
        for (attempt, (lo, hi)) in bands.iter().enumerate() {
            let b = policy.backoff(attempt as u32);
            assert!(
                b >= Duration::from_millis(*lo) && b <= Duration::from_millis(*hi),
                "attempt {attempt}: {b:?} outside [{lo}, {hi}] ms"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let c = RetryPolicy {
            seed: 8,
            ..RetryPolicy::default()
        };
        assert!((0..6).all(|k| a.backoff(k) == b.backoff(k)));
        assert!((0..6).any(|k| a.backoff(k) != c.backoff(k)));
    }

    #[test]
    fn retryability_partition() {
        assert!(ServeError::Overloaded.is_retryable());
        assert!(ServeError::Internal {
            kind: "ntt_forward",
            batch_size: 3,
            message: "boom".into(),
        }
        .is_retryable());
        assert!(!ServeError::BadRequest("nope".into()).is_retryable());
        assert!(!ServeError::UnknownTenant(0).is_retryable());
        assert!(!ServeError::DeadlineExceeded.is_retryable());
        assert!(!ServeError::Shutdown.is_retryable());
    }

    #[test]
    fn retry_error_sources_the_server_error() {
        use std::error::Error;
        let err = RetryError {
            attempts: 4,
            last: ServeError::Overloaded,
        };
        let source = err.source().expect("retry errors carry their cause");
        let serve: &ServeError = source.downcast_ref().expect("cause is a ServeError");
        assert_eq!(*serve, ServeError::Overloaded);
    }
}
