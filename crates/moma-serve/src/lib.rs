//! A batching service front-end over one shared [`moma::Session`].
//!
//! The paper's performance story is *wide launches over warm plans*: a batched
//! NTT runs `log2 n + 1` stage launches however many transforms ride in the
//! batch, and an RNS chain op runs a fixed launch sequence however many
//! elements it covers. A service that executes each client request by itself
//! pays the full launch count per request; a service that **coalesces**
//! concurrent requests into one flat batch divides it by the batch size. This
//! crate is that service, built directly on the owned, `Send + 'static` session
//! handles (`NttSpace`, `RnsSpace`, `RnsVec`):
//!
//! * [`Server`] owns a shared [`moma::Session`] clone, a dispatcher thread, a
//!   pool of worker threads, and a supervisor thread that respawns any worker
//!   that dies (plain `std::thread` + `std::sync::mpsc` — no async runtime);
//! * the dispatcher collects in-flight requests for up to a batching window and
//!   groups them by compatible work — same `(q, n)` NTT direction, same tenant
//!   RNS chain — into flat batches;
//! * workers execute each batch through the session's stage-batched launchers
//!   ([`moma::session::NttSpace::forward_batch`]) and fused RNS chains, so the
//!   plans, kernels, and twiddle tables are built once and shared across every
//!   request the server ever sees;
//! * [`Client`] handles are cheap to clone and free to cross threads; a
//!   submitted request yields a [`Ticket`] that resolves to a [`Completion`]
//!   carrying the response plus the batch observability (batch size, launches)
//!   the closed-loop bench aggregates.
//!
//! Tenants ([`Server::register_tenant`]) pin an RNS source/destination basis
//! pair once; every chain request for that tenant reuses the same cached
//! spaces and plans. Ring tenants ([`Server::register_ring_tenant`]) do the
//! same for a negacyclic ring ladder, and [`WorkItem::LadderStep`] traffic
//! for one `(tenant, level)` coalesces into a single batch over the shared
//! ring context.
//!
//! # Degraded-mode contract
//!
//! A production service is defined by how it behaves when things go wrong,
//! so every failure path here is explicit, bounded, and typed:
//!
//! * **Admission control / load shedding** — the submission queue is bounded
//!   ([`ServeConfig::queue_depth`]); when it is full, [`Client::submit`] fails
//!   *fast* with [`ServeError::Overloaded`] instead of queueing, keeping the
//!   latency of *accepted* requests flat under overload ([`ServerStats::shed`]
//!   counts the rejects).
//! * **Deadlines** — [`Client::submit_with_deadline`] attaches a per-request
//!   budget; the dispatcher drops already-expired requests before batching
//!   them and workers re-check right before executing, resolving dead requests
//!   with [`ServeError::DeadlineExceeded`] ([`ServerStats::expired`]) rather
//!   than wasting launches on them.
//! * **Retry** — [`Client::call_with_retry`] retries the transient errors
//!   (`Overloaded`, `Internal`) with deterministic jittered exponential
//!   backoff under a per-call attempt budget ([`RetryPolicy`]); terminal
//!   errors surface immediately through a [`RetryError`] whose
//!   [`source`](std::error::Error::source) is the final [`ServeError`].
//! * **Supervision** — a batch that panics fails only its own group
//!   ([`ServeError::Internal`], with the batch kind and size preserved); a
//!   worker *thread* that dies is respawned by the supervisor
//!   ([`ServerStats::restarts`]), so the pool never silently shrinks.
//! * **Graceful shutdown** — [`Server::drain`] stops admissions and waits for
//!   in-flight work; dropping the [`Server`] resolves every ticket that is
//!   still pending to [`ServeError::Shutdown`] — [`Ticket::wait`] can also be
//!   replaced with [`Ticket::wait_timeout`] when the caller wants its own
//!   bound.
//! * **Fault injection** — a seeded, deterministic [`FaultPlan`] (panics,
//!   delays, spurious batch failures, worker deaths, keyed by request
//!   sequence number) threads through [`ServeConfig::fault_plan`], so each of
//!   the above paths is reproducible in tests and the chaos soak harness.
//!
//! # Example
//!
//! ```
//! use moma::Session;
//! use moma_serve::{Response, ServeConfig, Server, WorkItem};
//!
//! let server = Server::new(Session::default(), ServeConfig::default());
//! let client = server.client();
//! let space = server.session().ntt_default(8);
//! let (q, data) = (space.modulus(), vec![1u64, 2, 3, 4, 5, 6, 7, 0]);
//!
//! let fwd = client
//!     .call(WorkItem::NttForward { q, n: 8, data: data.clone() })
//!     .unwrap();
//! let Response::Ntt(transformed) = fwd.response else { unreachable!() };
//! let inv = client
//!     .call(WorkItem::NttInverse { q, n: 8, data: transformed })
//!     .unwrap();
//! let Response::Ntt(round_trip) = inv.response else { unreachable!() };
//! assert_eq!(round_trip, data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod retry;
mod server;

pub use fault::{Fault, FaultPlan};
pub use retry::{RetryError, RetryPolicy};
pub use server::{
    Client, Completion, Response, RingTenantId, ServeConfig, ServeError, Server, ServerStats,
    TenantId, Ticket, WorkItem,
};
