//! A batching service front-end over one shared [`moma::Session`].
//!
//! The paper's performance story is *wide launches over warm plans*: a batched
//! NTT runs `log2 n + 1` stage launches however many transforms ride in the
//! batch, and an RNS chain op runs a fixed launch sequence however many
//! elements it covers. A service that executes each client request by itself
//! pays the full launch count per request; a service that **coalesces**
//! concurrent requests into one flat batch divides it by the batch size. This
//! crate is that service, built directly on the owned, `Send + 'static` session
//! handles (`NttSpace`, `RnsSpace`, `RnsVec`):
//!
//! * [`Server`] owns a shared [`moma::Session`] clone, a dispatcher thread, and a
//!   pool of worker threads (plain `std::thread` + `std::sync::mpsc` — no async
//!   runtime);
//! * the dispatcher collects in-flight requests for up to a batching window and
//!   groups them by compatible work — same `(q, n)` NTT direction, same tenant
//!   RNS chain — into flat batches;
//! * workers execute each batch through the session's stage-batched launchers
//!   ([`moma::session::NttSpace::forward_batch`]) and fused RNS chains, so the
//!   plans, kernels, and twiddle tables are built once and shared across every
//!   request the server ever sees;
//! * [`Client`] handles are cheap to clone and free to cross threads; a
//!   submitted request yields a [`Ticket`] that resolves to a [`Completion`]
//!   carrying the response plus the batch observability (batch size, launches)
//!   the closed-loop bench aggregates.
//!
//! Tenants ([`Server::register_tenant`]) pin an RNS source/destination basis
//! pair once; every chain request for that tenant reuses the same cached
//! spaces and plans.
//!
//! # Example
//!
//! ```
//! use moma::Session;
//! use moma_serve::{Response, ServeConfig, Server, WorkItem};
//!
//! let server = Server::new(Session::default(), ServeConfig::default());
//! let client = server.client();
//! let space = server.session().ntt_default(8);
//! let (q, data) = (space.modulus(), vec![1u64, 2, 3, 4, 5, 6, 7, 0]);
//!
//! let fwd = client
//!     .call(WorkItem::NttForward { q, n: 8, data: data.clone() })
//!     .unwrap();
//! let Response::Ntt(transformed) = fwd.response else { unreachable!() };
//! let inv = client
//!     .call(WorkItem::NttInverse { q, n: 8, data: transformed })
//!     .unwrap();
//! let Response::Ntt(round_trip) = inv.response else { unreachable!() };
//! assert_eq!(round_trip, data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;

pub use server::{
    Client, Completion, Response, ServeConfig, ServeError, Server, ServerStats, TenantId, Ticket,
    WorkItem,
};
