//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] maps request **sequence numbers** (assigned by
//! [`Client::submit`](crate::Client::submit) in admission order, starting at
//! zero) to injected [`Fault`]s. The plan threads through
//! [`ServeConfig::fault_plan`](crate::ServeConfig::fault_plan) and the server
//! consults it at well-defined points of a batch's life, so every degraded-mode
//! path — a panicking batch, a slow batch missing its deadline, a spuriously
//! failing batch, a dying worker thread — has a reproducible test. An empty
//! plan (the default) injects nothing and costs one hash lookup per batch.
//!
//! Determinism: [`FaultPlan::seeded`] derives the whole schedule from a seed
//! via a splitmix64 stream — the same seed and horizon always yield the same
//! plan, with no dependence on wall-clock time or thread interleaving.

use std::collections::HashMap;
use std::time::Duration;

/// One injected fault, applied to the batch containing the keyed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the batch execution. The worker's per-batch unwind guard
    /// catches it: the batch resolves to
    /// [`ServeError::Internal`](crate::ServeError::Internal) and the server
    /// keeps serving.
    Panic,
    /// Sleep this long before the batch's pre-execution deadline re-check —
    /// a stand-in for a slow batch, driving deadline misses deterministically.
    Delay(Duration),
    /// Resolve the whole batch with
    /// [`ServeError::Internal`](crate::ServeError::Internal) without executing
    /// it — a spurious failure with no panic involved.
    Fail,
    /// Kill the worker thread itself, *outside* the per-batch unwind guard.
    /// The batch's replies are lost (tickets resolve to
    /// [`ServeError::Shutdown`](crate::ServeError::Shutdown)) and the
    /// supervisor respawns the worker, counting a `restart`.
    Die,
}

/// A deterministic schedule of injected faults, keyed by request sequence
/// number.
///
/// ```
/// use moma_serve::{Fault, FaultPlan};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .with(3, Fault::Panic)
///     .with(7, Fault::Delay(Duration::from_millis(2)));
/// assert_eq!(plan.fault_for(3), Some(Fault::Panic));
/// assert_eq!(plan.fault_for(4), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: HashMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan: no faults, the production default.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds (or overrides) the fault injected for request `seq`.
    #[must_use]
    pub fn with(mut self, seq: u64, fault: Fault) -> Self {
        self.faults.insert(seq, fault);
        self
    }

    /// A reproducible mixed schedule over the first `horizon` sequence
    /// numbers: ≈5% panics, ≈5% delays of 1–3 ms, ≈3% spurious failures, and
    /// (for `horizon ≥ 2`) exactly two worker deaths. The same `(seed,
    /// horizon)` always yields the same plan.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut plan = FaultPlan::new();
        for seq in 0..horizon {
            let h = splitmix64(seed ^ splitmix64(seq));
            let fault = match h % 100 {
                0..=4 => Fault::Panic,
                5..=9 => Fault::Delay(Duration::from_millis(1 + (h >> 32) % 3)),
                10..=12 => Fault::Fail,
                _ => continue,
            };
            plan.faults.insert(seq, fault);
        }
        if horizon >= 2 {
            // Two deterministic worker deaths, at distinct sequence numbers.
            let d1 = splitmix64(seed ^ 0xDEAD_BEEF) % horizon;
            let mut d2 = splitmix64(seed ^ 0xFEED_FACE) % horizon;
            if d2 == d1 {
                d2 = (d2 + 1) % horizon;
            }
            plan.faults.insert(d1, Fault::Die);
            plan.faults.insert(d2, Fault::Die);
        }
        plan
    }

    /// The fault injected for request `seq`, if any.
    pub fn fault_for(&self, seq: u64) -> Option<Fault> {
        self.faults.get(&seq).copied()
    }

    /// Whether the plan injects nothing (the production default).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many sequence numbers have a fault scheduled.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Iterates over the scheduled `(sequence number, fault)` pairs in
    /// arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Fault)> + '_ {
        self.faults.iter().map(|(&seq, &fault)| (seq, fault))
    }
}

/// The splitmix64 mixing function: a cheap, well-distributed `u64 -> u64`
/// hash. Used for the seeded fault schedule and the retry backoff jitter so
/// both are deterministic without a `rand` dependency.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 300);
        let b = FaultPlan::seeded(42, 300);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 300));
    }

    #[test]
    fn seeded_plans_mix_all_fault_kinds_within_the_horizon() {
        let plan = FaultPlan::seeded(7, 400);
        let deaths = plan.iter().filter(|(_, f)| *f == Fault::Die).count();
        let panics = plan.iter().filter(|(_, f)| *f == Fault::Panic).count();
        let delays = plan
            .iter()
            .filter(|(_, f)| matches!(f, Fault::Delay(_)))
            .count();
        let fails = plan.iter().filter(|(_, f)| *f == Fault::Fail).count();
        assert_eq!(deaths, 2, "exactly two worker deaths");
        assert!(panics > 0 && delays > 0 && fails > 0, "{plan:?}");
        assert!(plan.iter().all(|(seq, _)| seq < 400));
        assert_eq!(plan.len(), deaths + panics + delays + fails);
    }

    #[test]
    fn with_overrides_and_lookup_misses_are_none() {
        let plan = FaultPlan::new().with(5, Fault::Fail).with(5, Fault::Panic);
        assert_eq!(plan.fault_for(5), Some(Fault::Panic));
        assert_eq!(plan.fault_for(6), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn splitmix_spreads_consecutive_inputs() {
        // Not a statistical test — just a guard that the mixer is not the
        // identity and maps consecutive inputs far apart.
        let outs: Vec<u64> = (0..16).map(splitmix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        assert!(outs.windows(2).all(|w| w[0].abs_diff(w[1]) > 1 << 32));
    }
}
