//! Host package for the runnable examples in the repository-level `examples/`
//! directory. See the `[[example]]` targets in this package's `Cargo.toml`; run them
//! with, for instance, `cargo run -p moma-examples --example quickstart`.

#![forbid(unsafe_code)]
