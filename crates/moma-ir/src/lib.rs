//! Abstract-code intermediate representation for MoMA code generation.
//!
//! The paper (§4) implements multi-word modular arithmetic as a *rewrite system over
//! data types* inside the SPIRAL code generator: computations on wide integer types are
//! recursively rewritten into equivalent sequences over narrower types until every value
//! is a machine word. This crate provides the program representation that the rewrite
//! pass (in `moma-rewrite`) operates on:
//!
//! * [`Ty`] — integer data types of arbitrary bit-width plus a 1-bit flag type for
//!   carries, borrows, and comparison results;
//! * [`Op`] / [`Stmt`] / [`Kernel`] — straight-line assignments whose shapes mirror the
//!   left-hand sides of the paper's rewrite rules (Table 1): wide additions producing
//!   carries, widening multiplications, comparisons, conditional selects, multi-word
//!   shifts, and the high-level modular operations that seed the rewriting;
//! * [`validate`] — a type checker enforcing the width discipline of the rules;
//! * [`interp`] — a tree-walking interpreter for machine-level kernels (the semantic
//!   reference and correctness oracle) that also counts word-level operations for the
//!   cost model;
//! * [`compiled`] — a bytecode executor that register-allocates variables into dense
//!   slots at compile time; batch execution ([`compiled::CompiledKernel::run_batch`])
//!   reuses one scratch frame across elements and is the execution backend of the
//!   simulated GPU's hot path;
//! * [`emit`] — source emitters producing CUDA-like C (mirroring the paper's
//!   Listings 1–4) and Rust.
//!
//! # Example
//!
//! ```
//! use moma_ir::{KernelBuilder, Op, Operand, Ty};
//!
//! // c = (a + b) mod q, all 128-bit — the paper's Equation 30.
//! let mut kb = KernelBuilder::new("daddmod_128");
//! let a = kb.param("a", Ty::UInt(128));
//! let b = kb.param("b", Ty::UInt(128));
//! let q = kb.param("q", Ty::UInt(128));
//! let c = kb.output("c", Ty::UInt(128));
//! kb.push(vec![c], Op::AddMod { a: Operand::Var(a), b: Operand::Var(b), q: Operand::Var(q) });
//! let kernel = kb.build();
//! assert!(moma_ir::validate::validate(&kernel).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compiled;
pub mod cost;
pub mod emit;
pub mod interp;
mod kernel;
mod ty;
pub mod validate;

pub use cache::{KernelCache, KernelCacheKey};
pub use compiled::{BatchRunResult, CompiledKernel};
pub use kernel::{Kernel, KernelBuilder, Op, Operand, Stmt, Var, VarId};
pub use ty::Ty;
