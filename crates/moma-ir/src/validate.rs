//! Type and well-formedness checking for kernels.
//!
//! The validator enforces the width discipline that the paper's rules rely on: carries
//! are flags, the two destinations of a widening addition are `[flag, word]`, the
//! destinations of a widening multiplication are two words of the operand width, every
//! variable is assigned before it is used, and parameters are never re-assigned.

use crate::{Kernel, Op, Operand, Stmt, Ty, VarId};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A validation failure, with the index of the offending statement when applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Statement index in the kernel body (`None` for signature-level problems).
    pub stmt: Option<usize>,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(i) => write!(f, "statement {i}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for ValidateError {}

/// Validates a kernel.
///
/// # Errors
///
/// Returns a [`ValidateError`] describing the first problem found: ill-typed operation,
/// use of an undefined variable, re-assignment of a parameter, an output that is never
/// assigned, or a constant that cannot fit its use site.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    let mut defined: HashSet<VarId> = kernel.params.iter().copied().collect();
    let param_set: HashSet<VarId> = kernel.params.iter().copied().collect();

    for (i, stmt) in kernel.body.iter().enumerate() {
        check_stmt(kernel, stmt, i, &defined, &param_set)?;
        for d in &stmt.dsts {
            defined.insert(*d);
        }
    }

    for out in &kernel.outputs {
        if !defined.contains(out) {
            return Err(ValidateError {
                stmt: None,
                message: format!(
                    "output variable '{}' is never assigned",
                    kernel.var(*out).name
                ),
            });
        }
    }
    Ok(())
}

fn err(stmt: usize, message: impl Into<String>) -> ValidateError {
    ValidateError {
        stmt: Some(stmt),
        message: message.into(),
    }
}

fn check_stmt(
    kernel: &Kernel,
    stmt: &Stmt,
    idx: usize,
    defined: &HashSet<VarId>,
    params: &HashSet<VarId>,
) -> Result<(), ValidateError> {
    // Every operand variable must be defined.
    for op in stmt.op.operands() {
        if let Operand::Var(v) = op {
            if v.0 >= kernel.vars.len() {
                return Err(err(idx, format!("operand {v:?} out of range")));
            }
            if !defined.contains(&v) {
                return Err(err(
                    idx,
                    format!("use of undefined variable '{}'", kernel.var(v).name),
                ));
            }
        }
    }
    // Destinations must exist and must not be parameters.
    for d in &stmt.dsts {
        if d.0 >= kernel.vars.len() {
            return Err(err(idx, format!("destination {d:?} out of range")));
        }
        if params.contains(d) {
            return Err(err(
                idx,
                format!("parameter '{}' cannot be assigned", kernel.var(*d).name),
            ));
        }
    }

    let dst_ty = |n: usize| kernel.ty(stmt.dsts[n]);
    let word_of = |o: Operand| -> Option<u32> {
        match o {
            Operand::Var(v) => match kernel.ty(v) {
                Ty::UInt(w) => Some(w),
                Ty::Flag => None,
            },
            Operand::Const(_) => None, // constants adapt to context
        }
    };
    // The width of a word operation: widths of all word operands must agree; constants
    // and flags are flexible.
    let op_width = |ops: &[Operand]| -> Result<Option<u32>, ValidateError> {
        let mut width = None;
        for &o in ops {
            if let Some(w) = word_of(o) {
                match width {
                    None => width = Some(w),
                    Some(prev) if prev != w => {
                        return Err(err(idx, format!("operand width mismatch: {prev} vs {w}")))
                    }
                    _ => {}
                }
            }
        }
        Ok(width)
    };
    let expect_dsts = |n: usize| -> Result<(), ValidateError> {
        if stmt.dsts.len() != n {
            Err(err(
                idx,
                format!(
                    "{} expects {n} destination(s), got {}",
                    stmt.op.mnemonic(),
                    stmt.dsts.len()
                ),
            ))
        } else {
            Ok(())
        }
    };
    let expect_flag_operand = |o: Operand| -> Result<(), ValidateError> {
        match o {
            Operand::Var(v) if kernel.ty(v) != Ty::Flag => Err(err(
                idx,
                format!(
                    "expected a flag, got '{}': {}",
                    kernel.var(v).name,
                    kernel.ty(v)
                ),
            )),
            Operand::Const(c) if c > 1 => {
                Err(err(idx, format!("flag constant must be 0 or 1, got {c}")))
            }
            _ => Ok(()),
        }
    };

    match &stmt.op {
        Op::Copy { src } => {
            expect_dsts(1)?;
            // A flag may be copied into a word; a word copy must not narrow.
            if let (Some(sw), Ty::UInt(dw)) = (word_of(*src), dst_ty(0)) {
                if sw > dw {
                    return Err(err(idx, format!("copy narrows {sw} bits into {dw}")));
                }
            }
        }
        Op::AddWide { a, b, carry_in } => {
            expect_dsts(2)?;
            if dst_ty(0) != Ty::Flag {
                return Err(err(idx, "first destination of add must be the carry flag"));
            }
            let w = op_width(&[*a, *b])?;
            if let (Some(w), Ty::UInt(dw)) = (w, dst_ty(1)) {
                if w != dw {
                    return Err(err(idx, format!("sum width {dw} != operand width {w}")));
                }
            }
            if let Some(c) = carry_in {
                expect_flag_operand(*c)?;
            }
        }
        Op::Sub { a, b, borrow_in } => {
            expect_dsts(1)?;
            let w = op_width(&[*a, *b])?;
            if let (Some(w), Ty::UInt(dw)) = (w, dst_ty(0)) {
                if w != dw {
                    return Err(err(
                        idx,
                        format!("difference width {dw} != operand width {w}"),
                    ));
                }
            }
            if let Some(bi) = borrow_in {
                expect_flag_operand(*bi)?;
            }
        }
        Op::MulWide { a, b } => {
            expect_dsts(2)?;
            let w = op_width(&[*a, *b])?;
            for n in 0..2 {
                if let (Some(w), Ty::UInt(dw)) = (w, dst_ty(n)) {
                    if w != dw {
                        return Err(err(
                            idx,
                            format!("product half width {dw} != operand width {w}"),
                        ));
                    }
                }
            }
        }
        Op::MulLow { a, b } => {
            expect_dsts(1)?;
            op_width(&[*a, *b, Operand::Var(stmt.dsts[0])])?;
        }
        Op::Lt { a, b } | Op::Eq { a, b } => {
            expect_dsts(1)?;
            if dst_ty(0) != Ty::Flag {
                return Err(err(idx, "comparison destination must be a flag"));
            }
            op_width(&[*a, *b])?;
        }
        Op::BoolAnd { a, b } | Op::BoolOr { a, b } => {
            expect_dsts(1)?;
            if dst_ty(0) != Ty::Flag {
                return Err(err(idx, "boolean destination must be a flag"));
            }
            expect_flag_operand(*a)?;
            expect_flag_operand(*b)?;
        }
        Op::Select {
            cond,
            if_true,
            if_false,
        } => {
            expect_dsts(1)?;
            expect_flag_operand(*cond)?;
            if dst_ty(0) != Ty::Flag {
                op_width(&[*if_true, *if_false, Operand::Var(stmt.dsts[0])])?;
            }
        }
        Op::ShrMulti { words, shift } => {
            if stmt.dsts.is_empty() {
                return Err(err(idx, "shift needs at least one destination"));
            }
            let w = op_width(words)?;
            if let Some(w) = w {
                let total = w * words.len() as u32;
                if *shift >= total {
                    return Err(err(
                        idx,
                        format!("shift amount {shift} >= total width {total}"),
                    ));
                }
                for d in &stmt.dsts {
                    if kernel.ty(*d) != Ty::UInt(w) {
                        return Err(err(
                            idx,
                            "shift destinations must have the source word width",
                        ));
                    }
                }
            }
        }
        Op::AddMod { a, b, q } | Op::SubMod { a, b, q } => {
            expect_dsts(1)?;
            op_width(&[*a, *b, *q, Operand::Var(stmt.dsts[0])])?;
        }
        Op::MulModBarrett { a, b, q, mu, mbits } => {
            expect_dsts(1)?;
            let w = op_width(&[*a, *b, *q, *mu, Operand::Var(stmt.dsts[0])])?;
            if let Some(w) = w {
                if *mbits + 4 > w {
                    return Err(err(
                        idx,
                        format!("Barrett modulus bit-width {mbits} too large for {w}-bit operands"),
                    ));
                }
            }
        }
        Op::MulAddMod {
            a,
            b,
            c,
            q,
            mu,
            mbits,
        } => {
            expect_dsts(1)?;
            let w = op_width(&[*a, *b, *c, *q, *mu, Operand::Var(stmt.dsts[0])])?;
            if let Some(w) = w {
                if *mbits + 4 > w {
                    return Err(err(
                        idx,
                        format!("Barrett modulus bit-width {mbits} too large for {w}-bit operands"),
                    ));
                }
            }
        }
        Op::MacReduceMod {
            pairs,
            q,
            mu,
            mbits,
            radix,
            recip,
        } => {
            expect_dsts(1)?;
            if pairs.is_empty() {
                return Err(err(idx, "accumulation needs at least one product term"));
            }
            // The reduction constants are re-derived from the modulus, exactly as
            // `SingleBarrett::new` computes them, so a fused kernel can never
            // carry constants that disagree with `q` — the division-free compiled
            // reduction is only exact under these identities.
            if *q < 2 {
                return Err(err(idx, "accumulation modulus must be at least 2"));
            }
            let true_mbits = 64 - q.leading_zeros();
            if *mbits != true_mbits || true_mbits > 60 {
                return Err(err(
                    idx,
                    format!("modulus bit-width must be {true_mbits} (≤ 60), got {mbits}"),
                ));
            }
            let want_mu = ((1u128 << (2 * true_mbits + 3)) / *q as u128) as u64;
            let want_radix = ((1u128 << 64) % *q as u128) as u64;
            let want_recip = ((1u128 << 64) / *q as u128) as u64;
            if *mu != want_mu || *radix != want_radix || *recip != want_recip {
                return Err(err(
                    idx,
                    format!("reduction constants inconsistent with modulus {q}"),
                ));
            }
            // Static overflow bound: the 128-bit accumulator must hold the worst
            // case of Σᵢ aᵢ·bᵢ, bounding each operand by its literal value or by
            // its declared width. Fusion bails out when this cannot be shown, so
            // a validated accumulation is always exact.
            let bound = |o: Operand| -> Result<u128, ValidateError> {
                match o {
                    Operand::Const(v) => Ok(v as u128),
                    Operand::Var(v) => match kernel.ty(v) {
                        Ty::UInt(w) => Ok(if w >= 128 {
                            u128::MAX
                        } else {
                            (1u128 << w) - 1
                        }),
                        Ty::Flag => Err(err(idx, "accumulation terms must be words")),
                    },
                }
            };
            let mut worst: u128 = 0;
            for (a, b) in pairs {
                let term = bound(*a)?.checked_mul(bound(*b)?);
                worst = match term.and_then(|t| worst.checked_add(t)) {
                    Some(w) => w,
                    None => {
                        return Err(err(
                            idx,
                            "sum of products can overflow the 128-bit accumulator",
                        ))
                    }
                };
            }
            match dst_ty(0) {
                Ty::UInt(dw) if dw >= true_mbits => {}
                Ty::UInt(dw) => {
                    return Err(err(
                        idx,
                        format!(
                            "destination width {dw} cannot hold a residue of {true_mbits} bits"
                        ),
                    ))
                }
                Ty::Flag => return Err(err(idx, "accumulation destination must be a word")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    #[test]
    fn accepts_well_typed_kernel() {
        let mut kb = KernelBuilder::new("ok");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.local("carry", Ty::Flag);
        let s = kb.output("s", Ty::UInt(64));
        kb.push(
            vec![carry, s],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        assert!(validate(&kb.build()).is_ok());
    }

    #[test]
    fn rejects_use_before_definition() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.param("a", Ty::UInt(64));
        let t = kb.local("t", Ty::UInt(64));
        let out = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MulLow {
                a: a.into(),
                b: t.into(),
            },
        );
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("undefined variable"));
    }

    #[test]
    fn rejects_unassigned_output() {
        let mut kb = KernelBuilder::new("bad");
        let _a = kb.param("a", Ty::UInt(64));
        let _o = kb.output("o", Ty::UInt(64));
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("never assigned"));
    }

    #[test]
    fn rejects_parameter_assignment() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.param("a", Ty::UInt(64));
        kb.push(
            vec![a],
            Op::Copy {
                src: Operand::Const(0),
            },
        );
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("cannot be assigned"));
    }

    #[test]
    fn rejects_width_mismatch() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(128));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![o],
            Op::MulLow {
                a: a.into(),
                b: b.into(),
            },
        );
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("width mismatch"));
    }

    #[test]
    fn rejects_non_flag_carry_destination() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.param("a", Ty::UInt(64));
        let c = kb.local("c", Ty::UInt(64));
        let s = kb.output("s", Ty::UInt(64));
        kb.push(
            vec![c, s],
            Op::AddWide {
                a: a.into(),
                b: Operand::Const(1),
                carry_in: None,
            },
        );
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("carry"));
    }

    #[test]
    fn rejects_oversized_shift() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![o],
            Op::ShrMulti {
                words: vec![a.into(), b.into()],
                shift: 128,
            },
        );
        let e = validate(&kb.build()).unwrap_err();
        assert!(e.to_string().contains("shift amount"));
    }
}
