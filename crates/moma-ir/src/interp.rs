//! An interpreter for machine-level kernels.
//!
//! Once the rewrite system has lowered a kernel so that every variable fits in at most
//! 64 bits, the kernel can be executed directly on word values. The interpreter is the
//! execution backend of the simulated GPU (each virtual CUDA thread interprets the
//! kernel on its element) and the correctness oracle used by the rewrite-system tests.
//! It also counts the word-level operations actually executed, which feeds the
//! analytical GPU cost model.

use crate::cost::OpCounts;
use crate::{Kernel, Op, Operand, VarId};
use std::error::Error;
use std::fmt;

/// Failure while interpreting a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A variable was wider than 64 bits — the kernel has not been fully lowered.
    UnsupportedWidth {
        /// The variable name.
        var: String,
        /// Its bit-width.
        bits: u32,
    },
    /// A variable was read before being assigned.
    UseBeforeDef {
        /// The variable name.
        var: String,
    },
    /// The number of supplied inputs does not match the kernel's parameter count.
    ArgumentCount {
        /// Parameters expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An input value does not fit the parameter's declared width.
    InputTooWide {
        /// The parameter name.
        var: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnsupportedWidth { var, bits } => {
                write!(
                    f,
                    "variable '{var}' has {bits} bits; lower the kernel to machine words first"
                )
            }
            InterpError::UseBeforeDef { var } => {
                write!(f, "variable '{var}' read before assignment")
            }
            InterpError::ArgumentCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            InterpError::InputTooWide { var } => {
                write!(
                    f,
                    "input for parameter '{var}' does not fit its declared width"
                )
            }
        }
    }
}

impl Error for InterpError {}

/// Result of one interpretation: output values (in output order) and executed operation
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Output values, one per kernel output, in declaration order.
    pub outputs: Vec<u64>,
    /// Word-level operations executed.
    pub counts: OpCounts,
}

/// Interprets `kernel` on the given parameter values (one `u64` per parameter, in
/// declaration order).
///
/// # Errors
///
/// Returns an [`InterpError`] if the kernel is not fully lowered (any variable wider
/// than 64 bits), if the input count is wrong, or if a value is read before being
/// written.
///
/// # Example
///
/// ```
/// use moma_ir::{interp, KernelBuilder, Op, Ty};
///
/// let mut kb = KernelBuilder::new("addmod64");
/// let a = kb.param("a", Ty::UInt(64));
/// let b = kb.param("b", Ty::UInt(64));
/// let q = kb.param("q", Ty::UInt(64));
/// let c = kb.output("c", Ty::UInt(64));
/// kb.push(vec![c], Op::AddMod { a: a.into(), b: b.into(), q: q.into() });
/// let result = interp::run(&kb.build(), &[90, 80, 100]).unwrap();
/// assert_eq!(result.outputs, vec![70]);
/// ```
pub fn run(kernel: &Kernel, inputs: &[u64]) -> Result<RunResult, InterpError> {
    if inputs.len() != kernel.params.len() {
        return Err(InterpError::ArgumentCount {
            expected: kernel.params.len(),
            got: inputs.len(),
        });
    }
    for v in &kernel.vars {
        if v.ty.bits() > 64 {
            return Err(InterpError::UnsupportedWidth {
                var: v.name.clone(),
                bits: v.ty.bits(),
            });
        }
    }

    let mut values: Vec<Option<u128>> = vec![None; kernel.vars.len()];
    for (p, &input) in kernel.params.iter().zip(inputs) {
        let bits = kernel.ty(*p).bits();
        if bits < 64 && input >> bits != 0 {
            return Err(InterpError::InputTooWide {
                var: kernel.var(*p).name.clone(),
            });
        }
        values[p.0] = Some(input as u128);
    }

    let mut counts = OpCounts::new();
    for stmt in &kernel.body {
        exec_stmt(kernel, stmt, &mut values, &mut counts)?;
    }

    let mut outputs = Vec::with_capacity(kernel.outputs.len());
    for o in &kernel.outputs {
        let v = values[o.0].ok_or_else(|| InterpError::UseBeforeDef {
            var: kernel.var(*o).name.clone(),
        })?;
        outputs.push(v as u64);
    }
    Ok(RunResult { outputs, counts })
}

fn mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

fn exec_stmt(
    kernel: &Kernel,
    stmt: &crate::Stmt,
    values: &mut [Option<u128>],
    counts: &mut OpCounts,
) -> Result<(), InterpError> {
    let read = |o: Operand, values: &[Option<u128>]| -> Result<u128, InterpError> {
        match o {
            Operand::Const(c) => Ok(c as u128),
            Operand::Var(v) => values[v.0].ok_or_else(|| InterpError::UseBeforeDef {
                var: kernel.var(v).name.clone(),
            }),
        }
    };
    let width_of_dst = |d: VarId| kernel.ty(d).bits();
    let write = |d: VarId, v: u128, values: &mut [Option<u128>]| {
        let bits = width_of_dst(d);
        values[d.0] = Some(v & mask(bits));
    };

    counts.record(&stmt.op);
    match &stmt.op {
        Op::Copy { src } => {
            let v = read(*src, values)?;
            write(stmt.dsts[0], v, values);
        }
        Op::AddWide { a, b, carry_in } => {
            let w = width_of_dst(stmt.dsts[1]);
            let cin = match carry_in {
                Some(c) => read(*c, values)?,
                None => 0,
            };
            let sum = read(*a, values)? + read(*b, values)? + cin;
            write(stmt.dsts[0], sum >> w, values);
            write(stmt.dsts[1], sum, values);
        }
        Op::Sub { a, b, borrow_in } => {
            let w = width_of_dst(stmt.dsts[0]);
            let bin = match borrow_in {
                Some(c) => read(*c, values)?,
                None => 0,
            };
            let diff = read(*a, values)?
                .wrapping_sub(read(*b, values)?)
                .wrapping_sub(bin);
            write(stmt.dsts[0], diff & mask(w), values);
        }
        Op::MulWide { a, b } => {
            let w = width_of_dst(stmt.dsts[1]);
            let p = read(*a, values)? * read(*b, values)?;
            write(stmt.dsts[0], p >> w, values);
            write(stmt.dsts[1], p, values);
        }
        Op::MulLow { a, b } => {
            let p = read(*a, values)?.wrapping_mul(read(*b, values)?);
            write(stmt.dsts[0], p, values);
        }
        Op::Lt { a, b } => {
            let v = (read(*a, values)? < read(*b, values)?) as u128;
            write(stmt.dsts[0], v, values);
        }
        Op::Eq { a, b } => {
            let v = (read(*a, values)? == read(*b, values)?) as u128;
            write(stmt.dsts[0], v, values);
        }
        Op::BoolAnd { a, b } => {
            let v = ((read(*a, values)? != 0) && (read(*b, values)? != 0)) as u128;
            write(stmt.dsts[0], v, values);
        }
        Op::BoolOr { a, b } => {
            let v = ((read(*a, values)? != 0) || (read(*b, values)? != 0)) as u128;
            write(stmt.dsts[0], v, values);
        }
        Op::Select {
            cond,
            if_true,
            if_false,
        } => {
            let v = if read(*cond, values)? != 0 {
                read(*if_true, values)?
            } else {
                read(*if_false, values)?
            };
            write(stmt.dsts[0], v, values);
        }
        Op::ShrMulti { words, shift } => {
            // Words are most significant first; assemble, shift, split back.
            let word_bits = words
                .iter()
                .find_map(|o| o.as_var().map(|v| kernel.ty(v).bits()))
                .unwrap_or(64);
            // Total width can be up to 4 * 64 = 256 bits, so shift limb-wise over u64s.
            let src: Vec<u64> = {
                let mut v = Vec::with_capacity(words.len());
                for w in words {
                    v.push(read(*w, values)? as u64);
                }
                v
            };
            let n = src.len();
            let get_bit = |i: u32| -> u64 {
                // Bit index counted from the least significant end of the concatenation.
                let word = n as u32 - 1 - i / word_bits;
                (src[word as usize] >> (i % word_bits)) & 1
            };
            let total_bits = word_bits * n as u32;
            for (k, dst) in stmt.dsts.iter().rev().enumerate() {
                // dst[last] is the least significant output word.
                let mut v: u128 = 0;
                for bit in 0..word_bits {
                    let src_bit = shift + k as u32 * word_bits + bit;
                    if src_bit < total_bits {
                        v |= (get_bit(src_bit) as u128) << bit;
                    }
                }
                write(*dst, v, values);
            }
        }
        Op::AddMod { a, b, q } => {
            let q = read(*q, values)?;
            let v = (read(*a, values)? + read(*b, values)?) % q;
            write(stmt.dsts[0], v, values);
        }
        Op::SubMod { a, b, q } => {
            let q = read(*q, values)?;
            let a = read(*a, values)?;
            let b = read(*b, values)?;
            let v = if a < b { a + q - b } else { a - b };
            write(stmt.dsts[0], v, values);
        }
        Op::MulModBarrett { a, b, q, .. } => {
            let q = read(*q, values)?;
            let v = (read(*a, values)? * read(*b, values)?) % q;
            write(stmt.dsts[0], v, values);
        }
        Op::MulAddMod { a, b, c, q, .. } => {
            let q = read(*q, values)?;
            // Word-sized operands: a·b < 2^128 − 2^65 + 1, so adding a third word
            // can never overflow the u128 intermediate.
            let v = (read(*a, values)? * read(*b, values)? + read(*c, values)?) % q;
            write(stmt.dsts[0], v, values);
        }
        Op::MacReduceMod { pairs, q, .. } => {
            // Exact accumulation, one reduction at the end. The validator bounds
            // Σᵢ aᵢ·bᵢ by the operand widths, so the u128 sum cannot wrap.
            let mut acc: u128 = 0;
            for (a, b) in pairs {
                acc += read(*a, values)? * read(*b, values)?;
            }
            write(stmt.dsts[0], acc % *q as u128, values);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Ty};

    fn add_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("add64");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.output("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        kb.build()
    }

    #[test]
    fn add_with_carry() {
        let k = add_kernel();
        let r = run(&k, &[u64::MAX, 1]).unwrap();
        assert_eq!(r.outputs, vec![1, 0]); // carry = 1, sum = 0
        let r = run(&k, &[2, 3]).unwrap();
        assert_eq!(r.outputs, vec![0, 5]);
        assert_eq!(r.counts.total(), 1);
    }

    #[test]
    fn mulwide_and_mullow() {
        let mut kb = KernelBuilder::new("mul");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let hi = kb.output("hi", Ty::UInt(64));
        let lo = kb.output("lo", Ty::UInt(64));
        let low_only = kb.output("low_only", Ty::UInt(64));
        kb.push(
            vec![hi, lo],
            Op::MulWide {
                a: a.into(),
                b: b.into(),
            },
        );
        kb.push(
            vec![low_only],
            Op::MulLow {
                a: a.into(),
                b: b.into(),
            },
        );
        let k = kb.build();
        let r = run(&k, &[u64::MAX, u64::MAX]).unwrap();
        let p = u64::MAX as u128 * u64::MAX as u128;
        assert_eq!(r.outputs, vec![(p >> 64) as u64, p as u64, p as u64]);
    }

    #[test]
    fn select_and_comparisons() {
        let mut kb = KernelBuilder::new("sel");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let lt = kb.local("lt", Ty::Flag);
        let min = kb.output("min", Ty::UInt(64));
        kb.push(
            vec![lt],
            Op::Lt {
                a: a.into(),
                b: b.into(),
            },
        );
        kb.push(
            vec![min],
            Op::Select {
                cond: lt.into(),
                if_true: a.into(),
                if_false: b.into(),
            },
        );
        let k = kb.build();
        assert_eq!(run(&k, &[3, 9]).unwrap().outputs, vec![3]);
        assert_eq!(run(&k, &[9, 3]).unwrap().outputs, vec![3]);
        assert_eq!(run(&k, &[4, 4]).unwrap().outputs, vec![4]);
    }

    #[test]
    fn shr_multi_matches_u128_shift() {
        // Two 64-bit words shifted right by 100 bits, keep both output words.
        let mut kb = KernelBuilder::new("shr");
        let hi = kb.param("hi", Ty::UInt(64));
        let lo = kb.param("lo", Ty::UInt(64));
        let out_hi = kb.output("out_hi", Ty::UInt(64));
        let out_lo = kb.output("out_lo", Ty::UInt(64));
        kb.push(
            vec![out_hi, out_lo],
            Op::ShrMulti {
                words: vec![hi.into(), lo.into()],
                shift: 100,
            },
        );
        let k = kb.build();
        let (h, l) = (0x1234_5678_9abc_def0u64, 0x0fed_cba9_8765_4321u64);
        let full = (h as u128) << 64 | l as u128;
        let shifted = full >> 100;
        let r = run(&k, &[h, l]).unwrap();
        assert_eq!(r.outputs, vec![(shifted >> 64) as u64, shifted as u64]);
    }

    #[test]
    fn high_level_ops_at_word_width() {
        let mut kb = KernelBuilder::new("modops");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let q = kb.param("q", Ty::UInt(64));
        let s = kb.output("s", Ty::UInt(64));
        let d = kb.output("d", Ty::UInt(64));
        let p = kb.output("p", Ty::UInt(64));
        kb.push(
            vec![s],
            Op::AddMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![d],
            Op::SubMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![p],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: q.into(),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        let k = kb.build();
        let r = run(&k, &[90, 95, 101]).unwrap();
        assert_eq!(r.outputs, vec![84, 96, (90 * 95) % 101]);
    }

    #[test]
    fn error_cases() {
        let k = add_kernel();
        assert!(matches!(
            run(&k, &[1]),
            Err(InterpError::ArgumentCount {
                expected: 2,
                got: 1
            })
        ));
        let mut kb = KernelBuilder::new("wide");
        let a = kb.param("a", Ty::UInt(128));
        let o = kb.output("o", Ty::UInt(128));
        kb.push(vec![o], Op::Copy { src: a.into() });
        assert!(matches!(
            run(&kb.build(), &[1, 2]),
            Err(InterpError::ArgumentCount { .. }) | Err(InterpError::UnsupportedWidth { .. })
        ));
    }

    #[test]
    fn narrow_inputs_are_range_checked() {
        let mut kb = KernelBuilder::new("narrow");
        let a = kb.param("a", Ty::UInt(8));
        let o = kb.output("o", Ty::UInt(8));
        kb.push(vec![o], Op::Copy { src: a.into() });
        let k = kb.build();
        assert_eq!(run(&k, &[200]).unwrap().outputs, vec![200]);
        assert!(matches!(
            run(&k, &[300]),
            Err(InterpError::InputTooWide { .. })
        ));
    }
}
