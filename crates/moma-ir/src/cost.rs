//! Operation counting for lowered kernels.
//!
//! The analytical GPU cost model (in `moma-gpu`) consumes per-thread word-level
//! operation counts. They can be obtained either statically ([`static_counts`], one
//! count per statement — exact for straight-line kernels) or dynamically from the
//! interpreter, which records every executed operation in an [`OpCounts`].

use crate::{Kernel, Op};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Add;

/// A multiset of executed (or statically counted) operations, keyed by mnemonic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: BTreeMap<&'static str, u64>,
}

impl OpCounts {
    /// An empty count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `op`.
    ///
    /// The accumulation loop is the one op whose work scales with its payload, so
    /// it is counted per product term ("macreduce" × the number of pairs) plus one
    /// "reducewide" for the closing reduction — a flat per-statement count would
    /// make a 17-term loop look as cheap as a 1-term one.
    pub fn record(&mut self, op: &Op) {
        if let Op::MacReduceMod { pairs, .. } = op {
            self.add_mnemonic("macreduce", pairs.len() as u64);
            self.add_mnemonic("reducewide", 1);
            return;
        }
        *self.counts.entry(op.mnemonic()).or_insert(0) += 1;
    }

    /// The count for a given mnemonic (see [`Op::mnemonic`]).
    pub fn get(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Adds `count` occurrences of a mnemonic directly, without constructing an
    /// [`Op`]. This is how callers build *synthetic* per-element counts — e.g. a
    /// planned runtime-library path whose operation mix is known analytically
    /// rather than recorded from generated code — for the cost model to weigh.
    pub fn add_mnemonic(&mut self, mnemonic: &'static str, count: u64) {
        if count > 0 {
            *self.counts.entry(mnemonic).or_insert(0) += count;
        }
    }

    /// Total number of operations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of word multiplications (widening plus low-half).
    pub fn multiplications(&self) -> u64 {
        self.get("mulwide") + self.get("mullow")
    }

    /// Number of word additions and subtractions.
    pub fn add_sub(&self) -> u64 {
        self.get("add") + self.get("sub")
    }

    /// Number of comparisons, boolean combinations, and selects (the "cheap" ALU ops).
    pub fn logic(&self) -> u64 {
        self.get("lt") + self.get("eq") + self.get("and") + self.get("or") + self.get("select")
    }

    /// Number of multi-word shift statements.
    pub fn shifts(&self) -> u64 {
        self.get("shr")
    }

    /// Iterates over `(mnemonic, count)` pairs in alphabetical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Scales every count by `factor` (e.g. ops per butterfly × number of butterflies).
    pub fn scaled(&self, factor: u64) -> OpCounts {
        OpCounts {
            counts: self.counts.iter().map(|(k, v)| (*k, v * factor)).collect(),
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        let mut counts = self.counts;
        for (k, v) in rhs.counts {
            *counts.entry(k).or_insert(0) += v;
        }
        OpCounts { counts }
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.counts {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Counts the statements of a kernel by mnemonic (exact execution counts for the
/// straight-line kernels the rewrite system produces).
pub fn static_counts(kernel: &Kernel) -> OpCounts {
    let mut counts = OpCounts::new();
    for stmt in &kernel.body {
        counts.record(&stmt.op);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Operand, Ty};

    #[test]
    fn counting_and_categories() {
        let mut kb = KernelBuilder::new("k");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let hi = kb.local("hi", Ty::UInt(64));
        let lo = kb.local("lo", Ty::UInt(64));
        let f = kb.local("f", Ty::Flag);
        let o = kb.output("o", Ty::UInt(64));
        kb.push(
            vec![hi, lo],
            Op::MulWide {
                a: a.into(),
                b: b.into(),
            },
        );
        kb.push(
            vec![f],
            Op::Lt {
                a: hi.into(),
                b: lo.into(),
            },
        );
        kb.push(
            vec![o],
            Op::Select {
                cond: f.into(),
                if_true: hi.into(),
                if_false: lo.into(),
            },
        );
        let counts = static_counts(&kb.build());
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.multiplications(), 1);
        assert_eq!(counts.logic(), 2);
        assert_eq!(counts.add_sub(), 0);
        assert_eq!(counts.get("mulwide"), 1);
        assert_eq!(counts.get("nonexistent"), 0);
    }

    #[test]
    fn scaling_and_addition() {
        let mut a = OpCounts::new();
        a.record(&Op::MulLow {
            a: Operand::Const(1),
            b: Operand::Const(2),
        });
        let b = a.scaled(10);
        assert_eq!(b.get("mullow"), 10);
        let c = a.clone() + b;
        assert_eq!(c.get("mullow"), 11);
        assert_eq!(c.total(), 11);
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(OpCounts::new().to_string(), "(empty)");
        let mut a = OpCounts::new();
        a.record(&Op::Copy {
            src: Operand::Const(0),
        });
        assert!(a.to_string().contains("copy: 1"));
    }
}
