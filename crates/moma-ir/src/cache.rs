//! A hit-counted cache for compiled kernels, keyed by what they were
//! specialized for.
//!
//! The paper's whole discipline is *compile once, execute many*: a kernel is
//! generated per (operation, bit-width) — and, for the residue engines, per
//! modulus, since the modulus, its Barrett constant, and the cross-basis tables
//! are baked into the generated code as constants. [`KernelCache`] is the shared
//! piece of that discipline: callers describe a kernel by its [`KernelCacheKey`]
//! and supply a builder closure; the cache compiles on the first request and
//! hands back the same [`CompiledKernel`] (behind an [`Arc`]) on every request
//! after. Hit and miss counters are exposed so tests — and sessions — can
//! *assert* reuse rather than hope for it.

use crate::compiled::CompiledKernel;
use crate::interp::InterpError;
use crate::Kernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Identity of one specialized generated kernel.
///
/// * `op` — the operation mnemonic (e.g. `"modmul"`, `"baseconv_mac"`); kernels
///   generated with different lowering options should encode them here
///   (`"butterfly_karatsuba"`).
/// * `width` — the operand bit-width the kernel was generated for.
/// * `modulus` — the modulus baked into the kernel as a constant, or `0` for
///   kernels that take the modulus as a runtime parameter. Together with `op`
///   this is the "modulus class": two kernels with the same op and width but
///   different baked-in moduli are different machine code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelCacheKey {
    /// Operation mnemonic (including any lowering-option suffix).
    pub op: String,
    /// Operand bit-width.
    pub width: u32,
    /// Baked-in modulus (`0` when the modulus is a runtime parameter).
    pub modulus: u64,
}

impl KernelCacheKey {
    /// Builds a key from its three components.
    pub fn new(op: impl Into<String>, width: u32, modulus: u64) -> Self {
        KernelCacheKey {
            op: op.into(),
            width,
            modulus,
        }
    }
}

/// A thread-safe, hit-counted map from [`KernelCacheKey`] to compiled kernels.
///
/// # Example
///
/// ```
/// use moma_ir::cache::{KernelCache, KernelCacheKey};
/// use moma_ir::{KernelBuilder, Op, Operand, Ty};
///
/// let cache = KernelCache::default();
/// let build = || {
///     let mut kb = KernelBuilder::new("modmul");
///     let a = kb.param("a", Ty::UInt(64));
///     let b = kb.param("b", Ty::UInt(64));
///     let out = kb.output("out", Ty::UInt(64));
///     kb.push(vec![out], Op::MulModBarrett {
///         a: a.into(), b: b.into(),
///         q: Operand::Const(2147483647), mu: Operand::Const(0), mbits: 31,
///     });
///     kb.build()
/// };
/// let key = KernelCacheKey::new("modmul", 64, 2147483647);
/// let first = cache.get_or_compile(key.clone(), build).unwrap();
/// let second = cache.get_or_compile(key, build).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<KernelCacheKey, Arc<CompiledKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl KernelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the map, recovering the guard if a previous holder panicked: the
    /// map only ever holds fully compiled kernels (a failed compile caches
    /// nothing), so the data behind a poisoned lock is always valid, and a
    /// panicked caller must not wedge a long-lived serving session.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<KernelCacheKey, Arc<CompiledKernel>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached compiled kernel for `key`, building and compiling it
    /// with `build` on the first request.
    ///
    /// The builder runs under the cache lock, so concurrent requests for the
    /// same key compile exactly once.
    ///
    /// # Errors
    ///
    /// Returns the compile error if the built kernel does not compile (nothing
    /// is cached in that case).
    pub fn get_or_compile(
        &self,
        key: KernelCacheKey,
        build: impl FnOnce() -> Kernel,
    ) -> Result<Arc<CompiledKernel>, InterpError> {
        let mut map = self.lock_map();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(CompiledKernel::compile(&build())?);
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct kernels currently cached.
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// Returns `true` if no kernel has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Op, Operand, Ty};

    fn modmul_kernel(q: u64) -> Kernel {
        let mut kb = KernelBuilder::new(format!("modmul_{q:x}"));
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        kb.push(
            vec![out],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: Operand::Const(q),
                mu: Operand::Const(0),
                mbits: 31,
            },
        );
        kb.build()
    }

    #[test]
    fn second_request_is_a_hit_and_shares_the_kernel() {
        let cache = KernelCache::new();
        let key = KernelCacheKey::new("modmul", 64, 97);
        let first = cache
            .get_or_compile(key.clone(), || modmul_kernel(97))
            .unwrap();
        let second = cache
            .get_or_compile(key, || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_moduli_are_distinct_kernels() {
        let cache = KernelCache::new();
        for q in [97u64, 101, 97] {
            cache
                .get_or_compile(KernelCacheKey::new("modmul", 64, q), || modmul_kernel(q))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert!(!cache.is_empty());
    }
}
