//! Kernels: straight-line sequences of typed assignments.

use crate::Ty;
use std::fmt;

/// Identifier of a variable inside one [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// A named, typed variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Var {
    /// Human-readable name (used by the emitters).
    pub name: String,
    /// Data type.
    pub ty: Ty,
}

/// An operand of an operation: either a variable or a small literal constant.
///
/// Large constants never appear in kernels — moduli and Barrett constants are kernel
/// *parameters* — so a `u64` literal (zero, one, shift amounts…) is sufficient. A
/// constant may be used wherever a word or flag is expected as long as the value fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A variable reference.
    Var(VarId),
    /// A literal constant.
    Const(u64),
}

impl Operand {
    /// The constant zero.
    pub const ZERO: Operand = Operand::Const(0);

    /// Returns the variable id if the operand is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }

    /// Returns `true` if the operand is the literal constant `c`.
    pub fn is_const(&self, c: u64) -> bool {
        matches!(self, Operand::Const(v) if *v == c)
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

/// An operation. Shapes mirror the left-hand sides of the paper's rewrite rules
/// (Table 1): multi-destination assignments carry their extra outputs (carry bits,
/// product high halves) explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst = src` — a move between equal-width values (or a flag into a word).
    Copy {
        /// Source operand.
        src: Operand,
    },
    /// `[carry, sum] = a + b (+ carry_in)` — destinations are `[Flag, UInt(w)]`
    /// (rules (22), (23), (29)).
    AddWide {
        /// First addend.
        a: Operand,
        /// Second addend.
        b: Operand,
        /// Optional incoming carry (a flag).
        carry_in: Option<Operand>,
    },
    /// `dst = a − b (− borrow_in)`, wrapping at the operand width (rule (25)).
    Sub {
        /// Minuend.
        a: Operand,
        /// Subtrahend.
        b: Operand,
        /// Optional incoming borrow (a flag).
        borrow_in: Option<Operand>,
    },
    /// `[hi, lo] = a · b` — the full double-width product (rule (28)).
    MulWide {
        /// First factor.
        a: Operand,
        /// Second factor.
        b: Operand,
    },
    /// `dst = (a · b) mod 2^w` — only the low half of the product (the paper's
    /// Listing 4 optimization where the discarded high half of `r·q` is never computed).
    MulLow {
        /// First factor.
        a: Operand,
        /// Second factor.
        b: Operand,
    },
    /// `flag = a < b` (rule (26) left-hand side).
    Lt {
        /// Left comparand.
        a: Operand,
        /// Right comparand.
        b: Operand,
    },
    /// `flag = (a =? b)` (rule (27) left-hand side).
    Eq {
        /// Left comparand.
        a: Operand,
        /// Right comparand.
        b: Operand,
    },
    /// `flag = a ∧ b` on flags.
    BoolAnd {
        /// Left flag.
        a: Operand,
        /// Right flag.
        b: Operand,
    },
    /// `flag = a ∨ b` on flags.
    BoolOr {
        /// Left flag.
        a: Operand,
        /// Right flag.
        b: Operand,
    },
    /// `dst = cond ? if_true : if_false` — the conditional assignment ending rules
    /// (24) and the modular subtraction.
    Select {
        /// Condition flag.
        cond: Operand,
        /// Value when the condition is 1.
        if_true: Operand,
        /// Value when the condition is 0.
        if_false: Operand,
    },
    /// `dsts = (words ∥ … ∥ words) >> shift` — right shift of a multi-word quantity by a
    /// compile-time constant, keeping as many words as there are destinations
    /// (the paper's `_qshr`). `words` are given most-significant first, as are `dsts`.
    ShrMulti {
        /// Source words, most significant first.
        words: Vec<Operand>,
        /// Shift amount in bits (must be less than the total source width).
        shift: u32,
    },
    /// `dst = (a + b) mod q` — high-level modular addition (Equation 30), the seed of
    /// the worked rewrite example in §4.
    AddMod {
        /// First addend (reduced).
        a: Operand,
        /// Second addend (reduced).
        b: Operand,
        /// Modulus.
        q: Operand,
    },
    /// `dst = (a − b) mod q` — high-level modular subtraction.
    SubMod {
        /// Minuend (reduced).
        a: Operand,
        /// Subtrahend (reduced).
        b: Operand,
        /// Modulus.
        q: Operand,
    },
    /// `dst = (a · b) mod q` — high-level Barrett modular multiplication with the
    /// precomputed constant `μ` and the modulus bit-width `mbits` known at generation
    /// time (Equation 18).
    MulModBarrett {
        /// First factor (reduced).
        a: Operand,
        /// Second factor (reduced).
        b: Operand,
        /// Modulus (of `mbits` bits).
        q: Operand,
        /// Barrett constant `⌊2^(2·mbits+3)/q⌋`.
        mu: Operand,
        /// Bit-width of the modulus.
        mbits: u32,
    },
    /// `dst = (a · b + c) mod q` — high-level fused multiply-accumulate, the inner
    /// step of sum-of-products reductions (RNS base extension accumulates one of
    /// these per source modulus). Expands to [`Op::MulModBarrett`] followed by
    /// [`Op::AddMod`]; the interpreter and compiled executor run it fused.
    MulAddMod {
        /// First factor (reduced).
        a: Operand,
        /// Second factor (reduced).
        b: Operand,
        /// Accumulator (reduced).
        c: Operand,
        /// Modulus (of `mbits` bits).
        q: Operand,
        /// Barrett constant `⌊2^(2·mbits+3)/q⌋`.
        mu: Operand,
        /// Bit-width of the modulus.
        mbits: u32,
    },
    /// `dst = (Σᵢ aᵢ · bᵢ) mod q` — the accumulation-loop form produced by the
    /// kernel-fusion pass: a whole sum-of-products chain accumulated exactly in a
    /// double-word register and reduced **once** at the end, instead of one
    /// modular reduction per term (`moma_mp::single::smac` + `reduce_wide` as a
    /// single IR statement).
    ///
    /// Unlike the other modular ops, the modulus and its reduction constants are
    /// literal values, not operands: the fusion pass only fires for
    /// constant-modulus chains, and baking the constants in is what lets the
    /// compiled executor and the emitters use the division-free word-reciprocal
    /// reduction (`recip = ⌊2^64/q⌋`, `radix = 2^64 mod q`) with no runtime
    /// consistency checks. The validator re-derives every constant from `q` and
    /// rejects mismatches, and statically bounds `Σᵢ aᵢ · bᵢ` by the operand
    /// widths (and literal values) so the 128-bit accumulator can never wrap.
    MacReduceMod {
        /// The product terms `(aᵢ, bᵢ)`, accumulated in order.
        pairs: Vec<(Operand, Operand)>,
        /// Modulus (of `mbits` bits, at most 60).
        q: u64,
        /// Barrett constant `⌊2^(2·mbits+3)/q⌋` (for the high-word fold).
        mu: u64,
        /// Bit-width of the modulus.
        mbits: u32,
        /// Limb-radix residue `2^64 mod q` (for the high-word fold).
        radix: u64,
        /// Word reciprocal `⌊2^64/q⌋` (for the division-free word reduction).
        recip: u64,
    },
}

impl Op {
    /// All operands read by this operation.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Copy { src } => vec![*src],
            Op::AddWide { a, b, carry_in } => {
                let mut v = vec![*a, *b];
                if let Some(c) = carry_in {
                    v.push(*c);
                }
                v
            }
            Op::Sub { a, b, borrow_in } => {
                let mut v = vec![*a, *b];
                if let Some(c) = borrow_in {
                    v.push(*c);
                }
                v
            }
            Op::MulWide { a, b }
            | Op::MulLow { a, b }
            | Op::Lt { a, b }
            | Op::Eq { a, b }
            | Op::BoolAnd { a, b }
            | Op::BoolOr { a, b } => vec![*a, *b],
            Op::Select {
                cond,
                if_true,
                if_false,
            } => vec![*cond, *if_true, *if_false],
            Op::ShrMulti { words, .. } => words.clone(),
            Op::AddMod { a, b, q } | Op::SubMod { a, b, q } => vec![*a, *b, *q],
            Op::MulModBarrett { a, b, q, mu, .. } => vec![*a, *b, *q, *mu],
            Op::MulAddMod { a, b, c, q, mu, .. } => vec![*a, *b, *c, *q, *mu],
            Op::MacReduceMod { pairs, .. } => pairs.iter().flat_map(|(a, b)| [*a, *b]).collect(),
        }
    }

    /// A short mnemonic used by the pretty-printer and the operation counter.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Copy { .. } => "copy",
            Op::AddWide { .. } => "add",
            Op::Sub { .. } => "sub",
            Op::MulWide { .. } => "mulwide",
            Op::MulLow { .. } => "mullow",
            Op::Lt { .. } => "lt",
            Op::Eq { .. } => "eq",
            Op::BoolAnd { .. } => "and",
            Op::BoolOr { .. } => "or",
            Op::Select { .. } => "select",
            Op::ShrMulti { .. } => "shr",
            Op::AddMod { .. } => "addmod",
            Op::SubMod { .. } => "submod",
            Op::MulModBarrett { .. } => "mulmod",
            Op::MulAddMod { .. } => "macmod",
            Op::MacReduceMod { .. } => "macreduce",
        }
    }

    /// Returns `true` if this is one of the high-level modular operations that the
    /// rewrite system must expand before emission.
    pub fn is_high_level(&self) -> bool {
        matches!(
            self,
            Op::AddMod { .. } | Op::SubMod { .. } | Op::MulModBarrett { .. } | Op::MulAddMod { .. }
        )
    }
}

/// One assignment: `dsts = op(…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Destination variables (most significant first for multi-destination ops).
    pub dsts: Vec<VarId>,
    /// The operation.
    pub op: Op,
    /// Optional provenance note carried into the emitted source as a comment.
    pub comment: Option<String>,
}

/// A straight-line kernel: parameters in, outputs out, no control flow (conditional
/// assignment is expressed with [`Op::Select`], exactly as in the paper's listings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name (used as the function name by the emitters).
    pub name: String,
    /// All variables; indices are [`VarId`]s.
    pub vars: Vec<Var>,
    /// Parameter variables, in signature order.
    pub params: Vec<VarId>,
    /// Output variables, in signature order.
    pub outputs: Vec<VarId>,
    /// The body, executed top to bottom.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn var(&self, id: VarId) -> &Var {
        &self.vars[id.0]
    }

    /// The type of a variable.
    pub fn ty(&self, id: VarId) -> Ty {
        self.vars[id.0].ty
    }

    /// The type of an operand (constants are typed by their use sites, so this returns
    /// `None` for constants).
    pub fn operand_ty(&self, op: Operand) -> Option<Ty> {
        op.as_var().map(|v| self.ty(v))
    }

    /// The widest integer type appearing in the kernel.
    pub fn max_width(&self) -> u32 {
        self.vars.iter().map(|v| v.ty.bits()).max().unwrap_or(0)
    }

    /// Returns `true` if every variable fits in `word_bits` bits (i.e. the kernel is
    /// fully lowered to machine words).
    pub fn is_machine_level(&self, word_bits: u32) -> bool {
        self.vars.iter().all(|v| !v.ty.needs_lowering(word_bits))
            && self.body.iter().all(|s| !s.op.is_high_level())
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Returns `true` if the kernel body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.var(*p).name, self.ty(*p))?;
        }
        write!(f, ") -> (")?;
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.var(*o).name, self.ty(*o))?;
        }
        writeln!(f, ") {{")?;
        for stmt in &self.body {
            write!(f, "  [")?;
            for (i, d) in stmt.dsts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var(*d).name)?;
            }
            write!(f, "] = {}(", stmt.op.mnemonic())?;
            for (i, o) in stmt.op.operands().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match o {
                    Operand::Var(v) => write!(f, "{}", self.var(*v).name)?,
                    Operand::Const(c) => write!(f, "{c}")?,
                }
            }
            if let Op::ShrMulti { shift, .. } = &stmt.op {
                write!(f, ") >> {shift}")?;
            } else if let Op::MacReduceMod { q, .. } = &stmt.op {
                write!(f, ") mod {q}")?;
            } else {
                write!(f, ")")?;
            }
            if let Some(c) = &stmt.comment {
                write!(f, "  ; {c}")?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Kernel`]s.
///
/// # Example
///
/// ```
/// use moma_ir::{KernelBuilder, Op, Operand, Ty};
///
/// let mut kb = KernelBuilder::new("add64");
/// let a = kb.param("a", Ty::UInt(64));
/// let b = kb.param("b", Ty::UInt(64));
/// let carry = kb.local("carry", Ty::Flag);
/// let sum = kb.output("sum", Ty::UInt(64));
/// kb.push(vec![carry, sum], Op::AddWide { a: a.into(), b: b.into(), carry_in: None });
/// let kernel = kb.build();
/// assert_eq!(kernel.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    vars: Vec<Var>,
    params: Vec<VarId>,
    outputs: Vec<VarId>,
    body: Vec<Stmt>,
    fresh_counter: usize,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            vars: Vec::new(),
            params: Vec::new(),
            outputs: Vec::new(),
            body: Vec::new(),
            fresh_counter: 0,
        }
    }

    fn add_var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            name: name.into(),
            ty,
        });
        id
    }

    /// Declares a parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = self.add_var(name, ty);
        self.params.push(id);
        id
    }

    /// Declares an output.
    pub fn output(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = self.add_var(name, ty);
        self.outputs.push(id);
        id
    }

    /// Declares a local (temporary) variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.add_var(name, ty)
    }

    /// Declares a local with a unique generated name based on `prefix`.
    pub fn fresh(&mut self, prefix: &str, ty: Ty) -> VarId {
        self.fresh_counter += 1;
        let name = format!("{prefix}_{}", self.fresh_counter);
        self.add_var(name, ty)
    }

    /// Appends a statement.
    pub fn push(&mut self, dsts: Vec<VarId>, op: Op) {
        self.body.push(Stmt {
            dsts,
            op,
            comment: None,
        });
    }

    /// Appends a statement with a provenance comment.
    pub fn push_commented(&mut self, dsts: Vec<VarId>, op: Op, comment: impl Into<String>) {
        self.body.push(Stmt {
            dsts,
            op,
            comment: Some(comment.into()),
        });
    }

    /// Finishes the kernel.
    pub fn build(self) -> Kernel {
        Kernel {
            name: self.name,
            vars: self.vars,
            params: self.params,
            outputs: self.outputs,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("demo");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let c = kb.local("c", Ty::Flag);
        let s = kb.output("s", Ty::UInt(64));
        kb.push(
            vec![c, s],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        kb.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let k = small_kernel();
        assert_eq!(k.params, vec![VarId(0), VarId(1)]);
        assert_eq!(k.outputs, vec![VarId(3)]);
        assert_eq!(k.ty(VarId(2)), Ty::Flag);
        assert_eq!(k.max_width(), 64);
        assert!(k.is_machine_level(64));
        assert!(!k.is_machine_level(32));
    }

    #[test]
    fn operands_enumeration() {
        let op = Op::Select {
            cond: Operand::Const(1),
            if_true: VarId(0).into(),
            if_false: VarId(1).into(),
        };
        assert_eq!(op.operands().len(), 3);
        assert_eq!(op.mnemonic(), "select");
        assert!(!op.is_high_level());
        assert!(Op::AddMod {
            a: Operand::ZERO,
            b: Operand::ZERO,
            q: Operand::ZERO
        }
        .is_high_level());
    }

    #[test]
    fn display_contains_signature_and_ops() {
        let k = small_kernel();
        let text = k.to_string();
        assert!(text.contains("kernel demo(a: u64, b: u64) -> (s: u64)"));
        assert!(text.contains("add"));
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut kb = KernelBuilder::new("f");
        let x = kb.fresh("t", Ty::UInt(64));
        let y = kb.fresh("t", Ty::UInt(64));
        let k = kb.build();
        assert_ne!(k.var(x).name, k.var(y).name);
    }

    #[test]
    fn operand_helpers() {
        assert!(Operand::Const(0).is_const(0));
        assert!(!Operand::Var(VarId(1)).is_const(0));
        assert_eq!(Operand::Var(VarId(3)).as_var(), Some(VarId(3)));
        assert_eq!(Operand::Const(7).as_var(), None);
    }
}
