//! Integer data types of the abstract code.

use std::fmt;

/// A data type in the abstract code.
///
/// The rewrite system of the paper operates purely on *types*: rule (19) turns a value
/// of type `UInt(2ω)` into two values of type `UInt(ω)`, and lowering repeats this until
/// every remaining `UInt` is the machine word type. `Flag` is the 1-bit type `δ¹` used
/// for carries, borrows, and comparison results in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// An unsigned integer of the given bit-width (must be positive).
    UInt(u32),
    /// A single-bit value: a carry/borrow or a boolean comparison result (`δ¹`).
    Flag,
}

impl Ty {
    /// Bit-width of the type (1 for [`Ty::Flag`]).
    pub fn bits(&self) -> u32 {
        match self {
            Ty::UInt(w) => *w,
            Ty::Flag => 1,
        }
    }

    /// Returns `true` if this is a word type wider than `word_bits` and therefore still
    /// needs lowering.
    pub fn needs_lowering(&self, word_bits: u32) -> bool {
        matches!(self, Ty::UInt(w) if *w > word_bits)
    }

    /// The type of one half of this type (rule (19) right-hand side).
    ///
    /// # Panics
    ///
    /// Panics if the type is [`Ty::Flag`] or has an odd bit-width.
    pub fn half(&self) -> Ty {
        match self {
            Ty::UInt(w) => {
                assert!(w % 2 == 0, "cannot halve a type of odd width {w}");
                Ty::UInt(w / 2)
            }
            Ty::Flag => panic!("cannot halve a flag"),
        }
    }

    /// The type twice as wide as this one.
    ///
    /// # Panics
    ///
    /// Panics if the type is [`Ty::Flag`].
    pub fn double(&self) -> Ty {
        match self {
            Ty::UInt(w) => Ty::UInt(w * 2),
            Ty::Flag => panic!("cannot double a flag"),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::UInt(w) => write!(f, "u{w}"),
            Ty::Flag => write!(f, "flag"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Ty::UInt(256).bits(), 256);
        assert_eq!(Ty::Flag.bits(), 1);
        assert_eq!(Ty::UInt(256).half(), Ty::UInt(128));
        assert_eq!(Ty::UInt(128).double(), Ty::UInt(256));
    }

    #[test]
    fn lowering_predicate() {
        assert!(Ty::UInt(128).needs_lowering(64));
        assert!(!Ty::UInt(64).needs_lowering(64));
        assert!(!Ty::UInt(32).needs_lowering(64));
        assert!(!Ty::Flag.needs_lowering(64));
    }

    #[test]
    #[should_panic(expected = "cannot halve")]
    fn halving_flag_panics() {
        Ty::Flag.half();
    }

    #[test]
    fn display() {
        assert_eq!(Ty::UInt(512).to_string(), "u512");
        assert_eq!(Ty::Flag.to_string(), "flag");
    }
}
