//! A compiled bytecode executor for machine-level kernels.
//!
//! The tree interpreter in [`crate::interp`] resolves every operand through an
//! `Option`-checked lookup, allocates a fresh value table per run, and updates a
//! `BTreeMap`-backed operation counter on every statement. That is fine as a
//! correctness oracle, but it dominates the runtime of the simulated GPU, where the
//! same kernel executes once per element across large batches.
//!
//! [`CompiledKernel`] moves all of that work to compile time:
//!
//! * **Register allocation** — variables are linear-scan-allocated into dense `u64`
//!   slots; a slot is recycled as soon as the last read of its variable has
//!   executed, so the scratch frame is much smaller than the variable count and is
//!   reused across batch elements with zero per-element allocation.
//! * **Static checking** — width limits and use-before-def are verified once at
//!   compile time (straight-line code makes the check exact), so the execution loop
//!   has no error paths.
//! * **Precomputed masks and counts** — destination masks are baked into each
//!   bytecode op, and the per-element [`OpCounts`] is computed once (statement
//!   counts are exact execution counts for straight-line kernels).
//!
//! The interpreter remains the semantic reference: `CompiledKernel::run` is
//! observationally identical to [`interp::run`](crate::interp::run), and the test
//! suites cross-check the two on every kernel the rewrite system produces.

use crate::cost::{static_counts, OpCounts};
use crate::interp::{InterpError, RunResult};
use crate::{Kernel, Op, Operand, VarId};

/// A bytecode operand: a register slot index.
///
/// There are no immediate operands at execution time — compile-time constants are
/// materialized into dedicated registers that [`CompiledKernel::run_with`] preloads
/// before the body runs. That keeps every instruction small (better bytecode cache
/// density) and every operand read a single indexed load.
type Src = u32;

/// A bytecode destination: a register slot plus the write mask of its type width.
#[derive(Debug, Clone, Copy)]
struct Dst {
    reg: u32,
    mask: u64,
}

/// The multi-word-shift payload, boxed so the rare variant does not inflate every
/// [`Code`] instruction.
#[derive(Debug, Clone)]
struct ShrOp {
    dsts: Vec<Dst>,
    words: Vec<Src>,
    shift: u32,
    word_bits: u32,
}

/// One bytecode instruction with fully resolved register slots.
#[derive(Debug, Clone)]
enum Code {
    Copy {
        d: Dst,
        s: Src,
    },
    AddWide {
        carry: Dst,
        sum: Dst,
        a: Src,
        b: Src,
        cin: Src,
        sum_bits: u32,
    },
    Sub {
        d: Dst,
        a: Src,
        b: Src,
        bin: Src,
    },
    MulWide {
        hi: Dst,
        lo: Dst,
        a: Src,
        b: Src,
        lo_bits: u32,
    },
    MulLow {
        d: Dst,
        a: Src,
        b: Src,
    },
    Lt {
        d: Dst,
        a: Src,
        b: Src,
    },
    Eq {
        d: Dst,
        a: Src,
        b: Src,
    },
    BoolAnd {
        d: Dst,
        a: Src,
        b: Src,
    },
    BoolOr {
        d: Dst,
        a: Src,
        b: Src,
    },
    Select {
        d: Dst,
        cond: Src,
        if_true: Src,
        if_false: Src,
    },
    ShrMulti(Box<ShrOp>),
    AddMod {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    SubMod {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    MulModBarrett {
        d: Dst,
        a: Src,
        b: Src,
        q: Src,
    },
    MulAddMod {
        d: Dst,
        a: Src,
        b: Src,
        c: Src,
        q: Src,
    },
}

/// Reusable per-worker execution state: the register frame plus the multi-word
/// shift staging buffer. Create one per thread with [`CompiledKernel::scratch`] and
/// pass it to every [`CompiledKernel::run_with`] call to amortize the allocation
/// across a whole batch.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    regs: Vec<u64>,
    shr: Vec<u64>,
}

/// A kernel compiled to register-allocated bytecode.
///
/// # Example
///
/// ```
/// use moma_ir::{compiled::CompiledKernel, interp, KernelBuilder, Op, Ty};
///
/// let mut kb = KernelBuilder::new("addmod64");
/// let a = kb.param("a", Ty::UInt(64));
/// let b = kb.param("b", Ty::UInt(64));
/// let q = kb.param("q", Ty::UInt(64));
/// let c = kb.output("c", Ty::UInt(64));
/// kb.push(vec![c], Op::AddMod { a: a.into(), b: b.into(), q: q.into() });
/// let kernel = kb.build();
///
/// let compiled = CompiledKernel::compile(&kernel).unwrap();
/// let fast = compiled.run(&[90, 80, 100]).unwrap();
/// let slow = interp::run(&kernel, &[90, 80, 100]).unwrap();
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    name: String,
    code: Vec<Code>,
    /// Register slot and declared bit-width of each parameter, in signature order.
    params: Vec<(u32, u32)>,
    /// Parameter names, for error messages only (cold path).
    param_names: Vec<String>,
    /// Register slot of each output, in signature order.
    outputs: Vec<u32>,
    /// Materialized constants: `const_values[k]` is preloaded into register
    /// `const_base + k` before each element executes.
    const_base: usize,
    const_values: Vec<u64>,
    n_regs: usize,
    counts: OpCounts,
}

impl CompiledKernel {
    /// Compiles a machine-level kernel to bytecode.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnsupportedWidth`] if any variable is wider than 64
    /// bits and [`InterpError::UseBeforeDef`] if a variable is read (or an output
    /// left) before assignment — exactly the conditions under which the interpreter
    /// would fail at runtime.
    pub fn compile(kernel: &Kernel) -> Result<Self, InterpError> {
        for v in &kernel.vars {
            if v.ty.bits() > 64 {
                return Err(InterpError::UnsupportedWidth {
                    var: v.name.clone(),
                    bits: v.ty.bits(),
                });
            }
        }

        let alloc = RegAlloc::run(kernel)?;
        let slot_of = |v: VarId| alloc.slot_at_def[v.0].expect("defined vars have slots");

        // Constants are interned into registers past the allocator's frame; they
        // are preloaded once per element and never written by the body.
        let const_base = alloc.n_regs;
        let mut const_values: Vec<u64> = Vec::new();
        let mut const_map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();

        let mut code = Vec::with_capacity(kernel.body.len());
        for (i, stmt) in kernel.body.iter().enumerate() {
            let mut src = |o: Operand| -> Src {
                match o {
                    Operand::Const(c) => *const_map.entry(c).or_insert_with(|| {
                        const_values.push(c);
                        (const_base + const_values.len() - 1) as u32
                    }),
                    Operand::Var(v) => alloc.slot_at_use[i][&v],
                }
            };
            let dst = |d: VarId| -> Dst {
                Dst {
                    reg: alloc.slot_at_write[i][&d],
                    mask: mask64(kernel.ty(d).bits()),
                }
            };
            code.push(match &stmt.op {
                Op::Copy { src: s } => Code::Copy {
                    d: dst(stmt.dsts[0]),
                    s: src(*s),
                },
                Op::AddWide { a, b, carry_in } => Code::AddWide {
                    carry: dst(stmt.dsts[0]),
                    sum: dst(stmt.dsts[1]),
                    a: src(*a),
                    b: src(*b),
                    cin: src(carry_in.unwrap_or(Operand::ZERO)),
                    sum_bits: kernel.ty(stmt.dsts[1]).bits(),
                },
                Op::Sub { a, b, borrow_in } => Code::Sub {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    bin: src(borrow_in.unwrap_or(Operand::ZERO)),
                },
                Op::MulWide { a, b } => Code::MulWide {
                    hi: dst(stmt.dsts[0]),
                    lo: dst(stmt.dsts[1]),
                    a: src(*a),
                    b: src(*b),
                    lo_bits: kernel.ty(stmt.dsts[1]).bits(),
                },
                Op::MulLow { a, b } => Code::MulLow {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Lt { a, b } => Code::Lt {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Eq { a, b } => Code::Eq {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::BoolAnd { a, b } => Code::BoolAnd {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::BoolOr { a, b } => Code::BoolOr {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                },
                Op::Select {
                    cond,
                    if_true,
                    if_false,
                } => Code::Select {
                    d: dst(stmt.dsts[0]),
                    cond: src(*cond),
                    if_true: src(*if_true),
                    if_false: src(*if_false),
                },
                Op::ShrMulti { words, shift } => Code::ShrMulti(Box::new(ShrOp {
                    dsts: stmt.dsts.iter().map(|d| dst(*d)).collect(),
                    words: words.iter().map(|w| src(*w)).collect(),
                    shift: *shift,
                    // Matches the interpreter: the width of the first variable word
                    // (constants are typed by their use sites).
                    word_bits: words
                        .iter()
                        .find_map(|o| o.as_var().map(|v| kernel.ty(v).bits()))
                        .unwrap_or(64),
                })),
                Op::AddMod { a, b, q } => Code::AddMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::SubMod { a, b, q } => Code::SubMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::MulModBarrett { a, b, q, .. } => Code::MulModBarrett {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    q: src(*q),
                },
                Op::MulAddMod { a, b, c, q, .. } => Code::MulAddMod {
                    d: dst(stmt.dsts[0]),
                    a: src(*a),
                    b: src(*b),
                    c: src(*c),
                    q: src(*q),
                },
            });
        }

        Ok(CompiledKernel {
            name: kernel.name.clone(),
            code,
            params: kernel
                .params
                .iter()
                .map(|p| (slot_of(*p), kernel.ty(*p).bits()))
                .collect(),
            param_names: kernel
                .params
                .iter()
                .map(|p| kernel.var(*p).name.clone())
                .collect(),
            outputs: alloc.output_slots,
            const_base,
            n_regs: const_base + const_values.len(),
            const_values,
            counts: static_counts(kernel),
        })
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of register slots in the execution frame (after linear-scan reuse;
    /// at most the kernel's variable count).
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// Number of parameters expected per element.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Number of outputs produced per element.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The word-level operations one element executes (exact, since kernels are
    /// straight-line).
    pub fn counts_per_element(&self) -> &OpCounts {
        &self.counts
    }

    /// Creates an execution scratch frame sized for this kernel.
    pub fn scratch(&self) -> Scratch {
        Scratch {
            regs: vec![0; self.n_regs],
            shr: Vec::new(),
        }
    }

    /// Executes the kernel once, reusing `scratch` and appending the outputs to
    /// `out`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::ArgumentCount`] or [`InterpError::InputTooWide`] on
    /// bad inputs (all other failure modes were ruled out at compile time).
    pub fn run_with(
        &self,
        inputs: &[u64],
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> Result<(), InterpError> {
        if inputs.len() != self.params.len() {
            return Err(InterpError::ArgumentCount {
                expected: self.params.len(),
                got: inputs.len(),
            });
        }
        if scratch.regs.len() != self.n_regs {
            scratch.regs.resize(self.n_regs, 0);
        }
        for (idx, ((slot, bits), &input)) in self.params.iter().zip(inputs).enumerate() {
            if *bits < 64 && input >> bits != 0 {
                return Err(InterpError::InputTooWide {
                    var: self.param_names[idx].clone(),
                });
            }
            scratch.regs[*slot as usize] = input;
        }
        // Preload the materialized constants. Unconditional so that a scratch
        // frame carried over from another kernel can never leak stale values.
        scratch.regs[self.const_base..self.n_regs].copy_from_slice(&self.const_values);
        self.exec(scratch);
        out.extend(self.outputs.iter().map(|o| scratch.regs[*o as usize]));
        Ok(())
    }

    /// Executes the kernel once and returns outputs plus operation counts — the
    /// drop-in equivalent of [`interp::run`](crate::interp::run).
    ///
    /// # Errors
    ///
    /// See [`Self::run_with`].
    pub fn run(&self, inputs: &[u64]) -> Result<RunResult, InterpError> {
        let mut scratch = self.scratch();
        let mut outputs = Vec::with_capacity(self.outputs.len());
        self.run_with(inputs, &mut scratch, &mut outputs)?;
        Ok(RunResult {
            outputs,
            counts: self.counts.clone(),
        })
    }

    /// Executes the kernel over a whole batch with one shared scratch frame.
    ///
    /// `inputs` is row-major: element `i`'s parameters occupy
    /// `inputs[i * param_count .. (i + 1) * param_count]`. Outputs are returned
    /// row-major in the same element order, and `counts` aggregates the operations
    /// of every element (per-element counts × batch size).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::ArgumentCount`] if `inputs.len()` is not a multiple
    /// of the parameter count, or [`InterpError::InputTooWide`] for any bad element
    /// input.
    pub fn run_batch(&self, inputs: &[u64]) -> Result<BatchRunResult, InterpError> {
        let p = self.params.len().max(1);
        if inputs.len() % p != 0 {
            return Err(InterpError::ArgumentCount {
                expected: p,
                got: inputs.len() % p,
            });
        }
        let elements = if self.params.is_empty() {
            0
        } else {
            inputs.len() / p
        };
        let mut scratch = self.scratch();
        let mut outputs = Vec::with_capacity(elements * self.outputs.len());
        for row in 0..elements {
            self.run_with(&inputs[row * p..(row + 1) * p], &mut scratch, &mut outputs)?;
        }
        Ok(BatchRunResult {
            elements,
            outputs_per_element: self.outputs.len(),
            outputs,
            counts: self.counts.scaled(elements as u64),
        })
    }

    /// The bytecode execution loop: no lookups, no `Option`s, no allocation.
    fn exec(&self, scratch: &mut Scratch) {
        let regs = &mut scratch.regs;
        let rd = |regs: &[u64], s: Src| -> u64 { regs[s as usize] };
        for op in &self.code {
            match op {
                Code::Copy { d, s } => {
                    regs[d.reg as usize] = rd(regs, *s) & d.mask;
                }
                Code::AddWide {
                    carry,
                    sum,
                    a,
                    b,
                    cin,
                    sum_bits,
                } => {
                    let cin = rd(regs, *cin) as u128;
                    let t = rd(regs, *a) as u128 + rd(regs, *b) as u128 + cin;
                    regs[carry.reg as usize] = ((t >> sum_bits) as u64) & carry.mask;
                    regs[sum.reg as usize] = (t as u64) & sum.mask;
                }
                Code::Sub { d, a, b, bin } => {
                    let bin = rd(regs, *bin);
                    let t = rd(regs, *a).wrapping_sub(rd(regs, *b)).wrapping_sub(bin);
                    regs[d.reg as usize] = t & d.mask;
                }
                Code::MulWide {
                    hi,
                    lo,
                    a,
                    b,
                    lo_bits,
                } => {
                    let p = rd(regs, *a) as u128 * rd(regs, *b) as u128;
                    regs[hi.reg as usize] = ((p >> lo_bits) as u64) & hi.mask;
                    regs[lo.reg as usize] = (p as u64) & lo.mask;
                }
                Code::MulLow { d, a, b } => {
                    regs[d.reg as usize] = rd(regs, *a).wrapping_mul(rd(regs, *b)) & d.mask;
                }
                Code::Lt { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) < rd(regs, *b)) as u64;
                }
                Code::Eq { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) == rd(regs, *b)) as u64;
                }
                Code::BoolAnd { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) != 0 && rd(regs, *b) != 0) as u64;
                }
                Code::BoolOr { d, a, b } => {
                    regs[d.reg as usize] = (rd(regs, *a) != 0 || rd(regs, *b) != 0) as u64;
                }
                Code::Select {
                    d,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let v = if rd(regs, *cond) != 0 {
                        rd(regs, *if_true)
                    } else {
                        rd(regs, *if_false)
                    };
                    regs[d.reg as usize] = v & d.mask;
                }
                Code::ShrMulti(op) => {
                    // Destinations may alias source words, so stage the sources in
                    // the reusable scratch buffer first (no per-call allocation).
                    scratch.shr.clear();
                    for w in &op.words {
                        scratch.shr.push(regs[*w as usize]);
                    }
                    let src_words = &scratch.shr;
                    let n = src_words.len();
                    let word_bits = op.word_bits;
                    let total_bits = word_bits * n as u32;
                    for (k, dst) in op.dsts.iter().rev().enumerate() {
                        let mut v: u64 = 0;
                        for bit in 0..word_bits {
                            let src_bit = op.shift + k as u32 * word_bits + bit;
                            if src_bit < total_bits {
                                let word = n as u32 - 1 - src_bit / word_bits;
                                let b = (src_words[word as usize] >> (src_bit % word_bits)) & 1;
                                v |= b << bit;
                            }
                        }
                        regs[dst.reg as usize] = v & dst.mask;
                    }
                }
                Code::AddMod { d, a, b, q } => {
                    let q = rd(regs, *q) as u128;
                    let v = (rd(regs, *a) as u128 + rd(regs, *b) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
                Code::SubMod { d, a, b, q } => {
                    let q = rd(regs, *q);
                    let a = rd(regs, *a);
                    let b = rd(regs, *b);
                    let v = if a < b {
                        (a as u128 + q as u128 - b as u128) as u64
                    } else {
                        a - b
                    };
                    regs[d.reg as usize] = v & d.mask;
                }
                Code::MulModBarrett { d, a, b, q } => {
                    let q = rd(regs, *q) as u128;
                    let v = (rd(regs, *a) as u128 * rd(regs, *b) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
                Code::MulAddMod { d, a, b, c, q } => {
                    let q = rd(regs, *q) as u128;
                    // a·b + c cannot overflow u128 for word-sized operands.
                    let v =
                        (rd(regs, *a) as u128 * rd(regs, *b) as u128 + rd(regs, *c) as u128) % q;
                    regs[d.reg as usize] = (v as u64) & d.mask;
                }
            }
        }
    }
}

/// Result of one batched execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRunResult {
    /// Number of elements executed.
    pub elements: usize,
    /// Outputs per element (the kernel's output arity).
    pub outputs_per_element: usize,
    /// Row-major outputs: element `i`'s outputs occupy
    /// `outputs[i * outputs_per_element .. (i + 1) * outputs_per_element]`.
    pub outputs: Vec<u64>,
    /// Total operations executed across the batch.
    pub counts: OpCounts,
}

impl BatchRunResult {
    /// The outputs of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.elements`.
    pub fn element(&self, i: usize) -> &[u64] {
        let w = self.outputs_per_element;
        &self.outputs[i * w..(i + 1) * w]
    }
}

fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Linear-scan register allocation over a straight-line kernel.
///
/// Walks the body once, assigning each live variable a dense slot and recycling a
/// slot as soon as its variable's last read has executed. Because the code is
/// straight-line, liveness is exact: a variable is live from its (re)definition to
/// its final read (outputs are live to the end).
struct RegAlloc {
    /// Slot each variable holds at its defining write (for parameters: at entry).
    slot_at_def: Vec<Option<u32>>,
    /// Per-statement read map: variable → slot at that statement.
    slot_at_use: Vec<std::collections::HashMap<VarId, u32>>,
    /// Per-statement write map: variable → slot assigned for that write.
    slot_at_write: Vec<std::collections::HashMap<VarId, u32>>,
    output_slots: Vec<u32>,
    n_regs: usize,
}

impl RegAlloc {
    fn run(kernel: &Kernel) -> Result<RegAlloc, InterpError> {
        use std::collections::HashMap;

        // Last statement index that reads each variable (outputs never expire).
        let mut last_read: Vec<Option<usize>> = vec![None; kernel.vars.len()];
        for (i, stmt) in kernel.body.iter().enumerate() {
            for o in stmt.op.operands() {
                if let Some(v) = o.as_var() {
                    last_read[v.0] = Some(i);
                }
            }
        }
        let is_output: Vec<bool> = {
            let mut f = vec![false; kernel.vars.len()];
            for o in &kernel.outputs {
                f[o.0] = true;
            }
            f
        };

        let mut current: Vec<Option<u32>> = vec![None; kernel.vars.len()];
        let mut slot_at_def: Vec<Option<u32>> = vec![None; kernel.vars.len()];
        let mut free: Vec<u32> = Vec::new();
        let mut n_regs: u32 = 0;
        let mut allocate = |free: &mut Vec<u32>| -> u32 {
            free.pop().unwrap_or_else(|| {
                n_regs += 1;
                n_regs - 1
            })
        };

        for p in &kernel.params {
            let slot = allocate(&mut free);
            current[p.0] = Some(slot);
            slot_at_def[p.0] = Some(slot);
        }

        let mut slot_at_use = Vec::with_capacity(kernel.body.len());
        let mut slot_at_write = Vec::with_capacity(kernel.body.len());
        for (i, stmt) in kernel.body.iter().enumerate() {
            let mut uses = HashMap::new();
            for o in stmt.op.operands() {
                if let Some(v) = o.as_var() {
                    let slot = current[v.0].ok_or_else(|| InterpError::UseBeforeDef {
                        var: kernel.var(v).name.clone(),
                    })?;
                    uses.insert(v, slot);
                }
            }
            // Expire operands whose last read is this statement *before* assigning
            // destination slots — but only release slots that none of this
            // statement's destinations are about to keep (a destination may be the
            // same variable as an operand).
            for (&v, &slot) in &uses {
                if last_read[v.0] == Some(i) && !is_output[v.0] && !stmt.dsts.contains(&v) {
                    current[v.0] = None;
                    free.push(slot);
                }
            }
            let mut writes = HashMap::new();
            for d in &stmt.dsts {
                let slot = match current[d.0] {
                    Some(slot) => slot,
                    None => {
                        let slot = allocate(&mut free);
                        current[d.0] = Some(slot);
                        if slot_at_def[d.0].is_none() {
                            slot_at_def[d.0] = Some(slot);
                        }
                        slot
                    }
                };
                writes.insert(*d, slot);
                // A destination that is never read and is not an output dies
                // immediately; keep its slot live through this statement (the write
                // still happens) and recycle it afterwards.
                if !is_output[d.0] && last_read[d.0].map_or(true, |l| l <= i) {
                    current[d.0] = None;
                    free.push(slot);
                }
            }
            slot_at_use.push(uses);
            slot_at_write.push(writes);
        }

        let mut output_slots = Vec::with_capacity(kernel.outputs.len());
        for o in &kernel.outputs {
            let slot = current[o.0].ok_or_else(|| InterpError::UseBeforeDef {
                var: kernel.var(*o).name.clone(),
            })?;
            output_slots.push(slot);
        }

        Ok(RegAlloc {
            slot_at_def,
            slot_at_use,
            slot_at_write,
            output_slots,
            n_regs: n_regs as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interp, KernelBuilder, Ty};

    fn modops_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("modops");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let q = kb.param("q", Ty::UInt(64));
        let s = kb.output("s", Ty::UInt(64));
        let d = kb.output("d", Ty::UInt(64));
        let p = kb.output("p", Ty::UInt(64));
        kb.push(
            vec![s],
            Op::AddMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![d],
            Op::SubMod {
                a: a.into(),
                b: b.into(),
                q: q.into(),
            },
        );
        kb.push(
            vec![p],
            Op::MulModBarrett {
                a: a.into(),
                b: b.into(),
                q: q.into(),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        kb.build()
    }

    #[test]
    fn matches_interpreter_on_modops() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        for inputs in [[90u64, 95, 101], [0, 0, 7], [100, 3, 101]] {
            assert_eq!(c.run(&inputs).unwrap(), interp::run(&k, &inputs).unwrap());
        }
    }

    #[test]
    fn muladdmod_matches_interpreter_and_chains() {
        // A two-step multiply-accumulate chain: acc = (a·c0) mod q, then
        // out = (b·c1 + acc) mod q — the shape of the generated base-extension
        // kernels, with the constants interned into preloaded registers.
        let mut kb = KernelBuilder::new("mac_chain");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let acc = kb.local("acc", Ty::UInt(64));
        let out = kb.output("out", Ty::UInt(64));
        let q = 101u64;
        kb.push(
            vec![acc],
            Op::MulAddMod {
                a: a.into(),
                b: Operand::Const(7),
                c: Operand::Const(0),
                q: Operand::Const(q),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        kb.push(
            vec![out],
            Op::MulAddMod {
                a: b.into(),
                b: Operand::Const(13),
                c: acc.into(),
                q: Operand::Const(q),
                mu: Operand::Const(0),
                mbits: 7,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        for inputs in [[0u64, 0], [100, 100], [u64::MAX, u64::MAX], [17, 91]] {
            let fast = c.run(&inputs).unwrap();
            assert_eq!(fast, interp::run(&k, &inputs).unwrap());
            let expected =
                ((inputs[1] as u128 * 13 + (inputs[0] as u128 * 7) % q as u128) % q as u128) as u64;
            assert_eq!(fast.outputs, vec![expected]);
        }
        assert_eq!(c.run(&[1, 1]).unwrap().counts.get("macmod"), 2);
    }

    #[test]
    fn add_with_carry_and_flag_masking() {
        let mut kb = KernelBuilder::new("add64");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let carry = kb.output("carry", Ty::Flag);
        let sum = kb.output("sum", Ty::UInt(64));
        kb.push(
            vec![carry, sum],
            Op::AddWide {
                a: a.into(),
                b: b.into(),
                carry_in: None,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        assert_eq!(c.run(&[u64::MAX, 1]).unwrap().outputs, vec![1, 0]);
        assert_eq!(c.run(&[2, 3]).unwrap().outputs, vec![0, 5]);
        assert_eq!(c.run(&[2, 3]).unwrap().counts.total(), 1);
    }

    #[test]
    fn shr_multi_with_aliased_destinations() {
        // dsts == words: the staging buffer must prevent read-after-write hazards.
        let mut kb = KernelBuilder::new("shr_alias");
        let hi = kb.param("hi", Ty::UInt(64));
        let lo = kb.param("lo", Ty::UInt(64));
        let out_hi = kb.output("out_hi", Ty::UInt(64));
        let out_lo = kb.output("out_lo", Ty::UInt(64));
        kb.push(
            vec![out_hi, out_lo],
            Op::ShrMulti {
                words: vec![hi.into(), lo.into()],
                shift: 100,
            },
        );
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        let (h, l) = (0x1234_5678_9abc_def0u64, 0x0fed_cba9_8765_4321u64);
        assert_eq!(c.run(&[h, l]).unwrap(), interp::run(&k, &[h, l]).unwrap());
    }

    #[test]
    fn register_reuse_shrinks_the_frame() {
        // A long chain of temporaries: t1 = a+b; t2 = t1+b; ... each ti dies as
        // soon as t(i+1) is computed, so the frame stays small.
        let mut kb = KernelBuilder::new("chain");
        let a = kb.param("a", Ty::UInt(64));
        let b = kb.param("b", Ty::UInt(64));
        let mut prev = a;
        for i in 0..32 {
            let f = kb.fresh(&format!("c{i}"), Ty::Flag);
            let t = kb.fresh(&format!("t{i}"), Ty::UInt(64));
            kb.push(
                vec![f, t],
                Op::AddWide {
                    a: prev.into(),
                    b: b.into(),
                    carry_in: None,
                },
            );
            prev = t;
        }
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: prev.into() });
        let k = kb.build();
        let c = CompiledKernel::compile(&k).unwrap();
        assert!(
            c.register_count() < k.vars.len() / 4,
            "expected heavy slot reuse: {} regs for {} vars",
            c.register_count(),
            k.vars.len()
        );
        assert_eq!(c.run(&[5, 3]).unwrap(), interp::run(&k, &[5, 3]).unwrap());
    }

    #[test]
    fn batch_matches_per_element_runs() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        let rows: Vec<[u64; 3]> = (0..50).map(|i| [i * 7 % 101, i * 13 % 101, 101]).collect();
        let flat: Vec<u64> = rows.iter().flatten().copied().collect();
        let batch = c.run_batch(&flat).unwrap();
        assert_eq!(batch.elements, 50);
        let mut total = OpCounts::new();
        for (i, row) in rows.iter().enumerate() {
            let single = interp::run(&k, row).unwrap();
            assert_eq!(batch.element(i), &single.outputs[..]);
            total = total + single.counts;
        }
        assert_eq!(batch.counts, total);
    }

    #[test]
    fn error_cases_mirror_the_interpreter() {
        let k = modops_kernel();
        let c = CompiledKernel::compile(&k).unwrap();
        assert!(matches!(
            c.run(&[1]),
            Err(InterpError::ArgumentCount {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            c.run_batch(&[1, 2, 3, 4]),
            Err(InterpError::ArgumentCount { .. })
        ));

        let mut kb = KernelBuilder::new("wide");
        let a = kb.param("a", Ty::UInt(128));
        let o = kb.output("o", Ty::UInt(128));
        kb.push(vec![o], Op::Copy { src: a.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UnsupportedWidth { .. })
        ));

        let mut kb = KernelBuilder::new("narrow");
        let a = kb.param("a", Ty::UInt(8));
        let o = kb.output("o", Ty::UInt(8));
        kb.push(vec![o], Op::Copy { src: a.into() });
        let c = CompiledKernel::compile(&kb.build()).unwrap();
        assert_eq!(c.run(&[200]).unwrap().outputs, vec![200]);
        assert!(matches!(
            c.run(&[300]),
            Err(InterpError::InputTooWide { .. })
        ));
    }

    #[test]
    fn use_before_def_is_a_compile_error() {
        let mut kb = KernelBuilder::new("ubd");
        let _a = kb.param("a", Ty::UInt(64));
        let t = kb.local("t", Ty::UInt(64));
        let o = kb.output("o", Ty::UInt(64));
        kb.push(vec![o], Op::Copy { src: t.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn undefined_output_is_a_compile_error() {
        let mut kb = KernelBuilder::new("noout");
        let a = kb.param("a", Ty::UInt(64));
        let t = kb.local("t", Ty::UInt(64));
        let _o = kb.output("o", Ty::UInt(64));
        kb.push(vec![t], Op::Copy { src: a.into() });
        assert!(matches!(
            CompiledKernel::compile(&kb.build()),
            Err(InterpError::UseBeforeDef { .. })
        ));
    }
}
